"""Crash recovery: latest valid snapshot + WAL tail replay.

Recovery reverses the write-ahead contract. At any crash point the durable
truth is (a) the newest snapshot that was fully written and (b) every WAL
record that was fsync'd after the state that snapshot captured. This module
assembles exactly that pair:

1. find the newest *loadable* snapshot (damaged ones fall back to older —
   see :meth:`~repro.persistence.checkpoint.CheckpointManager.latest_state`);
2. replay the WAL, repairing a torn final record (an append interrupted by
   the crash was never acknowledged, so dropping it is correct) and
   failing loudly on mid-log corruption;
3. keep only records with ``seq >= batches_applied`` — older records are
   leftovers of a crash between "snapshot written" and "WAL truncated" and
   are already reflected in the snapshot;
4. sanity-check that the tail is gapless and starts where the snapshot
   ends, so a mismatched snapshot/log pairing cannot silently skip or
   double-apply batches.

The tail batches are then pushed through the normal maintenance path by
:class:`~repro.streaming.DurableSummarizer` — recovery *is* incremental
maintenance, just sourced from disk, which is why it beats rebuilding the
summary from raw points (the paper's incremental-vs-rebuild framing,
Figure 7, applied to process lifetimes).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from ..exceptions import (
    CorruptStateError,
    PersistenceError,
    WalCorruptionError,
)
from ..observability.spans import maybe_span
from .checkpoint import CheckpointManager
from .state import SummarizerState
from .wal import WalRecord

__all__ = ["RecoveredState", "recover_state"]


@dataclass(frozen=True)
class RecoveredState:
    """What recovery found on disk.

    Attributes:
        manifest: the construction parameters of the durable summarizer.
        state: the newest loadable snapshot, or ``None`` when the process
            crashed before the first checkpoint (replay then starts from
            an empty summarizer).
        tail: WAL records still to be replayed, in order.
        last_seq: the stream position after replaying ``tail`` — the seq
            the next appended batch will receive.
    """

    manifest: dict
    state: SummarizerState | None
    tail: tuple[WalRecord, ...]
    last_seq: int

    @property
    def snapshot_batches(self) -> int:
        """How many batches the snapshot (if any) already covers."""
        return 0 if self.state is None else self.state.batches_applied


def recover_state(
    manager: CheckpointManager,
    obs=None,
) -> RecoveredState:
    """Collect snapshot + replayable tail from a state directory.

    Args:
        obs: observability handle; the scan runs under a
            ``recovery_scan`` span when span tracing is enabled.

    Raises:
        PersistenceError: the directory holds no durable state, or the
            snapshot and log disagree in a way replay cannot bridge.
        CorruptStateError: every snapshot generation failed to load (or
            was pruned) while the log has already been compacted past
            batch zero — the missing history cannot be replayed.
        WalCorruptionError: the log is damaged before its tail.
    """
    with maybe_span(obs, "recovery_scan"):
        return _recover_state_inner(manager)


def _recover_state_inner(manager: CheckpointManager) -> RecoveredState:
    manifest = manager.read_manifest()
    state = manager.latest_state()
    records = manager.wal.replay()

    covered = 0 if state is None else state.batches_applied
    if state is None and records and records[0].seq > 0:
        # The log was compacted up to some snapshot generation, but no
        # snapshot loads: the batches before records[0].seq are gone.
        # This is distinct from an out-of-order log (below) — the
        # operator's fix is to restore a quarantined/backed-up snapshot,
        # not to repair the WAL.
        raise CorruptStateError(
            f"no snapshot in {manager.directory} loads, but the WAL "
            f"starts at batch {records[0].seq}: batches 0.."
            f"{records[0].seq - 1} are unrecoverable. Restore a "
            f"snapshot-*.npz (quarantined copies are kept as "
            f"*.corrupt) or rebuild from the source stream."
        )
    tail = tuple(r for r in records if r.seq >= covered)

    expected = covered
    for record in tail:
        if record.seq != expected:
            raise PersistenceError(
                f"WAL tail is not contiguous with the snapshot: expected "
                f"batch {expected}, found {record.seq} in "
                f"{manager.wal.path}"
            )
        expected += 1

    return RecoveredState(
        manifest=manifest,
        state=state,
        tail=tail,
        last_seq=expected,
    )


def recovery_exists(wal_dir: str | pathlib.Path) -> bool:
    """Whether ``wal_dir`` looks like a durable summarizer directory."""
    return (pathlib.Path(wal_dir) / "manifest.json").exists()
