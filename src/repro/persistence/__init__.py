"""Durable state for incremental bubble maintenance.

The paper's promise is a summary that is "available at any point in time"
over a changing database — this package extends that availability across
process lifetimes. It provides:

* :mod:`~repro.persistence.wal` — an append-only, checksummed write-ahead
  log of :class:`~repro.database.UpdateBatch` records;
* :mod:`~repro.persistence.snapshot` — versioned, atomically-written
  snapshots of the full summarizer state (raw sufficient statistics,
  seeds, memberships, store content, RNG state);
* :mod:`~repro.persistence.checkpoint` — cadence control: snapshot every
  K batches, then truncate the log;
* :mod:`~repro.persistence.recovery` — loads the newest valid snapshot
  and assembles the WAL tail for replay through the normal maintenance
  path, tolerating a torn final record;
* :mod:`~repro.persistence.state` — the
  :class:`~repro.persistence.state.SummarizerState` value object the
  other modules exchange.

The user-facing entry point is
:class:`~repro.streaming.DurableSummarizer`, which wires a
:class:`~repro.streaming.SlidingWindowSummarizer` to all of the above.
See ``docs/PERSISTENCE.md`` for the formats and the recovery semantics.
"""

from .checkpoint import CheckpointManager
from .recovery import RecoveredState, recover_state, recovery_exists
from .snapshot import SNAPSHOT_VERSION, read_snapshot, write_snapshot
from .state import SummarizerState, config_from_dict, config_to_dict
from .wal import (
    ChainReport,
    WalRecord,
    WriteAheadLog,
    decode_batch,
    encode_batch,
    verify_chain,
)

__all__ = [
    "ChainReport",
    "CheckpointManager",
    "RecoveredState",
    "SNAPSHOT_VERSION",
    "SummarizerState",
    "WalRecord",
    "WriteAheadLog",
    "config_from_dict",
    "config_to_dict",
    "decode_batch",
    "encode_batch",
    "read_snapshot",
    "recover_state",
    "recovery_exists",
    "verify_chain",
    "write_snapshot",
]
