"""Versioned snapshot files for summarizer state.

A snapshot is one compressed ``.npz`` archive holding a
:class:`~repro.persistence.state.SummarizerState`: every numeric array is
stored as-is (raw sufficient statistics included — see ``state.py`` on why
they are never recomputed) and the scalar/structured remainder travels as
one JSON document under the ``meta_json`` key.

Writes are **atomic**: the archive is written to a temporary sibling,
flushed to disk, then ``os.replace``d over the final name. A crash mid-write
leaves at most a stale ``*.tmp`` file, never a half-written snapshot under
the real name — which is what lets recovery treat "the newest snapshot that
loads" as "the newest snapshot that was fully written".

Reads validate the format version and re-wrap every decoding failure in
:class:`~repro.exceptions.SnapshotError` so recovery can fall back to an
older snapshot instead of crashing on a damaged file.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from ..exceptions import SnapshotError
from ..faults import FAILPOINTS, RetryPolicy, declare_failpoint, maybe_wrap
from ..faults import fsync as faulty_fsync
from .state import SummarizerState, config_from_dict, config_to_dict

__all__ = ["SNAPSHOT_VERSION", "write_snapshot", "read_snapshot"]

SNAPSHOT_VERSION = 1

# Crash-matrix failpoints: a crash at tmp_written leaves a stale *.tmp
# (swept at the next startup); a crash at replaced leaves a fully valid
# snapshot whose directory entry may not be durable yet.
_FP_TMP_WRITTEN = declare_failpoint("snapshot.tmp_written")
_FP_REPLACED = declare_failpoint("snapshot.replaced")


def write_snapshot(
    path: str | pathlib.Path,
    state: SummarizerState,
    fsync: bool = True,
    retry: RetryPolicy | None = None,
) -> pathlib.Path:
    """Atomically persist ``state`` to ``path``; returns the final path.

    Transient IO errors while writing the temporary sibling are retried
    with backoff (the partial tmp is discarded between attempts); the
    final ``os.replace`` keeps the write atomic either way.
    """
    path = pathlib.Path(path)
    meta = {
        "snapshot_version": SNAPSHOT_VERSION,
        "dim": state.dim,
        "window_size": state.window_size,
        "points_per_bubble": state.points_per_bubble,
        "seed": state.seed,
        "config": config_to_dict(state.config),
        "batches_applied": state.batches_applied,
        "bootstrapped": state.bootstrapped,
        "store_next_id": state.store_next_id,
        "counter_computed": state.counter_computed,
        "counter_pruned": state.counter_pruned,
        "retired": sorted(int(i) for i in state.retired),
        "max_adjust": state.max_adjust,
        "rng_state": state.rng_state,
    }
    tmp = path.with_name(path.name + ".tmp")

    def write_tmp() -> None:
        with open(tmp, "wb") as raw:
            handle = maybe_wrap(raw, "snapshot")
            np.savez_compressed(
                handle,
                meta_json=np.frombuffer(
                    json.dumps(meta).encode("utf-8"), dtype=np.uint8
                ),
                store_ids=state.store_ids,
                store_points=state.store_points,
                store_labels=state.store_labels,
                store_owners=state.store_owners,
                seeds=state.seeds,
                ns=state.ns,
                linear_sums=state.linear_sums,
                square_sums=state.square_sums,
                member_offsets=state.member_offsets,
                member_ids=state.member_ids,
            )
            handle.flush()
            if fsync:
                faulty_fsync(raw.fileno(), "snapshot")

    def discard_tmp(attempt: int, exc: BaseException) -> None:
        tmp.unlink(missing_ok=True)

    policy = retry if retry is not None else RetryPolicy()
    try:
        policy.call(write_tmp, on_retry=discard_tmp)
    except BaseException:
        # Never leave a half-written tmp behind a *surviving* process;
        # tmp files stranded by crashes are swept at the next startup.
        tmp.unlink(missing_ok=True)
        raise
    FAILPOINTS.fire(_FP_TMP_WRITTEN)
    os.replace(tmp, path)
    FAILPOINTS.fire(_FP_REPLACED)
    if fsync:
        # Persist the rename itself (the directory entry).
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return path


def read_snapshot(path: str | pathlib.Path) -> SummarizerState:
    """Load a snapshot written by :func:`write_snapshot`.

    Raises:
        SnapshotError: the file is unreadable, incomplete, or carries an
            unsupported format version.
    """
    path = pathlib.Path(path)
    try:
        with open(path, "rb") as raw, np.load(
            maybe_wrap(raw, "snapshot"), allow_pickle=False
        ) as archive:
            meta = json.loads(
                bytes(archive["meta_json"].tobytes()).decode("utf-8")
            )
            version = int(meta.get("snapshot_version", -1))
            if version != SNAPSHOT_VERSION:
                raise SnapshotError(
                    f"{path}: unsupported snapshot version {version} "
                    f"(this build reads version {SNAPSHOT_VERSION})"
                )
            rng_state = meta["rng_state"]
            if rng_state is not None:
                # JSON round-trips the PCG64 state ints losslessly
                # (arbitrary-precision), but the generator expects them
                # as plain ints, which json already provides.
                rng_state = _normalize_rng_state(rng_state)
            return SummarizerState(
                dim=int(meta["dim"]),
                window_size=int(meta["window_size"]),
                points_per_bubble=int(meta["points_per_bubble"]),
                seed=None if meta["seed"] is None else int(meta["seed"]),
                config=config_from_dict(meta["config"]),
                batches_applied=int(meta["batches_applied"]),
                bootstrapped=bool(meta["bootstrapped"]),
                store_ids=archive["store_ids"],
                store_points=archive["store_points"],
                store_labels=archive["store_labels"],
                store_owners=archive["store_owners"],
                store_next_id=int(meta["store_next_id"]),
                counter_computed=int(meta["counter_computed"]),
                counter_pruned=int(meta["counter_pruned"]),
                seeds=archive["seeds"],
                ns=archive["ns"],
                linear_sums=archive["linear_sums"],
                square_sums=archive["square_sums"],
                member_offsets=archive["member_offsets"],
                member_ids=archive["member_ids"],
                retired=tuple(int(i) for i in meta["retired"]),
                max_adjust=int(meta["max_adjust"]),
                rng_state=rng_state,
            )
    except SnapshotError:
        raise
    except Exception as exc:  # zipfile errors, KeyError, json errors, ...
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc


def _normalize_rng_state(state: dict) -> dict:
    """Recursively coerce JSON-decoded RNG state back to native ints."""
    result: dict = {}
    for key, value in state.items():
        if isinstance(value, dict):
            result[key] = _normalize_rng_state(value)
        elif isinstance(value, bool):
            result[key] = value
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            result[key] = int(value) if isinstance(value, int) else value
        else:
            result[key] = value
    return result
