"""Unit tests for the adaptive bubble-count maintainer (future work §6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BubbleBuilder, BubbleConfig, PointStore, UpdateBatch
from repro.core import AdaptiveMaintainer, MaintenanceConfig
from repro.exceptions import InvalidConfigError


def make_adaptive(rng, num_points=1000, points_per_bubble=50):
    store = PointStore(dim=2)
    store.insert(rng.normal(size=(num_points, 2)) * 5.0)
    num_bubbles = num_points // points_per_bubble
    bubbles = BubbleBuilder(
        BubbleConfig(num_bubbles=num_bubbles, seed=0)
    ).build(store)
    maintainer = AdaptiveMaintainer(
        bubbles,
        store,
        points_per_bubble=points_per_bubble,
        config=MaintenanceConfig(seed=0),
    )
    return store, bubbles, maintainer


class TestGrowth:
    def test_count_tracks_growing_database(self, rng):
        store, bubbles, maintainer = make_adaptive(rng)
        start = maintainer.active_count
        for _ in range(5):
            batch = UpdateBatch(
                insertions=rng.normal(size=(200, 2)) * 5.0,
                insertion_labels=tuple([0] * 200),
            )
            maintainer.apply_batch(batch)
            assert bubbles.membership_invariant_ok(store.size)
        assert maintainer.active_count > start
        assert maintainer.active_count == maintainer.target_count

    def test_growth_bounded_per_batch(self, rng):
        store, bubbles, maintainer = make_adaptive(rng)
        maintainer._max_adjust = 2  # noqa: SLF001 - white-box bound check
        before = maintainer.active_count
        batch = UpdateBatch(
            insertions=rng.normal(size=(500, 2)) * 5.0,
            insertion_labels=tuple([0] * 500),
        )
        maintainer.apply_batch(batch)
        assert maintainer.active_count <= before + 2


class TestShrink:
    def test_count_tracks_shrinking_database(self, rng):
        store, bubbles, maintainer = make_adaptive(rng)
        for _ in range(6):
            victims = tuple(
                int(i)
                for i in rng.choice(store.ids(), size=120, replace=False)
            )
            maintainer.apply_batch(
                UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
            )
            assert bubbles.membership_invariant_ok(store.size)
        assert maintainer.active_count == maintainer.target_count
        assert maintainer.active_count < 20

    def test_retired_bubbles_stay_empty(self, rng):
        store, bubbles, maintainer = make_adaptive(rng)
        # Shrink hard, then churn with insertions near retired seeds.
        victims = tuple(int(i) for i in store.ids()[:600])
        maintainer.apply_batch(
            UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
        )
        for _ in range(3):
            maintainer.apply_batch(
                UpdateBatch(
                    insertions=rng.normal(size=(30, 2)) * 5.0,
                    insertion_labels=tuple([0] * 30),
                )
            )
            for bubble_id in maintainer.retired_ids:
                assert bubbles[bubble_id].is_empty()
            assert bubbles.membership_invariant_ok(store.size)

    def test_retired_bubbles_revived_on_regrowth(self, rng):
        store, bubbles, maintainer = make_adaptive(rng)
        victims = tuple(int(i) for i in store.ids()[:500])
        maintainer.apply_batch(
            UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
        )
        # Let the bounded steering finish the shrink before regrowing.
        while maintainer.active_count > maintainer.target_count:
            maintainer.apply_batch(UpdateBatch.empty(dim=2))
        retired_before = len(maintainer.retired_ids)
        assert retired_before > 0
        total_bubbles = len(bubbles)
        # Regrow only back toward the original size, so revival suffices
        # and no new bubble ids need allocating.
        for _ in range(2):
            maintainer.apply_batch(
                UpdateBatch(
                    insertions=rng.normal(size=(150, 2)) * 5.0,
                    insertion_labels=tuple([0] * 150),
                )
            )
        # Regrowth reuses parked ids before allocating new ones.
        assert len(maintainer.retired_ids) < retired_before
        assert len(bubbles) == total_bubbles


class TestValidation:
    def test_points_per_bubble_validated(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(100, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=5, seed=0)).build(
            store
        )
        with pytest.raises(InvalidConfigError):
            AdaptiveMaintainer(bubbles, store, points_per_bubble=0)
        with pytest.raises(InvalidConfigError):
            AdaptiveMaintainer(
                bubbles, store, points_per_bubble=10, max_adjust_per_batch=0
            )

    def test_target_count_floor(self, rng):
        store, bubbles, maintainer = make_adaptive(rng, num_points=1000)
        victims = tuple(int(i) for i in store.ids()[:990])
        maintainer.apply_batch(
            UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
        )
        assert maintainer.target_count >= 1
        assert maintainer.active_count >= 1
