"""Property-based tests (hypothesis) for the core invariants.

The invariants under test are the ones the whole scheme rests on:

* sufficient statistics are exactly additive/reversible;
* the extent/nnDist derivations agree with brute force on arbitrary data;
* the triangle-inequality assigner NEVER disagrees with the naive scan —
  Lemma 1 must be airtight or every downstream structure silently skews;
* compactness from statistics equals compactness from coordinates;
* an arbitrary interleaving of insert/delete batches preserves the
  bubble-membership partition and the count identity Σn_i = N;
* the Chebyshev classifier's boundaries always contain the mean and its
  classes partition the bubbles.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.core import NaiveAssigner, TriangleInequalityAssigner, classify_values
from repro.evaluation import compactness, compactness_from_points
from repro.sufficient import SufficientStatistics, extent, nn_dist

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def point_matrices(min_rows: int = 1, max_rows: int = 30, max_dim: int = 5):
    return st.integers(1, max_dim).flatmap(
        lambda d: hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(min_rows, max_rows), st.just(d)
            ),
            elements=finite_floats,
        )
    )


class TestSufficientStatisticsProperties:
    @given(points=point_matrices(min_rows=2))
    def test_insert_remove_roundtrip(self, points):
        stats = SufficientStatistics.from_points(points[:-1])
        n, ls, ss = stats.n, stats.linear_sum.copy(), stats.square_sum
        stats.insert(points[-1])
        stats.remove(points[-1])
        assert stats.n == n
        np.testing.assert_allclose(stats.linear_sum, ls, atol=1e-3, rtol=1e-9)
        assert stats.square_sum == pytest.approx(ss, abs=1e-2, rel=1e-9)

    @given(points=point_matrices(min_rows=2))
    def test_merge_equals_union(self, points):
        k = len(points) // 2
        left = SufficientStatistics.from_points(points[:k]) if k else None
        right = SufficientStatistics.from_points(points[k:])
        union = SufficientStatistics.from_points(points)
        if left is None:
            merged = right
        else:
            left.merge(right)
            merged = left
        assert merged.n == union.n
        np.testing.assert_allclose(
            merged.linear_sum, union.linear_sum, rtol=1e-9, atol=1e-6
        )

    @given(points=point_matrices(min_rows=2, max_rows=15))
    def test_extent_matches_brute_force(self, points):
        stats = SufficientStatistics.from_points(points)
        n = len(points)
        total = 0.0
        for i in range(n):
            for j in range(n):
                total += float(np.sum((points[i] - points[j]) ** 2))
        expected = np.sqrt(total / (n * (n - 1)))
        # The closed form cancels terms of order |x|^2; its absolute error
        # scales with the data magnitude (sqrt of the cancellation noise).
        scale = max(1.0, float(np.abs(points).max()))
        assert extent(stats) == pytest.approx(
            expected, rel=1e-6, abs=1e-4 * scale
        )

    @given(points=point_matrices(min_rows=2, max_rows=20), k=st.integers(1, 25))
    def test_nn_dist_bounded_by_extent(self, points, k):
        stats = SufficientStatistics.from_points(points)
        assert nn_dist(stats, k) <= extent(stats) + 1e-12


class TestAssignerEquivalence:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        data=st.data(),
        num_seeds=st.integers(2, 12),
        num_points=st.integers(1, 20),
        dim=st.integers(1, 4),
    )
    def test_pruned_assignment_equals_naive(
        self, data, num_seeds, num_points, dim
    ):
        seeds = data.draw(
            hnp.arrays(
                dtype=np.float64,
                shape=(num_seeds, dim),
                elements=st.floats(-100, 100),
            )
        )
        points = data.draw(
            hnp.arrays(
                dtype=np.float64,
                shape=(num_points, dim),
                elements=st.floats(-100, 100),
            )
        )
        naive = NaiveAssigner(seeds)
        pruned = TriangleInequalityAssigner(
            seeds, rng=np.random.default_rng(0)
        )
        for point in points:
            a = naive.assign(point)
            b = pruned.assign(point)
            # Ties may resolve differently; distances must match exactly.
            da = np.linalg.norm(seeds[a] - point)
            db = np.linalg.norm(seeds[b] - point)
            assert db == pytest.approx(da, rel=1e-12, abs=1e-12)


class TestMaintenanceInvariants:
    @settings(
        deadline=None,
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10_000),
        batch_plan=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            min_size=1,
            max_size=5,
        ),
    )
    def test_partition_preserved_under_arbitrary_batches(
        self, seed, batch_plan
    ):
        rng = np.random.default_rng(seed)
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(120, 2)) * 10.0)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=8, seed=seed)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=seed)
        )
        for num_del, num_ins in batch_plan:
            alive = store.ids()
            num_del = min(num_del, alive.size - 1)
            deletions = tuple(
                int(i)
                for i in rng.choice(alive, size=num_del, replace=False)
            )
            insertions = rng.normal(size=(num_ins, 2)) * 10.0
            maintainer.apply_batch(
                UpdateBatch(
                    deletions=deletions,
                    insertions=insertions,
                    insertion_labels=tuple([0] * num_ins),
                )
            )
            assert bubbles.membership_invariant_ok(store.size)
            assert bubbles.total_points == store.size
            # Compactness derived from statistics must agree with raw
            # coordinates after every kind of mutation.
            assert compactness(bubbles) == pytest.approx(
                compactness_from_points(bubbles, store), rel=1e-6, abs=1e-5
            )


class TestChebyshevClassifierProperties:
    @given(
        values=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 60),
            elements=st.floats(0, 1),
        ),
        probability=st.floats(0.5, 0.99),
    )
    def test_classes_partition_and_bounds_contain_mean(
        self, values, probability
    ):
        report = classify_values(values, probability)
        assert len(report.classes) == len(values)
        assert report.lower <= report.mean <= report.upper
        ids = (
            set(report.good_ids)
            | set(report.under_filled_ids)
            | set(report.over_filled_ids)
        )
        assert ids == set(range(len(values)))

    @given(
        values=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(2, 60),
            elements=st.floats(0, 1),
        )
    )
    def test_higher_probability_flags_fewer_outliers(self, values):
        loose = classify_values(values, 0.8)
        tight = classify_values(values, 0.99)
        loose_outliers = len(loose.under_filled_ids) + len(
            loose.over_filled_ids
        )
        tight_outliers = len(tight.under_filled_ids) + len(
            tight.over_filled_ids
        )
        assert tight_outliers <= loose_outliers
