"""NDJSON point-event parsing, encoding, and streaming policies."""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import EventError
from repro.service import (
    EVENT_SCHEMA_VERSION,
    PointEvent,
    encode_event,
    parse_event,
    read_events,
    valid_tenant,
    write_events,
)


class TestParse:
    def test_minimal_event(self):
        event = parse_event('{"tenant": "t1", "point": [1.0, 2.0]}')
        assert event.tenant == "t1"
        assert event.point == (1.0, 2.0)
        assert event.label == -1
        assert event.ts is None

    def test_full_event(self):
        event = parse_event(
            '{"schema": 1, "tenant": "user.42", "point": [0.5], '
            '"label": 7, "ts": 3}'
        )
        assert event.label == 7
        assert event.ts == 3.0

    def test_integer_coordinates_coerced(self):
        event = parse_event('{"tenant": "a", "point": [1, 2]}')
        assert event.point == (1.0, 2.0)

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            "[1, 2, 3]",
            '{"tenant": "a"}',
            '{"tenant": "a", "point": []}',
            '{"tenant": "a", "point": "xy"}',
            '{"tenant": "a", "point": [1.0], "schema": 2}',
            '{"tenant": "a", "point": [1.0], "lable": 3}',
            '{"tenant": "a", "point": [NaN]}',
            '{"tenant": "a", "point": [Infinity]}',
            '{"tenant": "a", "point": [true]}',
            '{"tenant": "a", "point": [1.0], "label": 1.5}',
            '{"tenant": "a", "point": [1.0], "label": true}',
            '{"tenant": "a", "point": [1.0], "ts": "noon"}',
            '{"tenant": "", "point": [1.0]}',
            '{"tenant": "../evil", "point": [1.0]}',
            '{"tenant": "a b", "point": [1.0]}',
            '{"point": [1.0]}',
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(EventError):
            parse_event(line)

    def test_lineno_in_message(self):
        with pytest.raises(EventError, match="line 17"):
            parse_event("nope", lineno=17)
        exc = None
        try:
            parse_event("nope", lineno=17)
        except EventError as caught:
            exc = caught
        assert exc.lineno == 17


class TestTenantValidation:
    @pytest.mark.parametrize(
        "tenant", ["a", "tenant-001", "User.42_x", "0" * 64]
    )
    def test_valid(self, tenant):
        assert valid_tenant(tenant)

    @pytest.mark.parametrize(
        "tenant",
        ["", ".", "..", "-lead", ".lead", "a/b", "a" * 65, "é", None],
    )
    def test_invalid(self, tenant):
        assert not valid_tenant(tenant)


class TestRoundTrip:
    def test_encode_parse_identity(self):
        original = PointEvent(
            tenant="t-9",
            point=(0.1, -2.5e-17, 3.141592653589793),
            label=4,
            ts=12.0,
        )
        line = encode_event(original)
        assert "\n" not in line
        assert parse_event(line) == original

    def test_encode_stamps_schema(self):
        line = encode_event(PointEvent(tenant="a", point=(1.0,)))
        assert json.loads(line)["schema"] == EVENT_SCHEMA_VERSION

    def test_default_label_and_ts_omitted(self):
        document = json.loads(
            encode_event(PointEvent(tenant="a", point=(1.0,)))
        )
        assert "label" not in document
        assert "ts" not in document

    def test_write_read_file(self, tmp_path):
        events = [
            PointEvent(tenant=f"t{i}", point=(float(i), -float(i)))
            for i in range(2500)  # crosses the internal write buffer
        ]
        path = tmp_path / "events.ndjson"
        assert write_events(path, events) == 2500
        assert list(read_events(path)) == events


class TestReadPolicies:
    def _source(self):
        return io.StringIO(
            '{"tenant": "a", "point": [1.0]}\n'
            "\n"
            "garbage\n"
            '{"tenant": "b", "point": [2.0]}\n'
        )

    def test_strict_raises_with_lineno(self):
        with pytest.raises(EventError, match="line 3"):
            list(read_events(self._source()))

    def test_skip_counts_and_continues(self):
        seen = []
        events = list(
            read_events(
                self._source(),
                on_bad_event="skip",
                bad_event_sink=seen.append,
            )
        )
        assert [e.tenant for e in events] == ["a", "b"]
        assert len(seen) == 1
        assert isinstance(seen[0], EventError)

    def test_unknown_policy_rejected(self):
        with pytest.raises(EventError, match="unknown event policy"):
            list(read_events(self._source(), on_bad_event="lenient"))
