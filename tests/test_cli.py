"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "figure7", "figure9", "figure10", "figure11", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_option_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.size == 10_000
        assert args.bubbles == 100
        assert args.reps is None
        assert not args.quick

    def test_option_parsing(self):
        args = build_parser().parse_args(
            ["figure9", "--size", "500", "--reps", "2", "--quick"]
        )
        assert args.size == 500
        assert args.reps == 2
        assert args.quick


class TestSummarize:
    def test_requires_wal_dir(self):
        with pytest.raises(SystemExit):
            main(["summarize"])

    def test_fresh_run_creates_durable_state(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        code = main(
            [
                "summarize",
                "--wal-dir", str(state_dir),
                "--chunks", "6",
                "--chunk-size", "100",
                "--window", "400",
                "--points-per-bubble", "40",
                "--checkpoint-every", "3",
                "--no-fsync",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "initialized durable state" in out
        assert "6 batches durable" in out
        assert (state_dir / "manifest.json").exists()
        assert (state_dir / "wal.log").exists()
        assert any(state_dir.glob("snapshot-*.npz"))

    def test_resume_continues_the_stream(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        base = [
            "summarize",
            "--wal-dir", str(state_dir),
            "--chunks", "4",
            "--chunk-size", "100",
            "--window", "400",
            "--points-per-bubble", "40",
            "--checkpoint-every", "3",
            "--no-fsync",
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "4 batches already applied" in out
        assert "8 batches durable" in out

    def test_fresh_run_refuses_existing_state(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        base = [
            "summarize",
            "--wal-dir", str(state_dir),
            "--chunks", "2",
            "--chunk-size", "50",
            "--no-fsync",
        ]
        assert main(base) == 0
        assert main(base) == 1
        assert "already holds durable" in capsys.readouterr().err


class TestMain:
    def test_figure9_quick(self, capsys):
        code = main(
            [
                "figure9",
                "--quick",
                "--size", "600",
                "--bubbles", "15",
                "--batches", "1",
                "--reps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "% bubbles rebuilt" in out

    def test_table1_quick(self, capsys):
        code = main(
            [
                "table1",
                "--quick",
                "--size", "600",
                "--bubbles", "15",
                "--batches", "1",
                "--reps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "complete" in out and "inc" in out

    def test_figure11_quick(self, capsys):
        code = main(
            [
                "figure11",
                "--quick",
                "--size", "600",
                "--bubbles", "15",
                "--batches", "1",
                "--reps", "1",
            ]
        )
        assert code == 0
        assert "saving factor" in capsys.readouterr().out

    def test_figure8_quick(self, capsys):
        code = main(
            [
                "figure8",
                "--quick",
                "--size", "800",
                "--bubbles", "15",
                "--batches", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "max finite reachability" in out

    def test_staleness_quick(self, capsys):
        code = main(
            [
                "staleness",
                "--quick",
                "--size", "800",
                "--bubbles", "15",
                "--batches", "10",
                "--reps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Staleness" in out

    def test_scalability_quick(self, capsys):
        code = main(
            [
                "scalability",
                "--quick",
                "--size", "800",
                "--bubbles", "15",
                "--batches", "1",
                "--reps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "size sweep" in out
        assert "dimensionality sweep" in out
