"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "figure7", "figure9", "figure10", "figure11", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_option_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.size == 10_000
        assert args.bubbles == 100
        assert args.reps is None
        assert not args.quick

    def test_option_parsing(self):
        args = build_parser().parse_args(
            ["figure9", "--size", "500", "--reps", "2", "--quick"]
        )
        assert args.size == 500
        assert args.reps == 2
        assert args.quick


class TestSummarize:
    def test_requires_wal_dir(self):
        with pytest.raises(SystemExit):
            main(["summarize"])

    def test_fresh_run_creates_durable_state(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        code = main(
            [
                "summarize",
                "--wal-dir", str(state_dir),
                "--chunks", "6",
                "--chunk-size", "100",
                "--window", "400",
                "--points-per-bubble", "40",
                "--checkpoint-every", "3",
                "--no-fsync",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "initialized durable state" in out
        assert "6 batches durable" in out
        assert (state_dir / "manifest.json").exists()
        assert (state_dir / "wal.log").exists()
        assert any(state_dir.glob("snapshot-*.npz"))

    def test_resume_continues_the_stream(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        base = [
            "summarize",
            "--wal-dir", str(state_dir),
            "--chunks", "4",
            "--chunk-size", "100",
            "--window", "400",
            "--points-per-bubble", "40",
            "--checkpoint-every", "3",
            "--no-fsync",
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "4 batches already applied" in out
        assert "8 batches durable" in out

    def test_fresh_run_refuses_existing_state(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        base = [
            "summarize",
            "--wal-dir", str(state_dir),
            "--chunks", "2",
            "--chunk-size", "50",
            "--no-fsync",
        ]
        assert main(base) == 0
        assert main(base) == 1
        assert "already holds durable" in capsys.readouterr().err

    def test_resume_refuses_dir_without_manifest(self, tmp_path, capsys):
        """Regression: a manifest-less directory must produce a clear
        error (exit 1, no traceback) and must not be mutated by the
        probe."""
        state_dir = tmp_path / "not_state"
        state_dir.mkdir()
        code = main(
            [
                "summarize",
                "--resume",
                "--wal-dir", str(state_dir),
                "--no-fsync",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "manifest.json is missing" in err
        assert list(state_dir.iterdir()) == []

    def test_resume_refuses_missing_dir_without_creating_it(
        self, tmp_path, capsys
    ):
        state_dir = tmp_path / "never_made"
        code = main(
            [
                "summarize",
                "--resume",
                "--wal-dir", str(state_dir),
                "--no-fsync",
            ]
        )
        assert code == 1
        assert "manifest.json is missing" in capsys.readouterr().err
        assert not state_dir.exists()


class TestObservabilityOutputs:
    def _summarize(self, state_dir, extra):
        return main(
            [
                "summarize",
                "--wal-dir", str(state_dir),
                "--chunks", "8",
                "--chunk-size", "200",
                "--window", "800",
                "--points-per-bubble", "40",
                "--checkpoint-every", "4",
                "--no-fsync",
                *extra,
            ]
        )

    def test_metrics_out_matches_distance_counter(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        code = self._summarize(
            tmp_path / "state", ["--metrics-out", str(metrics_path)]
        )
        assert code == 0
        document = json.loads(metrics_path.read_text())
        values = {
            sample["name"]: sample["value"]
            for sample in document["metrics"]
            if "value" in sample and "labels" not in sample
        }
        computed = values["repro_distance_computed_total"]
        pruned = values["repro_distance_pruned_total"]
        # The registry totals are the DistanceCounter totals the CLI
        # prints (one source of truth for the Figure 10/11 numbers).
        derived = document["derived"]
        assert derived["computed_distances"] == computed
        assert derived["pruned_distances"] == pruned
        assert derived["pruned_fraction"] == pytest.approx(
            pruned / (computed + pruned)
        )
        out = capsys.readouterr().out
        assert f"{computed} distances computed" in out

        prom_text = (tmp_path / "m.prom").read_text()
        assert f"repro_distance_computed_total {computed}" in prom_text
        assert f"repro_distance_pruned_total {pruned}" in prom_text

    def test_trace_out_is_valid_jsonl(self, tmp_path):
        trace_path = tmp_path / "t.jsonl"
        code = self._summarize(
            tmp_path / "state", ["--trace-out", str(trace_path)]
        )
        assert code == 0
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        kinds = {event["kind"] for event in events}
        assert "insert_batch" in kinds
        assert "wal_append" in kinds
        assert "snapshot_write" in kinds
        assert "span_start" in kinds and "span_end" in kinds
        assert all("ts" in event and "seq" in event for event in events)

    def test_timeseries_out_writes_one_window_per_batch(self, tmp_path):
        ts_path = tmp_path / "ts.jsonl"
        code = self._summarize(
            tmp_path / "state", ["--timeseries-out", str(ts_path)]
        )
        assert code == 0
        windows = [
            json.loads(line) for line in ts_path.read_text().splitlines()
        ]
        assert len(windows) == 8  # default window = 1 batch, 8 chunks
        assert all(w["schema"] == 1 for w in windows)
        assert windows[-1]["gauges"]["active_bubbles"] > 0

    def test_timeseries_window_flag_coalesces_batches(self, tmp_path):
        ts_path = tmp_path / "ts.jsonl"
        code = self._summarize(
            tmp_path / "state",
            ["--timeseries-out", str(ts_path), "--timeseries-window", "3"],
        )
        assert code == 0
        windows = [
            json.loads(line) for line in ts_path.read_text().splitlines()
        ]
        # 8 batches in windows of 3: two full windows + a flushed partial.
        assert [w["end_batch"] for w in windows] == [3, 6, 8]

    def test_health_out_writes_report(self, tmp_path, capsys):
        health_path = tmp_path / "health.json"
        code = self._summarize(
            tmp_path / "state", ["--health-out", str(health_path)]
        )
        assert code == 0
        report = json.loads(health_path.read_text())
        assert report["schema"] == 1
        assert report["quality"] is not None
        assert report["pruning"]["distances_computed"] > 0
        assert {row["op"] for row in report["spans"]} >= {
            "stream_append",
            "wal_append",
        }
        assert "wrote health report" in capsys.readouterr().out


class TestReport:
    def test_requires_wal_dir(self):
        with pytest.raises(SystemExit):
            main(["report"])

    def _state_dir(self, tmp_path):
        state_dir = tmp_path / "state"
        assert main(
            [
                "summarize",
                "--wal-dir", str(state_dir),
                "--chunks", "8",
                "--chunk-size", "200",
                "--window", "800",
                "--points-per-bubble", "40",
                "--no-fsync",
            ]
        ) == 0
        return state_dir

    def test_text_report_from_state_directory(self, tmp_path, capsys):
        state_dir = self._state_dir(tmp_path)
        capsys.readouterr()
        assert main(["report", "--wal-dir", str(state_dir)]) == 0
        out = capsys.readouterr().out
        assert "health report (schema 1)" in out
        assert f"source: {state_dir}" in out
        # The span table reflects genuinely measured recovery work.
        assert "recovery" in out
        assert "window points     800" in out

    def test_json_report_and_outputs(self, tmp_path, capsys):
        state_dir = self._state_dir(tmp_path)
        health_path = tmp_path / "health.json"
        ts_path = tmp_path / "ts.jsonl"
        capsys.readouterr()
        assert main(
            [
                "report",
                "--wal-dir", str(state_dir),
                "--format", "json",
                "--health-out", str(health_path),
                "--timeseries-out", str(ts_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        printed = json.loads(out[: out.rindex("}") + 1])
        assert printed["schema"] == 1
        assert printed["stream"]["window_points"] == 800
        assert printed["quality"] is not None
        assert json.loads(health_path.read_text()) == printed
        assert ts_path.exists()

    def test_report_does_not_mutate_state(self, tmp_path, capsys):
        state_dir = self._state_dir(tmp_path)
        before = {
            p.name: p.stat().st_size
            for p in sorted(state_dir.iterdir())
        }
        assert main(["report", "--wal-dir", str(state_dir)]) == 0
        after = {
            p.name: p.stat().st_size
            for p in sorted(state_dir.iterdir())
        }
        assert after == before


class TestStats:
    def test_requires_wal_dir(self):
        with pytest.raises(SystemExit):
            main(["stats"])

    def test_refuses_dir_without_manifest(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["stats", "--wal-dir", str(empty)]) == 1
        assert "manifest.json is missing" in capsys.readouterr().err
        assert list(empty.iterdir()) == []

    def test_reports_state_in_all_formats(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        assert main(
            [
                "summarize",
                "--wal-dir", str(state_dir),
                "--chunks", "6",
                "--chunk-size", "100",
                "--window", "400",
                "--points-per-bubble", "40",
                "--checkpoint-every", "3",
                "--no-fsync",
            ]
        ) == 0
        capsys.readouterr()

        assert main(["stats", "--wal-dir", str(state_dir)]) == 0
        text = capsys.readouterr().out
        assert "repro_stream_batches_applied" in text
        assert "pruned" in text

        assert main(
            ["stats", "--wal-dir", str(state_dir), "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        values = {
            sample["name"]: sample["value"]
            for sample in document["metrics"]
        }
        assert values["repro_stream_batches_applied"] == 6
        assert values["repro_distance_computed_total"] > 0
        assert document["manifest"]["window_size"] == 400

        assert main(
            ["stats", "--wal-dir", str(state_dir), "--format", "prom"]
        ) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_stream_batches_applied gauge" in prom


class TestMain:
    def test_figure9_quick(self, capsys):
        code = main(
            [
                "figure9",
                "--quick",
                "--size", "600",
                "--bubbles", "15",
                "--batches", "1",
                "--reps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "% bubbles rebuilt" in out

    def test_table1_quick(self, capsys):
        code = main(
            [
                "table1",
                "--quick",
                "--size", "600",
                "--bubbles", "15",
                "--batches", "1",
                "--reps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "complete" in out and "inc" in out

    def test_figure11_quick(self, capsys):
        code = main(
            [
                "figure11",
                "--quick",
                "--size", "600",
                "--bubbles", "15",
                "--batches", "1",
                "--reps", "1",
            ]
        )
        assert code == 0
        assert "saving factor" in capsys.readouterr().out

    def test_figure8_quick(self, capsys):
        code = main(
            [
                "figure8",
                "--quick",
                "--size", "800",
                "--bubbles", "15",
                "--batches", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "max finite reachability" in out

    def test_staleness_quick(self, capsys):
        code = main(
            [
                "staleness",
                "--quick",
                "--size", "800",
                "--bubbles", "15",
                "--batches", "10",
                "--reps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Staleness" in out

    def test_scalability_quick(self, capsys):
        code = main(
            [
                "scalability",
                "--quick",
                "--size", "800",
                "--bubbles", "15",
                "--batches", "1",
                "--reps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "size sweep" in out
        assert "dimensionality sweep" in out


class TestCluster:
    def summarized_state(self, tmp_path, chunks=6, chunk_size=100):
        state_dir = tmp_path / "state"
        main(
            [
                "summarize",
                "--wal-dir", str(state_dir),
                "--chunks", str(chunks),
                "--chunk-size", str(chunk_size),
                "--window", "400",
                "--points-per-bubble", "40",
                "--no-fsync",
            ]
        )
        return state_dir

    def test_requires_wal_dir(self):
        with pytest.raises(SystemExit):
            main(["cluster"])

    def test_renders_dendrogram_with_provenance(self, tmp_path, capsys):
        state_dir = self.summarized_state(tmp_path)
        capsys.readouterr()
        code = main(
            ["cluster", "--wal-dir", str(state_dir), "--no-fsync"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clustered" in out
        assert "[cold, no deadline]" in out
        assert "leaf cluster" in out
        assert "n=" in out  # the rendered tree

    def test_deadline_reports_anytime_stages(self, tmp_path, capsys):
        state_dir = self.summarized_state(tmp_path)
        capsys.readouterr()
        code = main(
            [
                "cluster",
                "--wal-dir", str(state_dir),
                "--deadline", "5.0",
                "--min-pts", "10",
                "--no-fsync",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "deadline]" in out
        assert "anytime stages:" in out

    def test_refuses_unbootstrapped_state(self, tmp_path, capsys):
        # 50 points < 2 * points_per_bubble: still buffering toward
        # bootstrap, so there is no summary to cluster.
        state_dir = self.summarized_state(tmp_path, chunks=1, chunk_size=50)
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["cluster", "--wal-dir", str(state_dir), "--no-fsync"])
        assert "not bootstrapped" in capsys.readouterr().err

    def test_metrics_out_includes_cluster_counters(self, tmp_path, capsys):
        state_dir = self.summarized_state(tmp_path)
        capsys.readouterr()
        metrics = tmp_path / "m.json"
        code = main(
            [
                "cluster",
                "--wal-dir", str(state_dir),
                "--metrics-out", str(metrics),
                "--no-fsync",
            ]
        )
        assert code == 0
        doc = json.loads(metrics.read_text())
        values = {
            sample["name"]: sample.get("value")
            for sample in doc["metrics"]
        }
        assert values["repro_cluster_fits_total"] == 1
        assert values["repro_cluster_rebuilds_total"] == 1
