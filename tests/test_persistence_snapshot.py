"""Unit tests for snapshot serialization and the checkpoint manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PersistenceError,
    SlidingWindowSummarizer,
    SnapshotError,
)
from repro.persistence import (
    CheckpointManager,
    read_snapshot,
    write_snapshot,
)


@pytest.fixture
def running_stream(rng):
    """A bootstrapped summarizer with some maintenance history."""
    stream = SlidingWindowSummarizer(
        dim=3, window_size=600, points_per_bubble=40, seed=11
    )
    for _ in range(8):
        stream.append(rng.normal(size=(150, 3)))
    return stream


class TestStateRoundTrip:
    def test_bit_identical_summary(self, tmp_path, running_stream):
        state = running_stream.capture_state(batches_applied=8)
        path = write_snapshot(tmp_path / "snap.npz", state, fsync=False)
        restored = SlidingWindowSummarizer.from_state(read_snapshot(path))

        original = running_stream.summary
        copy = restored.summary
        assert len(original) == len(copy)
        for a, b in zip(original, copy):
            assert a.n == b.n
            assert np.array_equal(a.seed, b.seed)
            # Raw statistics — exact equality, not approximate.
            assert np.array_equal(
                np.asarray(a.stats.linear_sum), np.asarray(b.stats.linear_sum)
            )
            assert a.stats.square_sum == b.stats.square_sum
            assert a.members == b.members

    def test_store_round_trip(self, tmp_path, running_stream):
        state = running_stream.capture_state()
        path = write_snapshot(tmp_path / "snap.npz", state, fsync=False)
        restored = SlidingWindowSummarizer.from_state(read_snapshot(path))
        ids = running_stream.store.ids()
        assert np.array_equal(ids, restored.store.ids())
        assert np.array_equal(
            running_stream.store.points_of(ids),
            restored.store.points_of(ids),
        )
        assert np.array_equal(
            running_stream.store.owners_of(ids),
            restored.store.owners_of(ids),
        )
        assert np.array_equal(
            running_stream.store.labels_of(ids),
            restored.store.labels_of(ids),
        )
        assert running_stream.store.next_id == restored.store.next_id

    def test_rng_and_counter_round_trip(self, tmp_path, running_stream):
        state = running_stream.capture_state()
        path = write_snapshot(tmp_path / "snap.npz", state, fsync=False)
        restored = SlidingWindowSummarizer.from_state(read_snapshot(path))
        assert (
            restored.maintainer.rng_state
            == running_stream.maintainer.rng_state
        )
        assert restored.counter.computed == running_stream.counter.computed
        assert restored.counter.pruned == running_stream.counter.pruned
        assert (
            restored.maintainer.retired_ids
            == running_stream.maintainer.retired_ids
        )

    def test_pre_bootstrap_state_round_trips(self, tmp_path, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=500, points_per_bubble=100, seed=0
        )
        stream.append(rng.normal(size=(50, 2)))  # still buffering
        state = stream.capture_state(batches_applied=1)
        path = write_snapshot(tmp_path / "snap.npz", state, fsync=False)
        restored = SlidingWindowSummarizer.from_state(read_snapshot(path))
        assert not restored.is_ready()
        assert restored.size == 50
        assert np.array_equal(stream.store.ids(), restored.store.ids())

    def test_restored_stream_continues_identically(
        self, tmp_path, running_stream, rng
    ):
        """The restored summarizer and the live one stay in lockstep."""
        state = running_stream.capture_state()
        path = write_snapshot(tmp_path / "snap.npz", state, fsync=False)
        restored = SlidingWindowSummarizer.from_state(read_snapshot(path))
        chunk = rng.normal(size=(150, 3))
        running_stream.append(chunk.copy())
        restored.append(chunk.copy())
        for a, b in zip(running_stream.summary, restored.summary):
            assert a.n == b.n
            assert a.members == b.members
            assert a.stats.square_sum == b.stats.square_sum


class TestSnapshotErrors:
    def test_truncated_file_raises_snapshot_error(
        self, tmp_path, running_stream
    ):
        path = write_snapshot(
            tmp_path / "snap.npz",
            running_stream.capture_state(),
            fsync=False,
        )
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_snapshot(tmp_path / "nope.npz")

    def test_no_tmp_file_left_behind(self, tmp_path, running_stream):
        write_snapshot(
            tmp_path / "snap.npz",
            running_stream.capture_state(),
            fsync=False,
        )
        assert [p.name for p in tmp_path.iterdir()] == ["snap.npz"]


class TestCheckpointManager:
    def test_checkpoint_truncates_wal(self, tmp_path, running_stream, rng):
        manager = CheckpointManager(tmp_path, interval=4, fsync=False)
        from repro import UpdateBatch

        for seq in range(3):
            manager.wal.append(
                seq,
                UpdateBatch(
                    insertions=rng.normal(size=(5, 3)),
                    insertion_labels=(-1,) * 5,
                ),
            )
        assert len(manager.wal.replay()) == 3
        manager.checkpoint(running_stream.capture_state(batches_applied=3))
        assert manager.wal.replay() == []
        assert len(manager.snapshot_paths()) == 1
        manager.close()

    def test_cadence(self, tmp_path, running_stream):
        manager = CheckpointManager(tmp_path, interval=4, fsync=False)
        assert not manager.maybe_checkpoint(
            running_stream.capture_state(batches_applied=3)
        )
        assert manager.maybe_checkpoint(
            running_stream.capture_state(batches_applied=4)
        )
        assert not manager.maybe_checkpoint(
            running_stream.capture_state(batches_applied=0)
        )
        manager.close()

    def test_prunes_old_snapshots(self, tmp_path, running_stream):
        manager = CheckpointManager(tmp_path, interval=1, keep=2, fsync=False)
        for batches in (1, 2, 3, 4):
            manager.checkpoint(
                running_stream.capture_state(batches_applied=batches)
            )
        names = [p.name for p in manager.snapshot_paths()]
        assert names == [
            "snapshot-000000000004.npz",
            "snapshot-000000000003.npz",
        ]
        manager.close()

    def test_latest_state_skips_damaged_snapshot(
        self, tmp_path, running_stream
    ):
        manager = CheckpointManager(tmp_path, interval=1, keep=3, fsync=False)
        manager.checkpoint(running_stream.capture_state(batches_applied=1))
        manager.checkpoint(running_stream.capture_state(batches_applied=2))
        newest = manager.snapshot_paths()[0]
        newest.write_bytes(b"damaged beyond recognition")
        state = manager.latest_state()
        assert state is not None
        assert state.batches_applied == 1
        manager.close()

    def test_latest_state_none_when_all_damaged(
        self, tmp_path, running_stream
    ):
        manager = CheckpointManager(tmp_path, interval=1, fsync=False)
        manager.checkpoint(running_stream.capture_state(batches_applied=1))
        for path in manager.snapshot_paths():
            path.write_bytes(b"zap")
        assert manager.latest_state() is None
        manager.close()

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            CheckpointManager(tmp_path, interval=0)
        with pytest.raises(PersistenceError):
            CheckpointManager(tmp_path, keep=0)

    def test_manifest_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path, fsync=False)
        manager.write_manifest({"dim": 2, "seed": None})
        document = manager.read_manifest()
        assert document["dim"] == 2
        assert document["seed"] is None
        manager.close()

    def test_missing_manifest_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path, fsync=False)
        with pytest.raises(PersistenceError):
            manager.read_manifest()
        manager.close()
