"""Behavioural tests for :class:`repro.DurableSummarizer`.

Crash recovery itself is exercised in ``test_persistence_recovery.py``;
this module covers the no-crash contract: equivalence with the plain
in-memory summarizer, lifecycle (constructor/close/context manager) and
checkpoint cadence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DurableSummarizer,
    PersistenceError,
    SlidingWindowSummarizer,
)
from repro.persistence import CheckpointManager

DIM = 2
WINDOW = 600
PPB = 30
SEED = 3


def make_stream(state_dir, **overrides):
    params = dict(
        dim=DIM,
        window_size=WINDOW,
        points_per_bubble=PPB,
        seed=SEED,
        checkpoint_every=4,
        fsync=False,
    )
    params.update(overrides)
    return DurableSummarizer(state_dir, **params)


class TestEquivalence:
    def test_matches_plain_summarizer(self, tmp_path, rng):
        """Durability must not perturb the summary: same chunks, same
        seed, bit-identical statistics."""
        chunks = [rng.normal(size=(90, DIM)) for _ in range(10)]
        plain = SlidingWindowSummarizer(
            dim=DIM, window_size=WINDOW, points_per_bubble=PPB, seed=SEED
        )
        durable = make_stream(tmp_path / "state")
        for chunk in chunks:
            plain.append(chunk.copy())
            durable.append(chunk.copy())
        assert durable.size == plain.size
        assert len(durable.summary) == len(plain.summary)
        for a, b in zip(plain.summary, durable.summary):
            assert a.n == b.n
            assert np.array_equal(a.seed, b.seed)
            assert np.array_equal(
                np.asarray(a.stats.linear_sum),
                np.asarray(b.stats.linear_sum),
            )
            assert a.stats.square_sum == b.stats.square_sum
            assert a.members == b.members
        durable.close()

    def test_labels_flow_through(self, tmp_path, rng):
        durable = make_stream(tmp_path / "state")
        durable.append(rng.normal(size=(50, DIM)), labels=[5] * 50)
        assert durable.store.ids_with_label(5).size == 50
        durable.close()


class TestLifecycle:
    def test_constructor_refuses_existing_state(self, tmp_path, rng):
        state_dir = tmp_path / "state"
        stream = make_stream(state_dir)
        stream.append(rng.normal(size=(40, DIM)))
        stream.close()
        with pytest.raises(PersistenceError):
            make_stream(state_dir)

    def test_clean_close_checkpoints(self, tmp_path, rng):
        """close() writes a goodbye snapshot: recovery replays nothing."""
        state_dir = tmp_path / "state"
        stream = make_stream(state_dir, checkpoint_every=100)
        for _ in range(3):
            stream.append(rng.normal(size=(40, DIM)))
        stream.close()
        manager = CheckpointManager(state_dir, fsync=False)
        state = manager.latest_state()
        assert state is not None
        assert state.batches_applied == 3
        assert manager.wal.replay() == []
        manager.close()
        recovered = DurableSummarizer.recover(state_dir, fsync=False)
        assert recovered.batches_applied == 3
        recovered.close()

    def test_context_manager_checkpoints_on_clean_exit(self, tmp_path, rng):
        state_dir = tmp_path / "state"
        with make_stream(state_dir, checkpoint_every=100) as stream:
            stream.append(rng.normal(size=(40, DIM)))
        manager = CheckpointManager(state_dir, fsync=False)
        assert len(manager.snapshot_paths()) == 1
        manager.close()

    def test_context_manager_skips_checkpoint_on_exception(
        self, tmp_path, rng
    ):
        """An exception mid-stream must not snapshot possibly-broken
        state; the WAL alone carries the history."""
        state_dir = tmp_path / "state"
        with pytest.raises(RuntimeError):
            with make_stream(state_dir, checkpoint_every=100) as stream:
                stream.append(rng.normal(size=(40, DIM)))
                raise RuntimeError("boom")
        manager = CheckpointManager(state_dir, fsync=False)
        assert manager.snapshot_paths() == []
        assert len(manager.wal.replay()) == 1
        manager.close()

    def test_invalid_chunk_never_reaches_the_log(self, tmp_path, rng):
        """Validation happens before the WAL append — otherwise a bad
        chunk would be durably logged and poison every future replay."""
        state_dir = tmp_path / "state"
        stream = make_stream(state_dir)
        with pytest.raises(ValueError):
            stream.append(rng.normal(size=(10, DIM + 1)))  # wrong dim
        with pytest.raises(ValueError):
            stream.append(rng.normal(size=(WINDOW + 1, DIM)))  # too big
        assert stream.checkpoints.wal.replay() == []
        assert stream.batches_applied == 0
        stream.close()


class TestCheckpointCadence:
    def test_snapshot_every_interval(self, tmp_path, rng):
        state_dir = tmp_path / "state"
        stream = make_stream(state_dir, checkpoint_every=3, keep_snapshots=1)
        for expected in (0, 0, 1, 1, 1, 1):
            stream.append(rng.normal(size=(40, DIM)))
            manager = stream.checkpoints
            assert len(manager.snapshot_paths()) == expected
        # keep=1: the WAL holds only records since the newest snapshot.
        assert [r.seq for r in stream.checkpoints.wal.replay()] == []
        stream.close()

    def test_wal_grows_between_checkpoints(self, tmp_path, rng):
        state_dir = tmp_path / "state"
        stream = make_stream(state_dir, checkpoint_every=10)
        for _ in range(4):
            stream.append(rng.normal(size=(40, DIM)))
        assert [r.seq for r in stream.checkpoints.wal.replay()] == [
            0,
            1,
            2,
            3,
        ]
        stream.close(checkpoint=False)
