"""Unit tests for compactness, ARI / contingency, and run summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BubbleBuilder, BubbleConfig, PointStore
from repro.evaluation import (
    adjusted_rand_index,
    bubble_compactness,
    compactness,
    compactness_from_points,
    contingency_table,
    summarize,
)
from repro.sufficient import SufficientStatistics


class TestCompactness:
    def test_closed_form_matches_brute_force(self, rng):
        points = rng.normal(size=(100, 3))
        stats = SufficientStatistics.from_points(points)
        mean = points.mean(axis=0)
        expected = float(((points - mean) ** 2).sum())
        assert bubble_compactness(stats) == pytest.approx(expected, rel=1e-9)

    def test_empty_bubble_contributes_zero(self):
        assert bubble_compactness(SufficientStatistics(dim=2)) == 0.0

    def test_summary_total_matches_pointwise(
        self, populated_store, built_bubbles
    ):
        fast = compactness(built_bubbles)
        slow = compactness_from_points(built_bubbles, populated_store)
        assert fast == pytest.approx(slow, rel=1e-9)

    def test_tighter_summary_has_lower_compactness(self, populated_store):
        few = BubbleBuilder(BubbleConfig(num_bubbles=4, seed=0)).build(
            populated_store
        )
        few_value = compactness(few)
        many = BubbleBuilder(BubbleConfig(num_bubbles=40, seed=0)).build(
            populated_store
        )
        many_value = compactness(many)
        assert many_value < few_value


class TestContingencyAndAri:
    def test_contingency_counts(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 1, 1])
        table, values_a, values_b = contingency_table(a, b)
        assert values_a.tolist() == [0, 1]
        assert values_b.tolist() == [0, 1]
        assert table.tolist() == [[1, 1], [0, 2]]

    def test_contingency_shape_mismatch(self):
        with pytest.raises(ValueError):
            contingency_table(np.array([0]), np.array([0, 1]))

    def test_ari_identical(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_ari_relabeled(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([7, 7, 3, 3])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_ari_independent_is_near_zero(self, rng):
        a = rng.integers(0, 5, size=5000)
        b = rng.integers(0, 5, size=5000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    def test_ari_symmetry(self, rng):
        a = rng.integers(0, 3, size=200)
        b = rng.integers(0, 4, size=200)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_ari_trivial_cases(self):
        assert adjusted_rand_index(np.array([0]), np.array([0])) == 1.0


class TestSummarize:
    def test_mean_and_std(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4]))
        assert summary.count == 4
        assert summary.values == (1.0, 2.0, 3.0, 4.0)

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.mean == 7.0
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_format(self):
        summary = summarize([1.0, 3.0])
        assert format(summary, ".1f") == "2.0 ± 1.0"
        assert "±" in format(summary)
