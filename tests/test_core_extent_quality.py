"""Unit tests for the extent-based baseline quality measure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BubbleClass, BubbleSet, ExtentQuality
from repro.exceptions import InvalidConfigError


def bubble_set_with_extents(spreads: list[float]) -> BubbleSet:
    """One bubble per requested spread (two points ``spread`` apart)."""
    bubbles = BubbleSet(dim=2)
    pid = 0
    for i, spread in enumerate(spreads):
        bubble = bubbles.add_bubble(np.zeros(2))
        bubble.absorb(pid, np.array([0.0, 0.0]))
        pid += 1
        bubble.absorb(pid, np.array([spread, 0.0]))
        pid += 1
    return bubbles


class TestExtentQuality:
    def test_values_are_extents(self):
        bubbles = bubble_set_with_extents([1.0, 2.0, 3.0])
        report = ExtentQuality(0.9).classify(bubbles, database_size=6)
        assert report.values == pytest.approx(bubbles.extents())

    def test_wide_bubble_flagged(self):
        spreads = [1.0] * 60 + [50.0]
        bubbles = bubble_set_with_extents(spreads)
        report = ExtentQuality(0.9).classify(bubbles, database_size=122)
        assert report.classes[-1] is BubbleClass.OVER_FILLED

    def test_blind_to_point_count(self):
        # The core failure mode of Figure 7: a bubble with far more points
        # but the same spatial extent is NOT flagged by the extent measure.
        # Note: with k = sqrt(10), a lone outlier among B bubbles can only
        # be flagged when (B-1)/sqrt(B) > k, i.e. B >= 13 — hence 20
        # bubbles here (the paper's summaries use far more).
        bubbles = BubbleSet(dim=2)
        pid = 0
        rng = np.random.default_rng(0)
        for b in range(20):
            bubble = bubbles.add_bubble(np.zeros(2))
            count = 300 if b == 0 else 10  # same extent, 30x the points
            for _ in range(count):
                bubble.absorb(pid, rng.normal(0.0, 1.0, size=2))
                pid += 1
        report = ExtentQuality(0.9).classify(bubbles, database_size=pid)
        assert report.classes[0] is BubbleClass.GOOD

        from repro.core import BetaQuality

        beta_report = BetaQuality(0.9).classify(bubbles, database_size=pid)
        assert beta_report.classes[0] is BubbleClass.OVER_FILLED

    def test_database_size_ignored(self):
        bubbles = bubble_set_with_extents([1.0, 1.0])
        a = ExtentQuality(0.9).classify(bubbles, database_size=4)
        b = ExtentQuality(0.9).classify(bubbles, database_size=4000)
        assert a.values == pytest.approx(b.values)
        assert a.classes == b.classes

    def test_probability_validated(self):
        with pytest.raises(InvalidConfigError):
            ExtentQuality(0.0)
