"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    PointStore,
)
from repro.faults import FAILPOINTS


@pytest.fixture(autouse=True)
def _clean_failpoints():
    """Leave the process-wide failpoint registry disarmed between tests."""
    yield
    FAILPOINTS.clear()
    FAILPOINTS.enable()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_cluster_points(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Two well-separated 2-d Gaussian clusters plus light noise."""
    points = np.vstack(
        [
            rng.normal([0.0, 0.0], 0.5, size=(300, 2)),
            rng.normal([10.0, 10.0], 0.5, size=(300, 2)),
            rng.uniform(-3.0, 13.0, size=(30, 2)),
        ]
    )
    labels = np.concatenate(
        [
            np.zeros(300, dtype=np.int64),
            np.ones(300, dtype=np.int64),
            np.full(30, -1, dtype=np.int64),
        ]
    )
    return points, labels


@pytest.fixture
def populated_store(
    two_cluster_points: tuple[np.ndarray, np.ndarray],
) -> PointStore:
    """A store holding the two-cluster dataset."""
    points, labels = two_cluster_points
    store = PointStore(dim=2)
    store.insert(points, labels)
    return store


@pytest.fixture
def built_bubbles(populated_store: PointStore):
    """A freshly built 12-bubble summary of the two-cluster store."""
    builder = BubbleBuilder(BubbleConfig(num_bubbles=12, seed=7))
    return builder.build(populated_store)
