"""Unit tests for the cluster-tree utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    ClusterNode,
    ClusterTree,
    labels_at_depth,
    leaf_labels,
    render_tree,
)


def nested_tree() -> ClusterTree:
    root = ClusterNode(start=0, end=100)
    left = ClusterNode(start=0, end=40, split_value=5.0)
    right = ClusterNode(start=40, end=100, split_value=5.0)
    leaf_a = ClusterNode(start=0, end=20, split_value=2.0)
    leaf_b = ClusterNode(start=20, end=40, split_value=2.0)
    left.children = [leaf_a, leaf_b]
    root.children = [left, right]
    return ClusterTree(root=root)


class TestLabelsAtDepth:
    def test_depth_one_is_root_children(self):
        labels = labels_at_depth(nested_tree(), depth=1)
        assert (labels[:40] == 0).all()
        assert (labels[40:] == 1).all()

    def test_depth_two_expands_where_possible(self):
        labels = labels_at_depth(nested_tree(), depth=2)
        assert (labels[:20] == 0).all()
        assert (labels[20:40] == 1).all()
        # The right child is a leaf at depth 1: it keeps its span.
        assert (labels[40:] == 2).all()

    def test_depth_beyond_tree_equals_leaves(self):
        tree = nested_tree()
        deep = labels_at_depth(tree, depth=10)
        assert deep.tolist() == leaf_labels(tree).tolist()

    def test_childless_root_single_cluster(self):
        tree = ClusterTree(root=ClusterNode(start=0, end=10))
        labels = labels_at_depth(tree, depth=1)
        assert (labels == 0).all()

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            labels_at_depth(nested_tree(), depth=0)


class TestLeafLabels:
    def test_covers_everything(self):
        labels = leaf_labels(nested_tree())
        assert labels.shape == (100,)
        assert (labels >= 0).all()
        assert sorted(set(labels.tolist())) == [0, 1, 2]

    def test_leaf_order_is_plot_order(self):
        labels = leaf_labels(nested_tree())
        assert labels[0] == 0 and labels[25] == 1 and labels[50] == 2


class TestRenderTree:
    def test_structure_markers(self):
        text = render_tree(nested_tree())
        lines = text.splitlines()
        assert lines[0].startswith("[0, 100)")
        assert any("├──" in line for line in lines)
        assert any("└──" in line for line in lines)
        assert "split@5" in text

    def test_root_without_split_height(self):
        text = render_tree(nested_tree())
        assert "split@inf" not in text

    def test_single_node(self):
        tree = ClusterTree(root=ClusterNode(start=0, end=7))
        assert render_tree(tree) == "[0, 7)  n=7"

    def test_end_to_end(self, rng):
        from repro.clustering import PointOptics, extract_cluster_tree

        points = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(60, 2)),
                rng.normal([9, 0], 0.2, size=(60, 2)),
            ]
        )
        plot = PointOptics(min_pts=5).fit(points)
        tree = extract_cluster_tree(plot.reachability, min_size=20)
        labels = labels_at_depth(tree, depth=1)
        # Ordering positions of the two blobs get distinct labels.
        assert len(set(labels.tolist())) == 2
        text = render_tree(tree)
        assert "n=120" in text
