"""Hash-chained WAL integrity: v2 format, verify_chain, v1 backcompat."""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro import UpdateBatch, WalCorruptionError
from repro.persistence import WriteAheadLog, encode_batch, verify_chain

MAGIC_V1 = b"RPROWAL1"
MAGIC_V2 = b"RPROWAL2"
HEADER = struct.Struct("<QII")
CHAIN_LEN = 32


def make_batch(rng, m=4, d=3):
    return UpdateBatch(
        deletions=(),
        insertions=rng.normal(size=(m, d)),
        insertion_labels=tuple([-1] * m),
    )


def write_log(path, rng, count=3):
    with WriteAheadLog(path, fsync=False) as wal:
        for seq in range(count):
            wal.append(seq, make_batch(rng))
    return path


def write_v1_log(path, rng, count=3):
    """Hand-assemble a pre-chain (version 1) log file."""
    blob = bytearray(MAGIC_V1)
    batches = []
    for seq in range(count):
        batch = make_batch(rng)
        batches.append(batch)
        payload = encode_batch(batch)
        crc = zlib.crc32(struct.pack("<QI", seq, len(payload)) + payload)
        blob += HEADER.pack(seq, len(payload), crc)
        blob += payload
    path.write_bytes(bytes(blob))
    return batches


class TestV2Format:
    def test_new_files_are_version_2(self, tmp_path, rng):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            assert wal.version == 2
            assert wal.chained
        assert (tmp_path / "wal.log").read_bytes()[:8] == MAGIC_V2

    def test_records_carry_distinct_chain_digests(self, tmp_path, rng):
        path = write_log(tmp_path / "wal.log", rng, count=2)
        data = path.read_bytes()
        offset = 8
        digests = []
        for _ in range(2):
            _, length, _ = HEADER.unpack(data[offset : offset + HEADER.size])
            offset += HEADER.size
            digests.append(data[offset : offset + CHAIN_LEN])
            offset += CHAIN_LEN + length
        assert offset == len(data)
        assert len(set(digests)) == 2
        assert all(len(d) == CHAIN_LEN for d in digests)

    def test_replay_round_trips(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        batches = []
        with WriteAheadLog(path, fsync=False) as wal:
            for seq in range(4):
                batch = make_batch(rng)
                batches.append(batch)
                wal.append(seq, batch)
        with WriteAheadLog(path, fsync=False) as wal:
            records = wal.replay()
        assert [r.seq for r in records] == [0, 1, 2, 3]
        for record, batch in zip(records, batches):
            assert np.array_equal(record.batch.insertions, batch.insertions)

    def test_append_after_reopen_without_replay(self, tmp_path, rng):
        """The lazy chain-tip scan keeps blind appends consistent."""
        path = write_log(tmp_path / "wal.log", rng, count=2)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(2, make_batch(rng))
        report = verify_chain(path)
        assert report.ok and report.records == 3 and not report.torn_tail

    def test_reset_restarts_the_chain(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(0, make_batch(rng))
            wal.reset()
            wal.append(5, make_batch(rng))
            assert [r.seq for r in wal.replay()] == [5]
        report = verify_chain(path)
        assert report.ok and report.records == 1

    def test_compact_restarts_the_chain(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            for seq in range(4):
                wal.append(seq, make_batch(rng))
            wal.compact(min_seq=2)
            assert [r.seq for r in wal.replay()] == [2, 3]
            # The chain head tracked in memory matches the rewritten
            # file: further appends must verify.
            wal.append(4, make_batch(rng))
        report = verify_chain(path)
        assert report.ok and report.records == 3


class TestVerifyChain:
    def test_clean_log_verifies(self, tmp_path, rng):
        path = write_log(tmp_path / "wal.log", rng, count=3)
        report = verify_chain(path)
        assert report.ok
        assert report.version == 2
        assert report.records == 3
        assert not report.torn_tail
        assert report.bad_seq is None

    def test_single_bit_flip_detected_everywhere(self, tmp_path, rng):
        """Flip one bit at every byte of the file: never a clean pass."""
        path = write_log(tmp_path / "wal.log", rng, count=2)
        original = path.read_bytes()
        clean = verify_chain(path)
        assert clean.ok and clean.records == 2 and not clean.torn_tail
        for offset in range(len(original)):
            mutated = bytearray(original)
            mutated[offset] ^= 0x01
            path.write_bytes(bytes(mutated))
            report = verify_chain(path)
            # Detection = the report is not a clean full-length pass: a
            # flip in the final record's CRC-covered bytes is (soundly)
            # indistinguishable from a torn write and reported as such.
            assert not (
                report.ok
                and not report.torn_tail
                and report.records == clean.records
            ), f"bit flip at byte {offset} went undetected"
        path.write_bytes(original)
        assert verify_chain(path).ok

    def test_flip_names_the_offending_seq(self, tmp_path, rng):
        path = write_log(tmp_path / "wal.log", rng, count=3)
        data = bytearray(path.read_bytes())
        # Payload byte of record 1: skip magic + record 0, then record
        # 1's header and chain digest.
        offset = 8
        _, length0, _ = HEADER.unpack(data[offset : offset + HEADER.size])
        offset += HEADER.size + CHAIN_LEN + length0
        record1 = offset
        offset += HEADER.size + CHAIN_LEN
        data[offset + 10] ^= 0xFF
        path.write_bytes(bytes(data))
        report = verify_chain(path)
        assert not report.ok
        assert report.bad_seq == 1
        assert report.bad_record == 1
        assert report.reason == "crc_mismatch"
        # A flip in the stored chain digest (CRC still valid) is the
        # chain's own catch.
        data = bytearray(path.read_bytes())
        data[offset + 10] ^= 0xFF  # undo
        data[record1 + HEADER.size + 3] ^= 0x10
        path.write_bytes(bytes(data))
        report = verify_chain(path)
        assert not report.ok
        assert report.bad_seq == 1
        assert report.reason == "chain_mismatch"

    def test_torn_tail_tolerated_readonly(self, tmp_path, rng):
        path = write_log(tmp_path / "wal.log", rng, count=3)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        report = verify_chain(path)
        assert report.ok
        assert report.torn_tail
        assert report.records == 2
        # Read-only: the torn bytes are still on disk afterwards.
        assert path.read_bytes() == data[:-7]

    def test_bad_magic_reported(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        report = verify_chain(path)
        assert not report.ok
        assert report.reason == "bad_magic"
        assert report.version == 0

    def test_v1_file_gets_crc_only_coverage(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        write_v1_log(path, rng, count=2)
        report = verify_chain(path)
        assert report.ok
        assert report.version == 1
        assert report.records == 2


class TestReplayDivergence:
    def test_replay_raises_on_chain_mismatch_with_seq(self, tmp_path, rng):
        path = write_log(tmp_path / "wal.log", rng, count=3)
        data = bytearray(path.read_bytes())
        # Corrupt record 0's stored chain digest; its CRC stays valid.
        data[8 + HEADER.size + 1] ^= 0x01
        path.write_bytes(bytes(data))
        with WriteAheadLog(path, fsync=False) as wal:
            with pytest.raises(WalCorruptionError, match="seq 0"):
                wal.replay()

    def test_replay_raises_even_on_final_record_chain_break(
        self, tmp_path, rng
    ):
        """A complete final record with valid CRC but a wrong chain is
        corruption, not a torn write — it must not be truncated away."""
        path = write_log(tmp_path / "wal.log", rng, count=2)
        data = bytearray(path.read_bytes())
        offset = 8
        _, length0, _ = HEADER.unpack(data[offset : offset + HEADER.size])
        offset += HEADER.size + CHAIN_LEN + length0
        data[offset + HEADER.size + 5] ^= 0x40
        path.write_bytes(bytes(data))
        with WriteAheadLog(path, fsync=False) as wal:
            with pytest.raises(WalCorruptionError, match="hash-chain"):
                wal.replay()
        # And nothing was truncated by the failed replay.
        assert path.read_bytes() == bytes(data)


class TestV1Backcompat:
    def test_v1_file_replays(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        batches = write_v1_log(path, rng, count=3)
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.version == 1
            assert not wal.chained
            records = wal.replay()
        assert [r.seq for r in records] == [0, 1, 2]
        for record, batch in zip(records, batches):
            assert np.array_equal(record.batch.insertions, batch.insertions)

    def test_v1_appends_stay_v1(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        write_v1_log(path, rng, count=1)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, make_batch(rng))
            assert [r.seq for r in wal.replay()] == [0, 1]
        assert path.read_bytes()[:8] == MAGIC_V1
        report = verify_chain(path)
        assert report.ok and report.version == 1 and report.records == 2

    def test_v1_compact_keeps_v1(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        write_v1_log(path, rng, count=3)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.compact(min_seq=1)
            assert [r.seq for r in wal.replay()] == [1, 2]
        assert path.read_bytes()[:8] == MAGIC_V1

    def test_v1_torn_tail_still_repaired(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        write_v1_log(path, rng, count=2)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with WriteAheadLog(path, fsync=False) as wal:
            assert [r.seq for r in wal.replay()] == [0]
            wal.append(1, make_batch(rng))
            assert [r.seq for r in wal.replay()] == [0, 1]
