"""Unit tests for session persistence (save_session / load_session)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
    load_session,
    save_session,
)
from repro.database import PointStore as StoreClass
from repro.evaluation import compactness


@pytest.fixture
def session(rng):
    store = PointStore(dim=3)
    store.insert(rng.normal(size=(400, 3)), rng.integers(0, 3, size=400))
    store.delete(store.ids()[::7])  # punch id gaps
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=12, seed=0)).build(store)
    return store, bubbles


class TestRoundTrip:
    def test_store_roundtrip(self, session, tmp_path):
        store, bubbles = session
        path = tmp_path / "session.npz"
        save_session(path, store, bubbles)
        store2, bubbles2 = load_session(path)
        assert store2.size == store.size
        assert store2.dim == store.dim
        assert (store2.ids() == store.ids()).all()
        _, pa, la = store.snapshot()
        _, pb, lb = store2.snapshot()
        assert pa == pytest.approx(pb)
        assert la.tolist() == lb.tolist()

    def test_summary_roundtrip(self, session, tmp_path):
        store, bubbles = session
        path = tmp_path / "session.npz"
        save_session(path, store, bubbles)
        _, bubbles2 = load_session(path)
        assert bubbles2 is not None
        assert len(bubbles2) == len(bubbles)
        assert bubbles2.counts().tolist() == bubbles.counts().tolist()
        assert bubbles2.reps() == pytest.approx(bubbles.reps())
        assert bubbles2.extents() == pytest.approx(bubbles.extents())
        assert compactness(bubbles2) == pytest.approx(compactness(bubbles))
        for a, b in zip(bubbles, bubbles2):
            assert a.members == b.members

    def test_ownership_roundtrip(self, session, tmp_path):
        store, bubbles = session
        path = tmp_path / "session.npz"
        save_session(path, store, bubbles)
        store2, _ = load_session(path)
        for pid in store.ids():
            assert store2.owner(int(pid)) == store.owner(int(pid))

    def test_store_only_session(self, session, tmp_path):
        store, _ = session
        path = tmp_path / "store.npz"
        save_session(path, store)
        store2, bubbles2 = load_session(path)
        assert bubbles2 is None
        assert store2.size == store.size

    def test_ids_not_reused_after_reload(self, session, tmp_path):
        store, bubbles = session
        path = tmp_path / "session.npz"
        save_session(path, store, bubbles)
        store2, _ = load_session(path)
        new_ids = store2.insert(np.zeros((1, 3)))
        assert new_ids[0] > int(store.ids().max())

    def test_maintenance_continues_after_reload(self, session, tmp_path, rng):
        """The point of persistence: resume incremental maintenance."""
        store, bubbles = session
        path = tmp_path / "session.npz"
        save_session(path, store, bubbles)
        store2, bubbles2 = load_session(path)
        maintainer = IncrementalMaintainer(
            bubbles2, store2, MaintenanceConfig(seed=1)
        )
        victims = tuple(int(i) for i in store2.ids()[:40])
        report = maintainer.apply_batch(
            UpdateBatch(
                deletions=victims,
                insertions=rng.normal(size=(40, 3)),
                insertion_labels=tuple([0] * 40),
            )
        )
        assert report.num_insertions == 40
        assert bubbles2.membership_invariant_ok(store2.size)


class TestValidation:
    def test_unsupported_format_version_rejected(self, session, tmp_path):
        import numpy as np

        store, bubbles = session
        path = tmp_path / "session.npz"
        save_session(path, store, bubbles)
        # Tamper with the version field.
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.int64(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="format version"):
            load_session(path)

    def test_desynchronized_pair_rejected(self, session, tmp_path):
        store, bubbles = session
        # Delete a point behind the summary's back.
        victim = next(iter(bubbles[0].members))
        store.delete([victim])
        with pytest.raises(ValueError):
            save_session(tmp_path / "bad.npz", store, bubbles)

    def test_from_snapshot_validation(self):
        with pytest.raises(ValueError):
            StoreClass.from_snapshot(
                dim=2,
                ids=np.array([3, 1]),  # not ascending
                points=np.zeros((2, 2)),
                labels=np.zeros(2, dtype=np.int64),
            )
        with pytest.raises(ValueError):
            StoreClass.from_snapshot(
                dim=2,
                ids=np.array([0, 1]),
                points=np.zeros((2, 3)),  # wrong dim
                labels=np.zeros(2, dtype=np.int64),
            )
        with pytest.raises(ValueError):
            StoreClass.from_snapshot(
                dim=2,
                ids=np.array([0, 5]),
                points=np.zeros((2, 2)),
                labels=np.zeros(2, dtype=np.int64),
                next_id=3,  # collides with alive id 5
            )
