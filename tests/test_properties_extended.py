"""Additional property-based tests for the newer subsystems.

Complements ``test_properties.py`` with invariants of the bubble distance
function, the CF-tree, the stream summarizer and the deep consistency
validator under randomized workloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    SlidingWindowSummarizer,
    UpdateBatch,
)
from repro.birch import CFTree
from repro.clustering import BubbleOptics, extract_xi
from repro.core import verify_consistency
from repro.sufficient import SufficientStatistics

coords = st.floats(-50.0, 50.0)


def stats_pair(data, min_points=2, max_points=20, dim=3):
    a = data.draw(
        hnp.arrays(np.float64, (data.draw(st.integers(min_points, max_points)), dim), elements=coords)
    )
    b = data.draw(
        hnp.arrays(np.float64, (data.draw(st.integers(min_points, max_points)), dim), elements=coords)
    )
    return (
        SufficientStatistics.from_points(a),
        SufficientStatistics.from_points(b),
    )


class TestBubbleDistanceProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_symmetry(self, data):
        stats_a, stats_b = stats_pair(data)
        ab = BubbleOptics.distance(stats_a, stats_b)
        ba = BubbleOptics.distance(stats_b, stats_a)
        assert ab == pytest.approx(ba, rel=1e-9, abs=1e-9)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_non_negative(self, data):
        stats_a, stats_b = stats_pair(data)
        assert BubbleOptics.distance(stats_a, stats_b) >= 0.0

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data(), shift=hnp.arrays(np.float64, 3, elements=coords))
    def test_translation_invariance(self, data, shift):
        points_a = data.draw(hnp.arrays(np.float64, (5, 3), elements=coords))
        points_b = data.draw(hnp.arrays(np.float64, (7, 3), elements=coords))
        base = BubbleOptics.distance(
            SufficientStatistics.from_points(points_a),
            SufficientStatistics.from_points(points_b),
        )
        shifted = BubbleOptics.distance(
            SufficientStatistics.from_points(points_a + shift),
            SufficientStatistics.from_points(points_b + shift),
        )
        assert shifted == pytest.approx(base, rel=1e-6, abs=1e-5)


class TestCfTreeProperties:
    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        points=hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 120), st.just(2)),
            elements=coords,
        ),
        threshold=st.floats(0.05, 20.0),
    )
    def test_mass_conservation_and_radius_cap(self, points, threshold):
        tree = CFTree(threshold=threshold, branching=4, leaf_capacity=4)
        tree.insert_many(points)
        entries = tree.leaf_entries()
        assert sum(cf.n for cf in entries) == len(points)
        for cf in entries:
            assert cf.radius() <= threshold + 1e-6
        # The summarized mass equals the input mass component-wise.
        total_ls = sum(
            (cf.stats.linear_sum.copy() for cf in entries),
            start=np.zeros(2),
        )
        np.testing.assert_allclose(
            total_ls, points.sum(axis=0), rtol=1e-9, atol=1e-6
        )


class TestXiProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        reach=hnp.arrays(
            np.float64,
            st.integers(2, 60),
            elements=st.floats(0.01, 10.0),
        ),
        xi=st.floats(0.01, 0.5),
    )
    def test_spans_are_within_bounds_and_min_size(self, reach, xi):
        reach = reach.copy()
        reach[0] = np.inf
        clusters = extract_xi(reach, xi=xi, min_size=3)
        for cluster in clusters:
            assert 0 <= cluster.start < cluster.end <= len(reach)
            assert cluster.size >= 3


class TestStreamProperties:
    @settings(
        deadline=None,
        max_examples=15,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 1000),
        chunk_sizes=st.lists(st.integers(1, 120), min_size=3, max_size=10),
    )
    def test_window_never_overflows_and_stays_consistent(
        self, seed, chunk_sizes
    ):
        rng = np.random.default_rng(seed)
        stream = SlidingWindowSummarizer(
            dim=2, window_size=200, points_per_bubble=25, seed=seed
        )
        for size in chunk_sizes:
            stream.append(rng.normal(size=(size, 2)) * 10.0)
            assert stream.size <= 200
            if stream.is_ready():
                report = verify_consistency(stream.summary, stream.store)
                report.raise_if_invalid()


class TestValidatorAgainstMaintainer:
    @settings(
        deadline=None,
        max_examples=10,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 500))
    def test_maintainer_always_passes_deep_validation(self, seed):
        rng = np.random.default_rng(seed)
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(150, 2)) * 20.0)
        bubbles = BubbleBuilder(
            BubbleConfig(num_bubbles=8, seed=seed)
        ).build(store)
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=seed)
        )
        for _ in range(3):
            alive = store.ids()
            victims = tuple(
                int(i)
                for i in rng.choice(
                    alive, size=min(25, alive.size - 1), replace=False
                )
            )
            maintainer.apply_batch(
                UpdateBatch(
                    deletions=victims,
                    insertions=rng.normal(size=(25, 2)) * 20.0,
                    insertion_labels=tuple([0] * 25),
                )
            )
            verify_consistency(bubbles, store).raise_if_invalid()
