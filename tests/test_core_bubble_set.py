"""Unit tests for the bubble container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BubbleSet
from repro.exceptions import DimensionMismatchError


def make_set(num: int = 3, dim: int = 2) -> BubbleSet:
    bubbles = BubbleSet(dim=dim)
    for i in range(num):
        bubbles.add_bubble(np.full(dim, float(i)))
    return bubbles


class TestContainer:
    def test_dense_ids(self):
        bubbles = make_set(4)
        assert [b.bubble_id for b in bubbles] == [0, 1, 2, 3]
        assert len(bubbles) == 4
        assert bubbles[2].bubble_id == 2
        assert bubbles.get(3).bubble_id == 3

    def test_seed_dimension_checked(self):
        bubbles = BubbleSet(dim=2)
        with pytest.raises(DimensionMismatchError):
            bubbles.add_bubble(np.zeros(3))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            BubbleSet(dim=0)


class TestAggregates:
    def test_counts_and_total(self):
        bubbles = make_set(3)
        bubbles[0].absorb(10, np.zeros(2))
        bubbles[0].absorb(11, np.ones(2))
        bubbles[2].absorb(12, np.zeros(2))
        assert bubbles.counts().tolist() == [2, 0, 1]
        assert bubbles.total_points == 3

    def test_betas_sum_to_one_when_covering(self):
        bubbles = make_set(3)
        for i in range(9):
            bubbles[i % 3].absorb(i, np.zeros(2))
        betas = bubbles.betas()
        assert betas.sum() == pytest.approx(1.0)
        assert betas == pytest.approx([1 / 3] * 3)

    def test_betas_with_explicit_size(self):
        bubbles = make_set(2)
        bubbles[0].absorb(0, np.zeros(2))
        assert bubbles.betas(database_size=10).tolist() == [0.1, 0.0]

    def test_betas_of_empty_summary(self):
        assert make_set(2).betas().tolist() == [0.0, 0.0]

    def test_reps_fall_back_to_seed(self):
        bubbles = make_set(2)
        bubbles[0].absorb(0, np.array([4.0, 4.0]))
        reps = bubbles.reps()
        assert reps[0] == pytest.approx([4.0, 4.0])
        assert reps[1] == pytest.approx([1.0, 1.0])  # seed of bubble 1

    def test_seeds_matrix(self):
        bubbles = make_set(3)
        assert bubbles.seeds()[1] == pytest.approx([1.0, 1.0])

    def test_extents_vector(self):
        bubbles = make_set(2)
        bubbles[0].absorb(0, np.array([0.0, 0.0]))
        bubbles[0].absorb(1, np.array([3.0, 4.0]))
        extents = bubbles.extents()
        assert extents[0] == pytest.approx(5.0)
        assert extents[1] == 0.0

    def test_non_empty_ids(self):
        bubbles = make_set(3)
        bubbles[1].absorb(0, np.zeros(2))
        assert bubbles.non_empty_ids() == [1]


class TestInvariant:
    def test_partition_detected(self):
        bubbles = make_set(2)
        bubbles[0].absorb(0, np.zeros(2))
        bubbles[1].absorb(1, np.zeros(2))
        assert bubbles.membership_invariant_ok(database_size=2)

    def test_size_mismatch_detected(self):
        bubbles = make_set(2)
        bubbles[0].absorb(0, np.zeros(2))
        assert not bubbles.membership_invariant_ok(database_size=2)

    def test_overlap_detected(self):
        bubbles = make_set(2)
        bubbles[0].absorb(0, np.zeros(2))
        bubbles[1].absorb(0, np.zeros(2))  # same point id in two bubbles
        assert not bubbles.membership_invariant_ok(database_size=2)
