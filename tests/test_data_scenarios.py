"""Unit tests for the six dynamic scenarios (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    SCENARIO_KINDS,
    AppearScenario,
    ComplexScenario,
    DisappearScenario,
    ExtremeAppearScenario,
    Figure7Scenario,
    GradMoveScenario,
    RandomScenario,
    make_scenario,
)
from repro.data.stream import apply_raw
from repro.database import PointStore


def drive(scenario, num_batches: int, fraction: float = 0.1) -> PointStore:
    """Populate a store and apply raw batches (no summary involved)."""
    store = PointStore(dim=scenario.dim)
    scenario.populate(store)
    for _ in range(num_batches):
        batch = scenario.make_batch(store, fraction)
        apply_raw(store, batch)
    return store


class TestFactory:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_all_kinds_constructible(self, kind):
        scenario = make_scenario(kind, dim=2, initial_size=500, seed=0)
        points, labels = scenario.initial()
        assert points.shape == (500, 2)
        assert labels.shape == (500,)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_scenario("nope", dim=2, initial_size=100)

    def test_figure7_constructible(self):
        scenario = make_scenario("figure7", dim=2, initial_size=400, seed=0)
        assert isinstance(scenario, Figure7Scenario)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_scenario("random", dim=0, initial_size=100)
        with pytest.raises(ValueError):
            make_scenario("random", dim=2, initial_size=0)


class TestBatchVolume:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_database_size_constant(self, kind):
        scenario = make_scenario(kind, dim=2, initial_size=800, seed=1)
        store = drive(scenario, num_batches=5)
        assert store.size == 800

    def test_half_and_half(self):
        scenario = RandomScenario(dim=2, initial_size=1000, seed=0)
        store = PointStore(dim=2)
        scenario.populate(store)
        batch = scenario.make_batch(store, update_fraction=0.1)
        assert batch.num_deletions == 50
        assert batch.num_insertions == 50

    def test_invalid_fraction(self):
        scenario = RandomScenario(dim=2, initial_size=100, seed=0)
        store = PointStore(dim=2)
        scenario.populate(store)
        with pytest.raises(ValueError):
            scenario.make_batch(store, update_fraction=0.0)
        with pytest.raises(ValueError):
            scenario.make_batch(store, update_fraction=1.5)

    def test_deletions_are_alive_and_unique(self):
        scenario = RandomScenario(dim=2, initial_size=500, seed=2)
        store = PointStore(dim=2)
        scenario.populate(store)
        batch = scenario.make_batch(store, 0.2)
        assert len(set(batch.deletions)) == len(batch.deletions)
        for pid in batch.deletions:
            assert pid in store


class TestAppear:
    def test_new_cluster_grows_to_target(self):
        scenario = AppearScenario(dim=2, initial_size=1000, seed=3)
        store = drive(scenario, num_batches=20, fraction=0.1)
        new_label = scenario.new_cluster.label
        count = store.ids_with_label(new_label).size
        assert count >= scenario.target_size * 0.6

    def test_new_cluster_inside_noise_region(self):
        scenario = AppearScenario(dim=2, initial_size=500, seed=4)
        low, high = scenario.mixture.bounds
        center = scenario.new_cluster.center
        assert (center >= low).all() and (center <= high).all()

    def test_extreme_appear_outside_all_previous_data(self):
        scenario = ExtremeAppearScenario(dim=2, initial_size=500, seed=5)
        low, high = scenario.mixture.bounds
        center = scenario.new_cluster.center
        assert (center > high).all()

    def test_new_label_is_fresh(self):
        scenario = AppearScenario(dim=2, initial_size=500, seed=6)
        assert scenario.new_cluster.label not in scenario.mixture.labels()


class TestDisappear:
    def test_victim_drains(self):
        scenario = DisappearScenario(dim=2, initial_size=1000, seed=7)
        store = PointStore(dim=2)
        scenario.populate(store)
        before = store.ids_with_label(scenario.victim_label).size
        for _ in range(8):
            apply_raw(store, scenario.make_batch(store, 0.2))
        after = store.ids_with_label(scenario.victim_label).size
        assert before > 0
        assert after < before * 0.2

    def test_no_victim_insertions(self):
        scenario = DisappearScenario(dim=2, initial_size=500, seed=8)
        store = PointStore(dim=2)
        scenario.populate(store)
        batch = scenario.make_batch(store, 0.1)
        assert scenario.victim_label not in batch.insertion_labels


class TestGradMove:
    def test_cluster_centroid_moves(self):
        scenario = GradMoveScenario(dim=2, initial_size=1000, seed=9)
        store = PointStore(dim=2)
        scenario.populate(store)
        label = scenario.mover_label
        start = store.points_of(store.ids_with_label(label)).mean(axis=0)
        for _ in range(10):
            apply_raw(store, scenario.make_batch(store, 0.2))
        end = store.points_of(store.ids_with_label(label)).mean(axis=0)
        assert np.linalg.norm(end - start) > 3.0

    def test_mover_population_stable(self):
        scenario = GradMoveScenario(dim=2, initial_size=1000, seed=10)
        store = PointStore(dim=2)
        scenario.populate(store)
        label = scenario.mover_label
        before = store.ids_with_label(label).size
        for _ in range(5):
            apply_raw(store, scenario.make_batch(store, 0.1))
        after = store.ids_with_label(label).size
        assert after == pytest.approx(before, rel=0.3)

    def test_step_validated(self):
        with pytest.raises(ValueError):
            GradMoveScenario(dim=2, initial_size=100, seed=0, step_stds=0.0)


class TestComplex:
    def test_all_dynamics_progress(self):
        scenario = ComplexScenario(dim=2, initial_size=2000, seed=11)
        store = PointStore(dim=2)
        scenario.populate(store)
        victim_before = store.ids_with_label(scenario.victim_label).size
        mover_start = store.points_of(
            store.ids_with_label(scenario.mover_label)
        ).mean(axis=0)
        for _ in range(12):
            apply_raw(store, scenario.make_batch(store, 0.1))
        assert store.size == 2000
        # Disappear progressed.
        assert (
            store.ids_with_label(scenario.victim_label).size < victim_before
        )
        # Appear progressed.
        assert store.ids_with_label(scenario.appearing_label).size > 0
        # Move progressed.
        mover_end = store.points_of(
            store.ids_with_label(scenario.mover_label)
        ).mean(axis=0)
        assert np.linalg.norm(mover_end - mover_start) > 1.0

    def test_distinct_roles(self):
        scenario = ComplexScenario(dim=2, initial_size=500, seed=12)
        labels = {
            scenario.victim_label,
            scenario.mover_label,
            scenario.appearing_label,
        }
        assert len(labels) == 3


class TestFigure7:
    def test_middle_disappears_and_two_appear(self):
        scenario = Figure7Scenario(dim=2, initial_size=1000, seed=13)
        store = drive(scenario, num_batches=12, fraction=0.1)
        assert store.ids_with_label(1).size < 50  # middle drained
        assert store.ids_with_label(2).size > 100
        assert store.ids_with_label(3).size > 100

    def test_new_clusters_far_right(self):
        scenario = Figure7Scenario(dim=2, initial_size=400, seed=14)
        one, two = scenario.new_cluster_centers
        assert one[0] > 50.0 and two[0] > 50.0
