"""Windowed time-series telemetry: deltas, ring bounds, serialization."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    TIMESERIES_SCHEMA_VERSION,
    Observability,
    TimeseriesRecorder,
)
from repro.observability.timeseries import TRACKED_COUNTERS


def _recorder(interval: int = 1, capacity: int = 4096):
    recorder = TimeseriesRecorder(interval=interval, capacity=capacity)
    obs = Observability(timeseries=recorder)
    return obs, recorder


class TestWindows:
    def test_windows_record_per_window_deltas(self):
        obs, recorder = _recorder()
        computed = obs.metrics.counter("repro_distance_computed_total")
        computed.inc(10)
        recorder.maybe_roll()
        computed.inc(7)
        recorder.maybe_roll()
        first, second = recorder.samples
        assert first.counters["repro_distance_computed_total"] == 10
        assert second.counters["repro_distance_computed_total"] == 7
        assert (first.start_batch, first.end_batch) == (0, 1)
        assert (second.start_batch, second.end_batch) == (1, 2)

    def test_interval_amortises_gauge_probes(self):
        obs, recorder = _recorder(interval=3)
        probes = []
        for batch in range(7):
            recorder.maybe_roll(lambda: probes.append(1) or {"n": 1})
        # Two closed windows (batches 3 and 6); the probe ran only there.
        assert len(recorder.samples) == 2
        assert len(probes) == 2
        assert [s.end_batch for s in recorder.samples] == [3, 6]

    def test_flush_closes_partial_window(self):
        obs, recorder = _recorder(interval=4)
        recorder.maybe_roll()
        recorder.maybe_roll()
        sample = recorder.flush(lambda: {"active_bubbles": 9})
        assert sample is not None
        assert sample.end_batch == 2
        assert sample.gauges == {"active_bubbles": 9}
        # Nothing pending: a second flush is a no-op.
        assert recorder.flush() is None

    def test_deltas_sum_across_label_sets(self):
        obs, recorder = _recorder()
        obs.metrics.counter(
            "repro_wal_appends_total", labels={"domain": "a"}
        ).inc(2)
        obs.metrics.counter(
            "repro_wal_appends_total", labels={"domain": "b"}
        ).inc(3)
        recorder.maybe_roll()
        (sample,) = recorder.samples
        assert sample.counters["repro_wal_appends_total"] == 5

    def test_every_tracked_counter_is_present_even_at_zero(self):
        obs, recorder = _recorder()
        recorder.maybe_roll()
        (sample,) = recorder.samples
        assert set(sample.counters) == set(TRACKED_COUNTERS)
        assert all(value == 0 for value in sample.counters.values())

    def test_window_close_emits_timeseries_window_event(self):
        obs, recorder = _recorder()
        recorder.maybe_roll()
        assert obs.event_count("timeseries_window") == 1


class TestRingBounds:
    def test_ring_drops_oldest_at_capacity(self):
        obs, recorder = _recorder(capacity=3)
        for _ in range(5):
            recorder.maybe_roll()
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert [s.window for s in recorder.samples] == [2, 3, 4]

    def test_exact_capacity_drops_nothing(self):
        obs, recorder = _recorder(capacity=3)
        for _ in range(3):
            recorder.maybe_roll()
        assert len(recorder) == 3
        assert recorder.dropped == 0

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError, match="interval"):
            TimeseriesRecorder(interval=0)
        with pytest.raises(ValueError, match="capacity"):
            TimeseriesRecorder(capacity=0)


class TestBinding:
    def test_unbound_recorder_refuses_rolls(self):
        recorder = TimeseriesRecorder()
        with pytest.raises(ValueError, match="not bound"):
            recorder.maybe_roll()

    def test_recorder_cannot_serve_two_handles(self):
        recorder = TimeseriesRecorder()
        Observability(timeseries=recorder)
        with pytest.raises(ValueError, match="already bound"):
            Observability(timeseries=recorder)


class TestSerialization:
    def test_jsonl_lines_carry_schema_and_sections(self, tmp_path):
        obs, recorder = _recorder()
        obs.metrics.counter("repro_distance_pruned_total").inc(4)
        recorder.maybe_roll(lambda: {"active_bubbles": 12})
        recorder.maybe_roll()
        path = tmp_path / "ts.jsonl"
        recorder.write_jsonl(path)
        lines = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert len(lines) == 2
        for line in lines:
            assert line["schema"] == TIMESERIES_SCHEMA_VERSION
            assert set(line) == {
                "schema",
                "window",
                "start_batch",
                "end_batch",
                "counters",
                "gauges",
            }
        assert lines[0]["counters"]["repro_distance_pruned_total"] == 4
        assert lines[0]["gauges"] == {"active_bubbles": 12}
        assert lines[1]["gauges"] == {}
