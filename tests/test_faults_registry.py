"""Failpoint registry semantics: arming, gating, env parsing."""

from __future__ import annotations

import errno

import pytest

from repro.faults import (
    CRASH_EXIT_CODE,
    FailpointRegistry,
    FaultSpec,
    declare_failpoint,
    failpoint,
    install_from_env,
    known_failpoints,
)


class TestFaultSpec:
    def test_defaults_to_an_eio_error(self):
        spec = FaultSpec(name="p")
        exc = spec.make_exception()
        assert isinstance(exc, OSError)
        assert exc.errno == errno.EIO
        assert "injected at p" in str(exc)

    def test_errno_accepts_symbolic_names(self):
        spec = FaultSpec(name="p", errno="ENOSPC")
        assert spec.errno == errno.ENOSPC

    def test_unknown_errno_name_rejected(self):
        with pytest.raises(ValueError, match="unknown errno"):
            FaultSpec(name="p", errno="ENOTANERRNO")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(name="p", kind="explode")

    def test_fraction_bounds_enforced(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultSpec(name="p", kind="torn", fraction=1.5)

    def test_torn_then_must_be_crash_or_error(self):
        with pytest.raises(ValueError, match="'crash' or 'error'"):
            FaultSpec(name="p", kind="torn", then="retry")

    def test_custom_exception_factory_wins_over_errno(self):
        spec = FaultSpec(name="p", exc=lambda: RuntimeError("boom"))
        assert isinstance(spec.make_exception(), RuntimeError)

    def test_delay_executes_through_injected_sleep(self):
        slept: list[float] = []
        spec = FaultSpec(name="p", kind="delay", delay=2.5)
        spec.execute(sleep=slept.append)
        assert slept == [2.5]


class TestRegistry:
    def test_fire_on_empty_registry_is_a_no_op(self):
        registry = FailpointRegistry()
        registry.fire("anything")  # must not raise

    def test_armed_error_fires(self):
        registry = FailpointRegistry()
        registry.arm("p", "error", errno=errno.ENOSPC)
        with pytest.raises(OSError) as excinfo:
            registry.fire("p")
        assert excinfo.value.errno == errno.ENOSPC

    def test_other_names_unaffected(self):
        registry = FailpointRegistry()
        registry.arm("p", "error")
        registry.fire("q")  # must not raise
        assert registry.hits("p") == 0

    def test_after_skips_the_first_hits(self):
        registry = FailpointRegistry()
        registry.arm("p", "error", after=2)
        registry.fire("p")
        registry.fire("p")
        with pytest.raises(OSError):
            registry.fire("p")
        assert registry.consultations("p") == 3
        assert registry.hits("p") == 1

    def test_times_bounds_how_often_it_fires(self):
        registry = FailpointRegistry()
        registry.arm("p", "error", times=2)
        for _ in range(2):
            with pytest.raises(OSError):
                registry.fire("p")
        registry.fire("p")  # exhausted: transient fault healed
        assert registry.hits("p") == 2
        assert registry.consultations("p") == 3

    def test_rearming_resets_hit_counters(self):
        registry = FailpointRegistry()
        registry.arm("p", "error", times=1)
        with pytest.raises(OSError):
            registry.fire("p")
        registry.arm("p", "error", times=1)
        assert registry.hits("p") == 0
        with pytest.raises(OSError):
            registry.fire("p")

    def test_disarm_and_clear(self):
        registry = FailpointRegistry()
        registry.arm("p", "error")
        assert registry.disarm("p") is True
        assert registry.disarm("p") is False
        registry.arm("a", "error")
        registry.arm("b", "error")
        registry.clear()
        assert registry.armed_names() == ()

    def test_disabled_context_suppresses_without_disarming(self):
        registry = FailpointRegistry()
        registry.arm("p", "error")
        with registry.disabled():
            registry.fire("p")
            assert not registry.enabled
        assert registry.enabled
        with pytest.raises(OSError):
            registry.fire("p")

    def test_has_prefix_reflects_armed_names_and_enablement(self):
        registry = FailpointRegistry()
        assert not registry.has_prefix("io.wal.")
        registry.arm("io.wal.write", "error")
        assert registry.has_prefix("io.wal.")
        assert not registry.has_prefix("io.snapshot.")
        registry.disable()
        assert not registry.has_prefix("io.wal.")

    def test_trigger_returns_the_spec_for_interpreters(self):
        registry = FailpointRegistry()
        spec = registry.arm("p", "torn", fraction=0.25)
        assert registry.trigger("p") is spec
        assert registry.trigger("q") is None

    def test_delay_fires_through_injected_sleep(self):
        registry = FailpointRegistry()
        registry.arm("p", "delay", delay=1.0)
        slept: list[float] = []
        registry.fire("p", sleep=slept.append)
        assert slept == [1.0]


class TestFailpointContextmanager:
    def test_arms_for_the_block_only(self):
        registry = FailpointRegistry()
        with failpoint("p", "error", registry=registry):
            assert registry.is_armed("p")
            with pytest.raises(OSError):
                registry.fire("p")
        assert not registry.is_armed("p")

    def test_disarms_even_when_the_block_raises(self):
        registry = FailpointRegistry()
        with pytest.raises(RuntimeError):
            with failpoint("p", "error", registry=registry):
                raise RuntimeError("unrelated")
        assert not registry.is_armed("p")


class TestDeclaration:
    def test_declared_names_are_enumerable(self):
        name = declare_failpoint("test.registry.declared")
        assert name == "test.registry.declared"
        assert "test.registry.declared" in known_failpoints()

    def test_persistence_failpoints_are_declared_on_import(self):
        import repro.persistence  # noqa: F401 - triggers declarations

        names = known_failpoints()
        for expected in (
            "wal.append.start",
            "wal.append.flushed",
            "wal.compact.rewritten",
            "wal.compact.replaced",
            "checkpoint.snapshot_written",
            "checkpoint.done",
            "manifest.tmp_written",
            "snapshot.tmp_written",
            "snapshot.replaced",
        ):
            assert expected in names


class TestInstallFromEnv:
    def test_empty_value_arms_nothing(self):
        registry = FailpointRegistry()
        assert install_from_env(registry, environ={}) == ()
        assert registry.armed_names() == ()

    def test_crash_directive_with_exit_code(self):
        registry = FailpointRegistry()
        armed = install_from_env(
            registry, environ={"REPRO_FAILPOINTS": "p=crash:41"}
        )
        assert armed == ("p",)
        spec = registry.trigger("p")
        assert spec.kind == "crash"
        assert spec.exit_code == 41

    def test_crash_directive_defaults_to_the_canonical_exit_code(self):
        registry = FailpointRegistry()
        install_from_env(registry, environ={"REPRO_FAILPOINTS": "p=crash"})
        assert registry.trigger("p").exit_code == CRASH_EXIT_CODE

    def test_error_directive_with_symbolic_errno(self):
        registry = FailpointRegistry()
        install_from_env(
            registry, environ={"REPRO_FAILPOINTS": "p=error:ENOSPC"}
        )
        spec = registry.trigger("p")
        assert spec.kind == "error"
        assert spec.errno == errno.ENOSPC

    def test_delay_directive(self):
        registry = FailpointRegistry()
        install_from_env(
            registry, environ={"REPRO_FAILPOINTS": "p=delay:0.125"}
        )
        spec = registry.trigger("p")
        assert spec.kind == "delay"
        assert spec.delay == 0.125

    def test_torn_directive_with_fraction_and_then(self):
        registry = FailpointRegistry()
        install_from_env(
            registry,
            environ={"REPRO_FAILPOINTS": "p=torn:0.25:ENOSPC"},
        )
        spec = registry.trigger("p")
        assert spec.kind == "torn"
        assert spec.fraction == 0.25
        assert spec.then == "error"
        assert spec.errno == errno.ENOSPC

    def test_torn_then_crash(self):
        registry = FailpointRegistry()
        install_from_env(
            registry, environ={"REPRO_FAILPOINTS": "p=torn:0.5:crash"}
        )
        assert registry.trigger("p").then == "crash"

    def test_after_suffix(self):
        registry = FailpointRegistry()
        install_from_env(
            registry, environ={"REPRO_FAILPOINTS": "p=crash@3"}
        )
        spec = registry._armed["p"].spec
        assert spec.after == 3
        for _ in range(3):
            assert registry.trigger("p") is None
        assert registry.trigger("p") is spec

    def test_multiple_comma_separated_directives(self):
        registry = FailpointRegistry()
        armed = install_from_env(
            registry,
            environ={
                "REPRO_FAILPOINTS": (
                    "io.wal.fsync=error:ENOSPC, snapshot.tmp_written=crash"
                )
            },
        )
        assert set(armed) == {"io.wal.fsync", "snapshot.tmp_written"}

    def test_malformed_directive_rejected(self):
        registry = FailpointRegistry()
        with pytest.raises(ValueError, match="malformed failpoint"):
            install_from_env(
                registry, environ={"REPRO_FAILPOINTS": "no-equals-sign"}
            )

    def test_custom_key(self):
        registry = FailpointRegistry()
        armed = install_from_env(
            registry, environ={"OTHER": "p=error"}, key="OTHER"
        )
        assert armed == ("p",)
