"""Regression tests: DurableSummarizer.close() lifecycle hygiene.

Service shards close their summarizers from several paths (drain,
failure, fleet shutdown, context-manager exit), so double-close must be
a no-op and a *failed* recovery must not leak the WAL file handle it
opened before discovering the corruption.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import PersistenceError
from repro.streaming import DurableSummarizer


def open_fds() -> set[str]:
    """Targets of every open file descriptor of this process."""
    fds = set()
    for entry in os.listdir("/proc/self/fd"):
        try:
            fds.add(os.readlink(f"/proc/self/fd/{entry}"))
        except OSError:
            continue  # the listing fd itself, already gone
    return fds


def build_state(tmp_path, batches=6):
    rng = np.random.default_rng(0)
    summarizer = DurableSummarizer(
        tmp_path / "state", dim=2, window_size=400,
        points_per_bubble=40, seed=0, checkpoint_every=3, fsync=False,
    )
    for _ in range(batches):
        summarizer.append(rng.normal(size=(100, 2)))
    return summarizer


class TestIdempotentClose:
    def test_double_close(self, tmp_path):
        summarizer = build_state(tmp_path)
        batches = summarizer.batches_applied
        summarizer.close()
        summarizer.close()  # must not raise or double-checkpoint
        recovered = DurableSummarizer.recover(
            tmp_path / "state", fsync=False
        )
        assert recovered.batches_applied == batches
        recovered.close()
        recovered.close(checkpoint=False)

    def test_close_without_checkpoint_then_close(self, tmp_path):
        summarizer = build_state(tmp_path)
        summarizer.close(checkpoint=False)
        # Second close must not resurrect the handle to checkpoint.
        summarizer.close(checkpoint=True)

    def test_close_releases_wal_handle(self, tmp_path):
        summarizer = build_state(tmp_path)
        wal_path = str((tmp_path / "state" / "wal.log").resolve())
        assert wal_path in open_fds()
        summarizer.close()
        assert wal_path not in open_fds()

    def test_append_after_close_fails_cleanly(self, tmp_path):
        summarizer = build_state(tmp_path)
        summarizer.close()
        with pytest.raises(Exception):
            summarizer.append(np.zeros((10, 2)))


class TestFailedRecover:
    def test_failed_recover_leaks_no_handles(self, tmp_path):
        build_state(tmp_path).close()
        # Corrupt the newest snapshot: recovery opens the WAL first,
        # then discovers the snapshot is unreadable and must give the
        # handle back.
        snapshots = sorted((tmp_path / "state").glob("snapshot-*.npz"))
        assert snapshots
        for snapshot in snapshots:
            snapshot.write_bytes(b"not a real npz payload")
        before = open_fds()
        with pytest.raises(PersistenceError):
            DurableSummarizer.recover(tmp_path / "state", fsync=False)
        leaked = open_fds() - before
        assert not leaked, f"failed recover leaked handles: {leaked}"

    def test_failed_recover_allows_retry_after_repair(self, tmp_path):
        summarizer = build_state(tmp_path)
        summarizer.close()
        state_dir = tmp_path / "state"
        snapshots = sorted(state_dir.glob("snapshot-*.npz"))
        saved = {p: p.read_bytes() for p in snapshots}
        for snapshot in snapshots:
            snapshot.write_bytes(b"garbage")
        with pytest.raises(PersistenceError):
            DurableSummarizer.recover(state_dir, fsync=False)
        for path, payload in saved.items():
            path.write_bytes(payload)
        # The failed attempt must not have locked or mutated anything
        # that blocks a clean retry.
        recovered = DurableSummarizer.recover(state_dir, fsync=False)
        assert recovered.batches_applied == 6
        recovered.close()
