"""Unit tests for a single data bubble."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DataBubble
from repro.exceptions import EmptyBubbleError


def make_bubble(seed=(0.0, 0.0)) -> DataBubble:
    return DataBubble(bubble_id=0, seed=np.asarray(seed, dtype=float))


class TestLifecycle:
    def test_starts_empty(self):
        bubble = make_bubble()
        assert bubble.is_empty()
        assert bubble.n == 0
        assert bubble.extent == 0.0
        assert bubble.nn_dist(5) == 0.0

    def test_empty_rep_is_seed(self):
        bubble = make_bubble((3.0, 4.0))
        assert bubble.rep == pytest.approx([3.0, 4.0])

    def test_absorb_updates_rep(self):
        bubble = make_bubble()
        bubble.absorb(1, np.array([2.0, 2.0]))
        bubble.absorb(2, np.array([4.0, 4.0]))
        assert bubble.n == 2
        assert bubble.rep == pytest.approx([3.0, 3.0])
        assert bubble.members == {1, 2}

    def test_double_absorb_rejected(self):
        bubble = make_bubble()
        bubble.absorb(1, np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            bubble.absorb(1, np.array([1.0, 1.0]))

    def test_release_restores_empty(self):
        bubble = make_bubble()
        point = np.array([1.0, 2.0])
        bubble.absorb(5, point)
        bubble.release(5, point)
        assert bubble.is_empty()
        assert bubble.members == frozenset()

    def test_release_nonmember_rejected(self):
        bubble = make_bubble()
        with pytest.raises(ValueError):
            bubble.release(9, np.array([0.0, 0.0]))

    def test_clear_returns_member_ids(self):
        bubble = make_bubble()
        for i in range(3):
            bubble.absorb(i, np.array([float(i), 0.0]))
        released = bubble.clear()
        assert released == [0, 1, 2]
        assert bubble.is_empty()


class TestBulkOperations:
    def test_absorb_many_matches_loop(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(20, 2))
        ids = np.arange(20)
        bulk = make_bubble()
        bulk.absorb_many(ids, points)
        loop = make_bubble()
        for i, p in zip(ids, points):
            loop.absorb(int(i), p)
        assert bulk.n == loop.n
        assert bulk.rep == pytest.approx(loop.rep)
        assert bulk.extent == pytest.approx(loop.extent)
        assert bulk.members == loop.members

    def test_absorb_many_rejects_duplicates(self):
        bubble = make_bubble()
        with pytest.raises(ValueError):
            bubble.absorb_many(np.array([1, 1]), np.zeros((2, 2)))

    def test_absorb_many_rejects_existing_member(self):
        bubble = make_bubble()
        bubble.absorb(1, np.zeros(2))
        with pytest.raises(ValueError):
            bubble.absorb_many(np.array([1]), np.zeros((1, 2)))

    def test_release_many(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(10, 2))
        bubble = make_bubble()
        bubble.absorb_many(np.arange(10), points)
        bubble.release_many(np.arange(5), points[:5])
        assert bubble.n == 5
        assert bubble.members == set(range(5, 10))

    def test_release_many_nonmember_rejected(self):
        bubble = make_bubble()
        bubble.absorb(0, np.zeros(2))
        with pytest.raises(ValueError):
            bubble.release_many(np.array([0, 1]), np.zeros((2, 2)))

    def test_member_ids_sorted(self):
        bubble = make_bubble()
        for i in (5, 1, 3):
            bubble.absorb(i, np.zeros(2))
        assert bubble.member_ids().tolist() == [1, 3, 5]


class TestReseed:
    def test_reseed_requires_empty(self):
        bubble = make_bubble()
        bubble.absorb(1, np.ones(2))
        with pytest.raises(EmptyBubbleError):
            bubble.reseed(np.zeros(2))

    def test_reseed_moves_seed_and_rep(self):
        bubble = make_bubble((0.0, 0.0))
        bubble.reseed(np.array([7.0, 8.0]))
        assert bubble.seed == pytest.approx([7.0, 8.0])
        assert bubble.rep == pytest.approx([7.0, 8.0])

    def test_reseed_shape_checked(self):
        bubble = make_bubble()
        with pytest.raises(ValueError):
            bubble.reseed(np.zeros(3))

    def test_seed_defensively_copied(self):
        seed = np.array([1.0, 2.0])
        bubble = DataBubble(bubble_id=0, seed=seed)
        seed[0] = 99.0
        assert bubble.seed == pytest.approx([1.0, 2.0])

    def test_seed_view_is_readonly(self):
        bubble = make_bubble()
        with pytest.raises(ValueError):
            bubble.seed[0] = 5.0


class TestDerivedQuantities:
    def test_extent_matches_sufficient_stats(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(30, 3))
        bubble = DataBubble(bubble_id=0, seed=np.zeros(3))
        bubble.absorb_many(np.arange(30), points)
        from repro.sufficient import SufficientStatistics, extent

        expected = extent(SufficientStatistics.from_points(points))
        assert bubble.extent == pytest.approx(expected)

    def test_nn_dist_zero_when_empty(self):
        assert make_bubble().nn_dist(1) == 0.0

    def test_invalid_seed_shape(self):
        with pytest.raises(ValueError):
            DataBubble(bubble_id=0, seed=np.zeros((2, 2)))
