"""Unit tests for the instrumented distance counter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import CounterSnapshot, DistanceCounter


class TestDistanceCounter:
    def test_starts_at_zero(self):
        counter = DistanceCounter()
        assert counter.computed == 0
        assert counter.pruned == 0

    def test_euclidean_counts_and_computes(self):
        counter = DistanceCounter()
        dist = counter.euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        assert dist == 5.0
        assert counter.computed == 1

    def test_point_to_points_counts_rows(self):
        counter = DistanceCounter()
        points = np.zeros((7, 2))
        counter.point_to_points(np.array([1.0, 0.0]), points)
        assert counter.computed == 7

    def test_record_computed_accumulates(self):
        counter = DistanceCounter()
        counter.record_computed(10)
        counter.record_computed(5)
        assert counter.computed == 15

    def test_record_pruned_accumulates(self):
        counter = DistanceCounter()
        counter.record_pruned(3)
        counter.record_pruned()
        assert counter.pruned == 4

    def test_negative_counts_rejected(self):
        counter = DistanceCounter()
        with pytest.raises(ValueError):
            counter.record_computed(-1)
        with pytest.raises(ValueError):
            counter.record_pruned(-1)

    def test_reset(self):
        counter = DistanceCounter()
        counter.record_computed(5)
        counter.record_pruned(5)
        counter.reset()
        assert counter.computed == 0
        assert counter.pruned == 0


class TestCounterSnapshot:
    def test_considered_and_fraction(self):
        snap = CounterSnapshot(computed=30, pruned=70)
        assert snap.considered == 100
        assert snap.pruned_fraction == pytest.approx(0.7)

    def test_empty_fraction_is_zero(self):
        assert CounterSnapshot(0, 0).pruned_fraction == 0.0

    def test_subtraction_gives_delta(self):
        counter = DistanceCounter()
        counter.record_computed(10)
        before = counter.snapshot()
        counter.record_computed(7)
        counter.record_pruned(3)
        delta = counter.snapshot() - before
        assert delta.computed == 7
        assert delta.pruned == 3

    def test_snapshot_is_immutable_view(self):
        counter = DistanceCounter()
        snap = counter.snapshot()
        counter.record_computed(100)
        assert snap.computed == 0
