"""Unit tests for OPTICS over raw points."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import PointOptics, clusters_at_threshold


@pytest.fixture
def three_blobs(rng):
    points = np.vstack(
        [
            rng.normal([0, 0], 0.2, size=(60, 2)),
            rng.normal([10, 0], 0.2, size=(60, 2)),
            rng.normal([5, 10], 0.2, size=(60, 2)),
        ]
    )
    labels = np.repeat([0, 1, 2], 60)
    return points, labels


class TestOrdering:
    def test_is_permutation(self, three_blobs):
        points, _ = three_blobs
        plot = PointOptics(min_pts=5).fit(points)
        assert sorted(plot.ordering.tolist()) == list(range(len(points)))
        assert len(plot) == len(points)

    def test_first_reachability_is_infinite(self, three_blobs):
        points, _ = three_blobs
        plot = PointOptics(min_pts=5).fit(points)
        assert np.isinf(plot.reachability[0])

    def test_blobs_are_contiguous_in_ordering(self, three_blobs):
        # Cutting the plot at a low threshold must recover the 3 blobs.
        points, labels = three_blobs
        plot = PointOptics(min_pts=5).fit(points)
        spans = clusters_at_threshold(plot.reachability, 1.0, min_size=10)
        assert len(spans) == 3
        for start, end in spans:
            members = plot.ordering[start:end]
            blob_labels = set(labels[members].tolist())
            assert len(blob_labels) == 1
        covered = sum(end - start for start, end in spans)
        assert covered == len(points)

    def test_reachability_within_blob_is_small(self, three_blobs):
        points, _ = three_blobs
        plot = PointOptics(min_pts=5).fit(points)
        finite = plot.finite_reachability()
        # Two large separations (between blobs), everything else tiny.
        large = (finite > 2.0).sum()
        assert large == 2

    def test_core_distances_indexed_by_object(self, three_blobs):
        points, _ = three_blobs
        plot = PointOptics(min_pts=5).fit(points)
        assert plot.core_distances.shape == (len(points),)
        assert np.isfinite(plot.core_distances).all()

    def test_reachability_of_lookup(self, three_blobs):
        points, _ = three_blobs
        plot = PointOptics(min_pts=5).fit(points)
        obj = int(plot.ordering[3])
        assert plot.reachability_of(obj) == plot.reachability[3]
        with pytest.raises(KeyError):
            plot.reachability_of(10_000)


class TestCoreDistance:
    def test_min_pts_one_gives_zero_core(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        plot = PointOptics(min_pts=1).fit(points)
        # With min_pts=1 the core distance is the distance to itself: 0.
        assert plot.core_distances == pytest.approx([0.0, 0.0, 0.0])

    def test_min_pts_two_is_nearest_neighbour(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        plot = PointOptics(min_pts=2).fit(points)
        assert plot.core_distances[0] == pytest.approx(1.0)
        assert plot.core_distances[1] == pytest.approx(1.0)
        assert plot.core_distances[2] == pytest.approx(2.0)

    def test_finite_eps_limits_neighbourhoods(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [50.0, 0.0], [50.1, 0.0]])
        plot = PointOptics(min_pts=2, eps=1.0).fit(points)
        # Two components: two infinite reachabilities in the ordering.
        assert np.isinf(plot.reachability).sum() == 2

    def test_isolated_points_not_core(self):
        points = np.array([[0.0, 0.0], [100.0, 100.0]])
        plot = PointOptics(min_pts=2, eps=1.0).fit(points)
        assert np.isinf(plot.core_distances).all()


class TestSingleLinkEquivalence:
    def test_min_pts_one_reachabilities_are_mst_edges(self, rng):
        # With min_pts = 1 (core distance 0), OPTICS reachabilities are the
        # edges of a minimum spanning tree — the single-link dendrogram
        # heights. Cross-check against our SingleLink substrate.
        from repro.clustering import SingleLink

        points = rng.normal(size=(40, 2))
        plot = PointOptics(min_pts=1).fit(points)
        optics_edges = sorted(plot.finite_reachability().tolist())
        dendro = SingleLink().fit(points)
        sl_edges = sorted(dendro.heights.tolist())
        assert optics_edges == pytest.approx(sl_edges)


class TestValidation:
    def test_min_pts_positive(self):
        with pytest.raises(ValueError):
            PointOptics(min_pts=0)

    def test_eps_positive(self):
        with pytest.raises(ValueError):
            PointOptics(eps=0.0)

    def test_empty_input(self):
        with pytest.raises(ValueError):
            PointOptics().fit(np.empty((0, 2)))
