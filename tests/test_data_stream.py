"""Unit tests for update streams and batch mirroring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    RandomScenario,
    UpdateStream,
    apply_raw,
    clone_batch_for,
)
from repro.database import PointStore, UpdateBatch


@pytest.fixture
def scenario():
    return RandomScenario(dim=2, initial_size=300, seed=0)


class TestUpdateStream:
    def test_bounded_stream_length(self, scenario):
        store = PointStore(dim=2)
        scenario.populate(store)
        stream = UpdateStream(scenario, store, 0.1, num_batches=4)
        batches = []
        for batch in stream:
            batches.append(batch)
            apply_raw(store, batch)
        assert len(batches) == 4
        assert stream.produced == 4

    def test_zero_batches(self, scenario):
        store = PointStore(dim=2)
        scenario.populate(store)
        assert list(UpdateStream(scenario, store, 0.1, num_batches=0)) == []

    def test_parameters_validated(self, scenario):
        store = PointStore(dim=2)
        scenario.populate(store)
        with pytest.raises(ValueError):
            UpdateStream(scenario, store, 0.0)
        with pytest.raises(ValueError):
            UpdateStream(scenario, store, 0.1, num_batches=-1)

    def test_stream_does_not_mutate_store(self, scenario):
        store = PointStore(dim=2)
        scenario.populate(store)
        stream = UpdateStream(scenario, store, 0.1, num_batches=1)
        next(iter(stream))
        assert store.size == 300


class TestCloneBatchFor:
    def test_translated_deletions_match_coordinates(self, scenario):
        source = PointStore(dim=2)
        scenario.populate(source)
        ids, points, labels = source.snapshot()
        target = PointStore(dim=2)
        target.insert(points, labels)
        # Make the id spaces diverge.
        extra_src = source.insert(np.zeros((2, 2)), labels=[-1, -1])
        extra_tgt = target.insert(np.zeros((2, 2)), labels=[-1, -1])
        source.delete(extra_src)
        target.delete(extra_tgt)

        batch = scenario.make_batch(source, 0.2)
        mirrored = clone_batch_for(batch, source, target)
        for src_id, tgt_id in zip(batch.deletions, mirrored.deletions):
            assert source.point(src_id) == pytest.approx(target.point(tgt_id))
        assert mirrored.insertions is batch.insertions

    def test_diverged_stores_rejected(self, scenario):
        source = PointStore(dim=2)
        scenario.populate(source)
        target = PointStore(dim=2)
        target.insert(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            clone_batch_for(UpdateBatch.empty(2), source, target)

    def test_apply_both_keeps_stores_identical(self, scenario):
        source = PointStore(dim=2)
        scenario.populate(source)
        _, points, labels = source.snapshot()
        target = PointStore(dim=2)
        target.insert(points, labels)
        for _ in range(5):
            batch = scenario.make_batch(source, 0.15)
            mirrored = clone_batch_for(batch, source, target)
            apply_raw(source, batch)
            apply_raw(target, mirrored)
            _, src_points, src_labels = source.snapshot()
            _, tgt_points, tgt_labels = target.snapshot()
            assert src_points == pytest.approx(tgt_points)
            assert src_labels.tolist() == tgt_labels.tolist()


class TestApplyRaw:
    def test_deletes_and_inserts(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((4, 2)), labels=[0, 0, 0, 0])
        batch = UpdateBatch(
            deletions=(ids[0], ids[1]),
            insertions=np.ones((3, 2)),
            insertion_labels=(1, 1, 1),
        )
        apply_raw(store, batch)
        assert store.size == 5
        assert store.ids_with_label(1).size == 3
