"""Unit tests for the single-link hierarchical clustering substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import SingleLink


class TestDendrogram:
    def test_merge_count(self, rng):
        points = rng.normal(size=(25, 3))
        dendro = SingleLink().fit(points)
        assert dendro.merges.shape == (24, 2)
        assert dendro.heights.shape == (24,)
        assert dendro.num_points == 25

    def test_heights_ascending(self, rng):
        points = rng.normal(size=(40, 2))
        heights = SingleLink().fit(points).heights
        assert (np.diff(heights) >= -1e-12).all()

    def test_two_blob_cut(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.1, size=(20, 2)),
                rng.normal([10, 0], 0.1, size=(20, 2)),
            ]
        )
        dendro = SingleLink().fit(points)
        labels = dendro.cut(2.0)
        assert dendro.num_clusters_at(2.0) == 2
        assert len(set(labels[:20].tolist())) == 1
        assert len(set(labels[20:].tolist())) == 1
        assert labels[0] != labels[20]

    def test_cut_below_everything_gives_singletons(self, rng):
        points = rng.normal(size=(10, 2)) * 100.0
        dendro = SingleLink().fit(points)
        assert dendro.num_clusters_at(0.0) == 10

    def test_cut_above_everything_gives_one_cluster(self, rng):
        points = rng.normal(size=(10, 2))
        dendro = SingleLink().fit(points)
        assert dendro.num_clusters_at(1e9) == 1

    def test_heights_are_mst_edges(self, rng):
        # Single-link merge heights equal the sorted MST edge weights;
        # verify against a brute-force Kruskal over all pairs.
        points = rng.normal(size=(15, 2))
        dendro = SingleLink().fit(points)

        import itertools

        edges = sorted(
            (
                float(np.linalg.norm(points[i] - points[j])),
                i,
                j,
            )
            for i, j in itertools.combinations(range(15), 2)
        )
        parent = list(range(15))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        mst = []
        for w, i, j in edges:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[ri] = rj
                mst.append(w)
        assert dendro.heights.tolist() == pytest.approx(sorted(mst))

    def test_single_point(self):
        dendro = SingleLink().fit(np.array([[1.0, 2.0]]))
        assert dendro.num_points == 1
        assert dendro.cut(1.0).tolist() == [0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SingleLink().fit(np.empty((0, 2)))

    def test_merge_ids_valid(self, rng):
        points = rng.normal(size=(12, 2))
        dendro = SingleLink().fit(points)
        seen = set(range(12))
        for i, (a, b) in enumerate(dendro.merges):
            assert int(a) in seen
            assert int(b) in seen
            assert int(a) != int(b)
            seen.add(12 + i)
