"""Serialized-format contracts: schema stamps, round-trips, kind drift.

Every document the observability layer writes carries ``"schema": 1``
(metrics JSON, trace JSONL lines, time-series window lines, health
reports), and every event kind the shipped instrumentation emits must be
registered in ``EVENT_KINDS`` *and* documented in
``docs/OBSERVABILITY.md``. These tests are the drift guard: adding an
event kind or changing a serialized shape without updating the catalogue
fails here, not in a consumer.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.observability import (
    EVENT_KINDS,
    HEALTH_SCHEMA_VERSION,
    TIMESERIES_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    EventTracer,
    Observability,
    SpanTracer,
    TimeseriesRecorder,
    collect_health,
    to_json,
    write_metrics,
)
from repro.streaming import DurableSummarizer

DOCS = pathlib.Path(__file__).parent.parent / "docs" / "OBSERVABILITY.md"


def _full_handle(sink=None) -> Observability:
    return Observability(
        tracer=EventTracer(sink=sink),
        spans=SpanTracer(),
        timeseries=TimeseriesRecorder(interval=1),
    )


def _durable_run(tmp_path, sink=None) -> Observability:
    """A durable run that exercises streaming + persistence + audit."""
    obs = _full_handle(sink=sink)
    state = tmp_path / "state"
    stream = DurableSummarizer(
        state,
        dim=2,
        window_size=400,
        points_per_bubble=20,
        seed=1,
        checkpoint_every=2,
        obs=obs,
    )
    rng = np.random.default_rng(9)
    for i in range(6):
        stream.append(rng.normal(size=(100, 2)) + 0.3 * i)
    stream.audit(repair=True)
    stream.flush_timeseries()
    stream.close()
    return obs


class TestEventKindDriftGuard:
    def test_emitted_kinds_are_registered(self, tmp_path):
        obs = _durable_run(tmp_path)
        emitted = set(obs.tracer.counts())
        unregistered = emitted - set(EVENT_KINDS)
        assert not unregistered, (
            f"event kinds emitted but missing from EVENT_KINDS: "
            f"{sorted(unregistered)}"
        )
        # The run above must actually cover the flight-recorder kinds,
        # or this guard is vacuous.
        assert {"span_start", "span_end", "timeseries_window"} <= emitted

    def test_registered_kinds_are_documented(self):
        text = DOCS.read_text(encoding="utf-8")
        undocumented = [
            kind for kind in EVENT_KINDS if f"`{kind}`" not in text
        ]
        assert not undocumented, (
            f"EVENT_KINDS missing from docs/OBSERVABILITY.md: "
            f"{undocumented}"
        )

    def test_span_ops_are_documented(self, tmp_path):
        obs = _durable_run(tmp_path)
        text = DOCS.read_text(encoding="utf-8")
        undocumented = [
            op for op in obs.spans.counts() if f"`{op}`" not in text
        ]
        assert not undocumented, (
            f"span ops missing from docs/OBSERVABILITY.md: "
            f"{undocumented}"
        )


class TestSchemaStamps:
    def test_metrics_json_round_trips(self, tmp_path):
        obs = _durable_run(tmp_path)
        document = to_json(obs.metrics.snapshot(), extra={"run": {"n": 6}})
        assert document["schema"] == 1
        json_path, prom_path = write_metrics(
            tmp_path / "m.json", obs.metrics.snapshot()
        )
        loaded = json.loads(json_path.read_text(encoding="utf-8"))
        assert loaded["schema"] == 1
        assert loaded["metrics"] == json.loads(
            json.dumps(document["metrics"])
        )
        assert prom_path.exists()

    def test_trace_lines_round_trip(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        obs = _durable_run(tmp_path, sink=sink)
        obs.tracer.close()
        lines = [
            json.loads(line)
            for line in sink.read_text(encoding="utf-8").splitlines()
        ]
        assert lines, "durable run emitted no trace lines"
        assert len(lines) == obs.tracer.total_emitted
        for line in lines:
            assert line["schema"] == TRACE_SCHEMA_VERSION
            assert line["kind"] in EVENT_KINDS
        assert [line["seq"] for line in lines] == list(range(len(lines)))

    def test_timeseries_lines_round_trip(self, tmp_path):
        obs = _durable_run(tmp_path)
        path = tmp_path / "ts.jsonl"
        obs.timeseries.write_jsonl(path)
        lines = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert len(lines) == len(obs.timeseries)
        for line in lines:
            assert line["schema"] == TIMESERIES_SCHEMA_VERSION
        # Window deltas must re-sum to the cumulative totals: nothing is
        # double-counted or lost across window boundaries.
        total = sum(
            line["counters"]["repro_distance_computed_total"]
            for line in lines
        )
        assert total == obs.metrics.snapshot().value(
            "repro_distance_computed_total"
        )

    def test_health_report_round_trips(self, tmp_path):
        obs = _durable_run(tmp_path)
        report = collect_health(obs, source="test")
        assert report["schema"] == HEALTH_SCHEMA_VERSION
        assert json.loads(json.dumps(report)) == report


class TestFleetKindDriftGuard:
    """The service/SLO layers emit kinds the durable run never touches
    (supervision, dead-lettering, burn-rate alerts). Exercise them with
    a real fleet so the catalogue guard covers the whole taxonomy."""

    def _fleet_run(self, tmp_path):
        from repro.observability import SLOEngine
        from repro.service import (
            FleetConfig,
            FleetManager,
            PointEvent,
            ShardSupervisor,
        )

        config = FleetConfig(
            window_size=400,
            points_per_bubble=20,
            checkpoint_every=8,
            fsync=False,
            workers=0,
            queue_points=64,
            batch_points=16,
            trace=True,
        )
        fleet_obs = Observability(tracer=EventTracer())
        fleet = FleetManager(tmp_path / "f", config, obs=fleet_obs)
        fleet.attach_supervisor(
            ShardSupervisor(max_restarts=2, obs=fleet_obs)
        )
        fleet.attach_slo(
            SLOEngine(
                fast_window_seconds=2.0,
                slow_window_seconds=4.0,
                obs=fleet_obs,
            )
        )
        for i in range(32):
            fleet.submit(
                PointEvent(tenant="t", point=(float(i % 5), 0.5), label=i)
            )
        # Poison one batch so the supervisor restarts the shard.
        shard = fleet.shard("t")
        original = shard.summarizer.append

        def boom_once(points, labels=None):
            shard.summarizer.append = original
            raise RuntimeError("poisoned batch")

        shard.summarizer.append = boom_once
        for i in range(32, 64):
            fleet.submit(
                PointEvent(tenant="t", point=(float(i % 5), 0.5), label=i)
            )
        # Drive the SLO engine through a firing/resolved cycle with an
        # injected clock so alert-transition kinds are emitted too.
        slo = fleet.slo
        for second in range(6):
            slo.observe(
                {"submitted": 100 * (second + 1), "shed": 50 * (second + 1)},
                now=float(second),
            )
        for second in range(6, 16):
            slo.observe(
                {"submitted": 100 * (second + 1), "shed": 300},
                now=float(second),
            )
        fleet.drain()
        return fleet

    def test_fleet_kinds_registered_and_documented(self, tmp_path):
        fleet = self._fleet_run(tmp_path)
        emitted = set(fleet.obs.tracer.counts())
        for shard in fleet._shards.values():
            emitted |= set(shard.obs.tracer.counts())
        unregistered = emitted - set(EVENT_KINDS)
        assert not unregistered, (
            f"service event kinds missing from EVENT_KINDS: "
            f"{sorted(unregistered)}"
        )
        # The run must actually cover supervision + alert kinds, or
        # this guard is vacuous.
        assert {
            "shard_created",
            "shard_failed",
            "shard_restarted",
            "fleet_drained",
            "slo_alert_firing",
            "slo_alert_resolved",
        } <= emitted
        text = DOCS.read_text(encoding="utf-8")
        undocumented = [
            kind for kind in sorted(emitted) if f"`{kind}`" not in text
        ]
        assert not undocumented, (
            f"emitted kinds missing from docs/OBSERVABILITY.md: "
            f"{undocumented}"
        )

    def test_fleet_span_ops_documented(self, tmp_path):
        fleet = self._fleet_run(tmp_path)
        ops: set[str] = set()
        for shard in fleet._shards.values():
            ops |= set(shard.obs.spans.counts())
        assert "ingest_batch" in ops
        text = DOCS.read_text(encoding="utf-8")
        undocumented = [op for op in sorted(ops) if f"`{op}`" not in text]
        assert not undocumented, (
            f"span ops missing from docs/OBSERVABILITY.md: {undocumented}"
        )
