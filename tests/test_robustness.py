"""Robustness tests: degenerate and adversarial inputs through the full
pipeline.

Production data is never as polite as Gaussian blobs: exact duplicates,
single clusters, databases barely larger than the summary, and columns of
identical values all occur. These tests push such inputs through
construction → maintenance → clustering → scoring and require graceful,
invariant-preserving behaviour (not necessarily good clusters).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.clustering import BubbleOptics, extract_candidates
from repro.core import verify_consistency
from repro.experiments import ExperimentConfig, score_summary


class TestDuplicatePoints:
    def test_all_identical_points(self):
        store = PointStore(dim=2)
        store.insert(np.full((200, 2), 7.0), np.zeros(200, dtype=np.int64))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=5, seed=0)).build(
            store
        )
        assert bubbles.total_points == 200
        result = BubbleOptics(min_pts=10).fit(bubbles)
        expanded = result.expanded()
        assert len(expanded) == 200
        # One degenerate cluster; extraction must not crash.
        spans = extract_candidates(expanded.reachability, min_size=10)
        assert spans == [(0, 200)] or spans == []

    def test_duplicates_plus_structure(self, rng):
        points = np.vstack(
            [
                np.zeros((100, 2)),
                rng.normal([10, 10], 0.3, size=(100, 2)),
            ]
        )
        store = PointStore(dim=2)
        store.insert(points, np.repeat([0, 1], 100))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=8, seed=1)).build(
            store
        )
        config = ExperimentConfig(min_pts=10, min_cluster_size=0.1)
        fscore, _ = score_summary(bubbles, store, config)
        assert fscore > 0.9

    def test_maintenance_with_duplicate_insertions(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(150, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=6, seed=2)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=2)
        )
        for _ in range(3):
            maintainer.apply_batch(
                UpdateBatch(
                    insertions=np.full((50, 2), 3.0),
                    insertion_labels=tuple([1] * 50),
                )
            )
        verify_consistency(bubbles, store).raise_if_invalid()


class TestTinyDatabases:
    def test_database_equals_summary_size(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(10, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=0)).build(
            store
        )
        assert bubbles.total_points == 10
        assert all(b.n >= 0 for b in bubbles)

    def test_singleton_bubbles_cluster(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(12, 2)) * 10.0)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=12, seed=0)).build(
            store
        )
        result = BubbleOptics(min_pts=3).fit(bubbles)
        assert len(result.plot) == len(bubbles.non_empty_ids())

    def test_two_point_database(self):
        store = PointStore(dim=2)
        store.insert(np.array([[0.0, 0.0], [1.0, 1.0]]))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=2, seed=0)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=0)
        )
        maintainer.apply_batch(UpdateBatch.empty(dim=2))
        verify_consistency(bubbles, store).raise_if_invalid()


class TestDegenerateGeometry:
    def test_points_on_a_line(self, rng):
        # Zero variance in one coordinate: extents/nnDist must stay finite.
        xs = rng.normal(size=(300, 1)) * 5.0
        points = np.hstack([xs, np.zeros((300, 1))])
        store = PointStore(dim=2)
        store.insert(points)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=3)).build(
            store
        )
        assert np.isfinite(bubbles.extents()).all()
        result = BubbleOptics(min_pts=15).fit(bubbles)
        assert np.isfinite(result.virtual_reachability).all()

    def test_extreme_coordinate_magnitudes(self, rng):
        points = rng.normal(size=(200, 2)) * 1e6 + 1e8
        store = PointStore(dim=2)
        store.insert(points)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=8, seed=4)).build(
            store
        )
        assert bubbles.membership_invariant_ok(store.size)
        assert (bubbles.extents() >= 0.0).all()
        verify_consistency(bubbles, store, rel_tol=1e-5).raise_if_invalid()

    def test_single_dimension(self, rng):
        store = PointStore(dim=1)
        store.insert(
            np.vstack(
                [
                    rng.normal(0.0, 0.5, size=(200, 1)),
                    rng.normal(50.0, 0.5, size=(200, 1)),
                ]
            ),
            np.repeat([0, 1], 200),
        )
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=8, seed=5)).build(
            store
        )
        config = ExperimentConfig(
            dim=1, min_pts=20, min_cluster_size=0.1
        )
        fscore, _ = score_summary(bubbles, store, config)
        assert fscore > 0.9


class TestHeavyChurn:
    def test_full_turnover(self, rng):
        """Delete and replace the entire database across batches."""
        store = PointStore(dim=2)
        store.insert(rng.normal([0, 0], 1.0, size=(400, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=6)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=6)
        )
        for step in range(4):
            victims = tuple(int(i) for i in store.ids()[:100])
            maintainer.apply_batch(
                UpdateBatch(
                    deletions=victims,
                    insertions=rng.normal([50, 50], 1.0, size=(100, 2)),
                    insertion_labels=tuple([1] * 100),
                )
            )
        # The whole database now lives at (50, 50).
        reps = bubbles.reps()
        counts = bubbles.counts()
        weighted = (reps * counts[:, None]).sum(axis=0) / counts.sum()
        assert np.linalg.norm(weighted - np.array([50.0, 50.0])) < 2.0
        verify_consistency(bubbles, store).raise_if_invalid()
