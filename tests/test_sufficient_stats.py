"""Unit tests for the additive sufficient statistics (n, LS, SS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, EmptyBubbleError
from repro.sufficient import SufficientStatistics


class TestConstruction:
    def test_empty_start(self):
        stats = SufficientStatistics(dim=3)
        assert stats.n == 0
        assert stats.is_empty()
        assert stats.square_sum == 0.0
        assert (stats.linear_sum == 0.0).all()

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            SufficientStatistics(dim=0)

    def test_from_points(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        stats = SufficientStatistics.from_points(points)
        assert stats.n == 3
        assert stats.linear_sum == pytest.approx([9.0, 12.0])
        assert stats.square_sum == pytest.approx((points**2).sum())

    def test_from_points_rejects_vector(self):
        with pytest.raises(ValueError):
            SufficientStatistics.from_points(np.array([1.0, 2.0]))


class TestIncrementalUpdates:
    def test_insert_updates_all_three(self):
        stats = SufficientStatistics(dim=2)
        stats.insert(np.array([3.0, 4.0]))
        assert stats.n == 1
        assert stats.linear_sum == pytest.approx([3.0, 4.0])
        assert stats.square_sum == pytest.approx(25.0)

    def test_insert_then_remove_is_identity(self):
        stats = SufficientStatistics(dim=2)
        stats.insert(np.array([1.0, 1.0]))
        reference = stats.copy()
        point = np.array([-2.0, 7.0])
        stats.insert(point)
        stats.remove(point)
        assert stats == reference

    def test_remove_from_empty_raises(self):
        stats = SufficientStatistics(dim=2)
        with pytest.raises(EmptyBubbleError):
            stats.remove(np.array([1.0, 1.0]))

    def test_emptied_statistics_snap_to_zero(self):
        stats = SufficientStatistics(dim=2)
        # Values chosen to accumulate floating point residue.
        stats.insert(np.array([0.1, 0.2]))
        stats.insert(np.array([0.3, 0.7]))
        stats.remove(np.array([0.1, 0.2]))
        stats.remove(np.array([0.3, 0.7]))
        assert stats.is_empty()
        assert (stats.linear_sum == 0.0).all()
        assert stats.square_sum == 0.0

    def test_dimension_mismatch(self):
        stats = SufficientStatistics(dim=2)
        with pytest.raises(DimensionMismatchError):
            stats.insert(np.array([1.0, 2.0, 3.0]))

    def test_insert_many_matches_loop(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 4))
        bulk = SufficientStatistics(dim=4)
        bulk.insert_many(points)
        loop = SufficientStatistics(dim=4)
        for p in points:
            loop.insert(p)
        assert bulk.n == loop.n
        assert bulk.linear_sum == pytest.approx(loop.linear_sum)
        assert bulk.square_sum == pytest.approx(loop.square_sum)

    def test_insert_many_empty_is_noop(self):
        stats = SufficientStatistics(dim=2)
        stats.insert_many(np.empty((0, 2)))
        assert stats.is_empty()

    def test_remove_many_matches_loop(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 3))
        stats = SufficientStatistics.from_points(points)
        stats.remove_many(points[:10])
        expected = SufficientStatistics.from_points(points[10:])
        assert stats.n == expected.n
        assert stats.linear_sum == pytest.approx(expected.linear_sum)
        assert stats.square_sum == pytest.approx(expected.square_sum)

    def test_remove_many_more_than_present_raises(self):
        stats = SufficientStatistics.from_points(np.ones((2, 2)))
        with pytest.raises(EmptyBubbleError):
            stats.remove_many(np.ones((3, 2)))


class TestMergeAndMean:
    def test_merge_is_addition(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(10, 2))
        b = rng.normal(size=(15, 2))
        stats_a = SufficientStatistics.from_points(a)
        stats_b = SufficientStatistics.from_points(b)
        stats_a.merge(stats_b)
        combined = SufficientStatistics.from_points(np.vstack([a, b]))
        assert stats_a.n == combined.n
        assert stats_a.linear_sum == pytest.approx(combined.linear_sum)
        assert stats_a.square_sum == pytest.approx(combined.square_sum)

    def test_merge_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            SufficientStatistics(dim=2).merge(SufficientStatistics(dim=3))

    def test_mean_is_ls_over_n(self):
        stats = SufficientStatistics.from_points(
            np.array([[0.0, 0.0], [2.0, 4.0]])
        )
        assert stats.mean() == pytest.approx([1.0, 2.0])

    def test_mean_of_empty_raises(self):
        with pytest.raises(EmptyBubbleError):
            SufficientStatistics(dim=2).mean()

    def test_clear(self):
        stats = SufficientStatistics.from_points(np.ones((5, 2)))
        stats.clear()
        assert stats.is_empty()

    def test_copy_is_independent(self):
        stats = SufficientStatistics.from_points(np.ones((5, 2)))
        dup = stats.copy()
        dup.insert(np.array([9.0, 9.0]))
        assert stats.n == 5
        assert dup.n == 6

    def test_linear_sum_view_is_readonly(self):
        stats = SufficientStatistics.from_points(np.ones((2, 2)))
        with pytest.raises(ValueError):
            stats.linear_sum[0] = 99.0
