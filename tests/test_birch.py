"""Unit tests for the BIRCH CF-tree substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.birch import CFTree, ClusteringFeature, cluster_cf_tree
from repro.sufficient import SufficientStatistics


class TestClusteringFeature:
    def test_of_point(self):
        cf = ClusteringFeature.of_point(np.array([1.0, 2.0]))
        assert cf.n == 1
        assert cf.centroid() == pytest.approx([1.0, 2.0])
        assert cf.radius() == pytest.approx(0.0)

    def test_radius_matches_definition(self, rng):
        points = rng.normal(size=(50, 3))
        cf = ClusteringFeature(dim=3)
        for p in points:
            cf.absorb(p)
        mean = points.mean(axis=0)
        expected = np.sqrt(((points - mean) ** 2).sum(axis=1).mean())
        assert cf.radius() == pytest.approx(expected, rel=1e-9)

    def test_radius_if_absorbed_is_prospective(self):
        cf = ClusteringFeature.of_point(np.array([0.0, 0.0]))
        prospective = cf.radius_if_absorbed(np.array([2.0, 0.0]))
        assert cf.n == 1  # unchanged
        cf.absorb(np.array([2.0, 0.0]))
        assert cf.radius() == pytest.approx(prospective)

    def test_merge_is_additive(self, rng):
        a_points = rng.normal(size=(20, 2))
        b_points = rng.normal(size=(30, 2))
        a = ClusteringFeature(dim=2)
        b = ClusteringFeature(dim=2)
        for p in a_points:
            a.absorb(p)
        for p in b_points:
            b.absorb(p)
        a.merge(b)
        union = SufficientStatistics.from_points(
            np.vstack([a_points, b_points])
        )
        assert a.n == union.n
        assert a.centroid() == pytest.approx(union.mean())

    def test_centroid_distance(self):
        a = ClusteringFeature.of_point(np.array([0.0, 0.0]))
        b = ClusteringFeature.of_point(np.array([3.0, 4.0]))
        assert a.centroid_distance(b) == pytest.approx(5.0)


class TestCFTree:
    def test_counts_every_point(self, rng):
        tree = CFTree(threshold=0.5)
        points = rng.normal(size=(300, 2))
        tree.insert_many(points)
        assert tree.num_points == 300
        assert sum(cf.n for cf in tree.leaf_entries()) == 300

    def test_threshold_caps_leaf_radius(self, rng):
        tree = CFTree(threshold=0.3)
        tree.insert_many(rng.normal(size=(500, 2)) * 3.0)
        for cf in tree.leaf_entries():
            assert cf.radius() <= 0.3 + 1e-9

    def test_tight_threshold_many_entries(self, rng):
        points = rng.normal(size=(200, 2)) * 10.0
        loose = CFTree(threshold=5.0)
        loose.insert_many(points)
        tight = CFTree(threshold=0.05)
        tight.insert_many(points)
        assert tight.num_leaf_entries > loose.num_leaf_entries

    def test_tree_grows_in_height(self, rng):
        tree = CFTree(threshold=0.01, branching=3, leaf_capacity=3)
        tree.insert_many(rng.normal(size=(200, 2)) * 100.0)
        assert tree.height > 2

    def test_identical_points_absorb_into_one_entry(self):
        tree = CFTree(threshold=0.5)
        tree.insert_many(np.zeros((50, 2)))
        assert tree.num_leaf_entries == 1
        assert tree.leaf_entries()[0].n == 50

    def test_dimension_checked(self):
        tree = CFTree(threshold=1.0)
        tree.insert(np.zeros(2))
        with pytest.raises(ValueError):
            tree.insert(np.zeros(3))

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            CFTree(threshold=0.0)
        with pytest.raises(ValueError):
            CFTree(threshold=1.0, branching=1)
        with pytest.raises(ValueError):
            CFTree(threshold=1.0, leaf_capacity=1)

    def test_fit_threshold_respects_budget(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.5, size=(500, 2)),
                rng.normal([20, 0], 0.5, size=(500, 2)),
            ]
        )
        tree = CFTree.fit_threshold(points, max_leaf_entries=40)
        assert tree.num_leaf_entries <= 40
        assert tree.num_points == 1000

    def test_fit_threshold_validation(self, rng):
        with pytest.raises(ValueError):
            CFTree.fit_threshold(np.empty((0, 2)), max_leaf_entries=10)
        with pytest.raises(ValueError):
            CFTree.fit_threshold(np.zeros((5, 2)), max_leaf_entries=0)


class TestClusterCFTree:
    def test_blobs_separate(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.4, size=(800, 2)),
                rng.normal([18, 0], 0.4, size=(800, 2)),
            ]
        )
        tree = CFTree.fit_threshold(points, max_leaf_entries=50)
        result = cluster_cf_tree(tree, min_pts=40)
        expanded = result.expanded()
        assert len(expanded) == 1600
        from repro.clustering import extract_cluster_tree

        ctree = extract_cluster_tree(expanded.reachability, min_size=300)
        # The top-level split separates the two 800-point blobs (leaves
        # may legitimately sub-segment further).
        top = ctree.root.children
        assert len(top) == 2
        sizes = sorted(node.size for node in top)
        assert sizes[0] == pytest.approx(800, abs=80)
        assert sizes[1] == pytest.approx(800, abs=80)

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            cluster_cf_tree(CFTree(threshold=1.0))
