"""Unit tests for weighted k-means over points and bubble summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BubbleBuilder, BubbleConfig, PointStore
from repro.clustering.kmeans import WeightedKMeans


class TestFit:
    def test_two_well_separated_blobs(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(100, 2)),
                rng.normal([20, 0], 0.2, size=(100, 2)),
            ]
        )
        result = WeightedKMeans(k=2, seed=0).fit(points)
        centers = sorted(result.centroids[:, 0].tolist())
        assert centers[0] == pytest.approx(0.0, abs=0.3)
        assert centers[1] == pytest.approx(20.0, abs=0.3)
        assert len(set(result.labels[:100].tolist())) == 1
        assert result.labels[0] != result.labels[100]

    def test_inertia_decreases_with_more_clusters(self, rng):
        points = rng.normal(size=(200, 3))
        inertia_2 = WeightedKMeans(k=2, seed=0).fit(points).inertia
        inertia_8 = WeightedKMeans(k=8, seed=0).fit(points).inertia
        assert inertia_8 < inertia_2

    def test_weights_pull_centroids(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0]])
        result = WeightedKMeans(k=1, seed=0).fit(
            points, weights=np.array([9.0, 1.0])
        )
        assert result.centroids[0, 0] == pytest.approx(1.0)

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(5, 2)) * 100.0
        result = WeightedKMeans(k=5, seed=0).fit(points)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)
        assert sorted(set(result.labels.tolist())) == [0, 1, 2, 3, 4]

    def test_deterministic_given_seed(self, rng):
        points = rng.normal(size=(100, 2))
        a = WeightedKMeans(k=3, seed=7).fit(points)
        b = WeightedKMeans(k=3, seed=7).fit(points)
        assert a.labels.tolist() == b.labels.tolist()
        assert a.centroids == pytest.approx(b.centroids)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            WeightedKMeans(k=0)
        with pytest.raises(ValueError):
            WeightedKMeans(k=2, max_iter=0)
        kmeans = WeightedKMeans(k=3)
        with pytest.raises(ValueError):
            kmeans.fit(np.zeros((2, 2)))  # fewer points than clusters
        with pytest.raises(ValueError):
            kmeans.fit(np.zeros((5, 2)), weights=np.full(5, -1.0))
        with pytest.raises(ValueError):
            kmeans.fit(np.zeros((5, 2)), weights=np.zeros(5))

    def test_duplicate_points(self):
        points = np.zeros((10, 2))
        result = WeightedKMeans(k=2, seed=0).fit(points)
        assert result.inertia == pytest.approx(0.0)


class TestFitBubbles:
    def test_summary_clustering_matches_truth(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.4, size=(500, 2)),
                rng.normal([25, 0], 0.4, size=(500, 2)),
            ]
        )
        truth = np.repeat([0, 1], 500)
        store = PointStore(dim=2)
        store.insert(points, truth)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=16, seed=0)).build(
            store
        )
        mapping = WeightedKMeans(k=2, seed=0).bubble_labels(bubbles)
        # Every point inherits its bubble's k-means label.
        predicted = np.empty(store.size, dtype=np.int64)
        ids, _, _ = store.snapshot()
        position = {int(pid): i for i, pid in enumerate(ids)}
        for bubble in bubbles:
            for pid in bubble.members:
                predicted[position[pid]] = mapping[bubble.bubble_id]
        from repro.evaluation import adjusted_rand_index

        assert adjusted_rand_index(truth, predicted) > 0.95

    def test_weighting_uses_counts(self, rng):
        # A huge bubble and two tiny far ones, constructed explicitly:
        # k=2 dedicates one centroid to the far pair (they are far), and
        # the merged-centre maths must weight by n, not by bubble count.
        from repro.core import BubbleSet

        bubbles = BubbleSet(dim=2)
        big = bubbles.add_bubble(np.zeros(2))
        big.absorb_many(
            np.arange(980), rng.normal([0, 0], 0.1, size=(980, 2))
        )
        small_a = bubbles.add_bubble(np.array([30.0, 0.0]))
        small_a.absorb_many(
            np.arange(980, 990), rng.normal([30, 0], 0.1, size=(10, 2))
        )
        small_b = bubbles.add_bubble(np.array([32.0, 0.0]))
        small_b.absorb_many(
            np.arange(990, 1000), rng.normal([32, 0], 0.1, size=(10, 2))
        )
        result = WeightedKMeans(k=2, seed=0).fit_bubbles(bubbles)
        xs = sorted(result.centroids[:, 0].tolist())
        assert xs[0] == pytest.approx(0.0, abs=1.0)
        # The far centroid is the n-weighted mean of the two small
        # bubbles: (10·30 + 10·32) / 20 = 31.
        assert xs[1] == pytest.approx(31.0, abs=1.0)

    def test_empty_summary_rejected(self):
        from repro.core import BubbleSet

        bubbles = BubbleSet(dim=2)
        bubbles.add_bubble(np.zeros(2))
        with pytest.raises(ValueError):
            WeightedKMeans(k=1).fit_bubbles(bubbles)
