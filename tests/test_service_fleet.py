"""Fleet routing, rollups, drain, and bit-identical crash recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import PersistenceError, ServiceError
from repro.service import (
    FleetConfig,
    FleetManager,
    LoadSpec,
    PointEvent,
    generate_events,
    render_rollup,
    serve_events,
    tenant_seed,
)

SYNC = dict(
    window_size=400,
    points_per_bubble=20,
    checkpoint_every=8,
    fsync=False,
    workers=0,
    queue_points=64,
    batch_points=16,
)

SPEC = LoadSpec(tenants=8, events=1200, seed=7, burst_mean=16.0)


def fingerprint(summarizer) -> dict:
    """Comparable view of a summarizer's complete captured state."""
    state = summarizer.inner.capture_state(summarizer.batches_applied)
    return {name: getattr(state, name) for name in vars(state)}


def assert_states_equal(a: dict, b: dict) -> None:
    assert a.keys() == b.keys()
    for name in a:
        left, right = a[name], b[name]
        if isinstance(left, np.ndarray):
            assert np.array_equal(left, right), f"state field {name}"
        else:
            assert left == right, f"state field {name}"


class TestLayout:
    def test_fleet_manifest_written(self, tmp_path):
        fleet = FleetManager(tmp_path / "fleet", FleetConfig(**SYNC))
        manifest = json.loads(
            (tmp_path / "fleet" / "fleet.json").read_text()
        )
        assert manifest["fleet_version"] == 1
        assert manifest["window_size"] == 400
        assert "queue_points" not in manifest  # runtime knobs not durable
        fleet.drain()

    def test_refuses_existing_fleet(self, tmp_path):
        FleetManager(tmp_path / "f", FleetConfig(**SYNC)).drain()
        with pytest.raises(PersistenceError, match="already holds"):
            FleetManager(tmp_path / "f", FleetConfig(**SYNC))

    def test_recover_missing_fleet(self, tmp_path):
        with pytest.raises(PersistenceError, match="no fleet"):
            FleetManager.recover(tmp_path / "nothing")

    def test_tenant_dirs_per_shard(self, tmp_path):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            fleet.submit(PointEvent(tenant="alpha", point=(1.0, 2.0)))
            fleet.submit(PointEvent(tenant="beta", point=(3.0, 4.0)))
            assert fleet.tenants == ("alpha", "beta")
        assert (tmp_path / "f" / "tenants" / "alpha" / "wal.log").exists()
        assert (tmp_path / "f" / "tenants" / "beta" / "wal.log").exists()


class TestSeeds:
    def test_deterministic_and_distinct(self):
        assert tenant_seed(0, "a") == tenant_seed(0, "a")
        assert tenant_seed(0, "a") != tenant_seed(0, "b")
        assert tenant_seed(1, "a") != tenant_seed(0, "a")
        assert tenant_seed(None, "a") is None
        assert 0 <= tenant_seed(12345, "tenant-007") <= 0x7FFFFFFF


class TestDispatch:
    def test_dimension_mismatch_counted(self, tmp_path):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            assert not fleet.submit(
                PointEvent(tenant="a", point=(1.0, 2.0, 3.0))
            )
            assert fleet.invalid_points == 1
            assert fleet.tenants == ()  # no shard materialized

    def test_submit_after_drain_raises(self, tmp_path):
        fleet = FleetManager(tmp_path / "f", FleetConfig(**SYNC))
        fleet.drain()
        with pytest.raises(ServiceError, match="draining"):
            fleet.submit(PointEvent(tenant="a", point=(1.0, 2.0)))
        fleet.drain()  # idempotent

    def test_failed_shard_isolated(self, tmp_path, monkeypatch):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            fleet.submit(PointEvent(tenant="bad", point=(0.0, 0.0)))
            fleet.submit(PointEvent(tenant="good", point=(0.0, 0.0)))

            def boom(points, labels=None):
                raise RuntimeError("torn page")

            monkeypatch.setattr(
                fleet.shard("bad").summarizer, "append", boom
            )
            for i in range(40):  # enough to trip an inline flush
                fleet.submit(
                    PointEvent(tenant="bad", point=(float(i), 0.0))
                )
                fleet.submit(
                    PointEvent(tenant="good", point=(float(i), 0.0))
                )
            rollup = fleet.rollup()
            assert rollup["tenants"]["bad"]["state"] == "failed"
            assert "torn page" in rollup["tenants"]["bad"]["error"]
            assert rollup["tenants"]["good"]["state"] == "running"
            assert fleet.failed_submissions > 0
        # drain (via __exit__) must survive the failed shard
        assert fleet.shard("good").summarizer.size == 41


class TestRollup:
    def test_rollup_and_render(self, tmp_path):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            for event in generate_events(
                LoadSpec(tenants=4, events=300, seed=1)
            ):
                fleet.submit(event)
            rollup = fleet.rollup()
        assert rollup["schema"] == 1
        assert rollup["fleet"]["tenants"] == 4
        assert rollup["fleet"]["enqueued_points"] == 300
        text = render_rollup(fleet.rollup())
        assert "tenant-000" in text
        assert "states" in text
        assert "backpressure" in text

    def test_fleet_health_documents(self, tmp_path):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            for event in generate_events(
                LoadSpec(tenants=3, events=200, seed=2)
            ):
                fleet.submit(event)
            health = fleet.fleet_health()
        assert health["schema"] == 1
        assert set(health["shards"]) == {
            "tenant-000", "tenant-001", "tenant-002",
        }
        for document in health["shards"].values():
            assert "stream" in document
            assert "source" in document


class TestBackpressure:
    def test_block_engages_under_threaded_load(self, tmp_path):
        config = FleetConfig(
            **{**SYNC, "workers": 2, "queue_points": 8, "batch_points": 4}
        )
        with FleetManager(tmp_path / "f", config) as fleet:
            stats = serve_events(
                fleet, generate_events(SPEC)
            )
        assert stats.accepted == SPEC.events
        rollup = stats.rollup
        assert rollup["fleet"]["tenants"] == SPEC.tenants
        assert rollup["fleet"]["applied_points"] == SPEC.events
        assert rollup["fleet"]["blocked_submissions"] >= 1
        assert rollup["fleet"]["states"] == {"stopped": SPEC.tenants}

    def test_shed_counts_drops(self, tmp_path):
        config = FleetConfig(
            **{
                **SYNC,
                "workers": 1,
                "queue_points": 4,
                "batch_points": 4,
                "backpressure": "shed",
            }
        )
        with FleetManager(tmp_path / "f", config) as fleet:
            stats = serve_events(
                fleet,
                (
                    PointEvent(tenant="hot", point=(float(i), 0.0))
                    for i in range(3000)
                ),
            )
        assert stats.accepted + stats.dropped == 3000
        rollup = stats.rollup
        assert (
            rollup["fleet"]["applied_points"]
            + rollup["fleet"]["shed_points"]
            == 3000
        )
        assert rollup["fleet"]["applied_points"] == stats.accepted


class TestDeterminismAndRecovery:
    def _run_drained(self, root):
        """Serve SPEC synchronously, drain, return state fingerprints."""
        fleet = FleetManager(root, FleetConfig(**SYNC))
        stats = serve_events(fleet, generate_events(SPEC))
        assert stats.accepted == SPEC.events
        return {
            tenant: fingerprint(fleet.shard(tenant).summarizer)
            for tenant in fleet.tenants
        }

    def test_sync_mode_is_run_to_run_identical(self, tmp_path):
        a = self._run_drained(tmp_path / "a")
        b = self._run_drained(tmp_path / "b")
        assert a.keys() == b.keys()
        for tenant in a:
            assert_states_equal(a[tenant], b[tenant])

    def test_fleet_recovery_bit_identical(self, tmp_path):
        # Run A: uninterrupted serve + graceful drain.
        reference = self._run_drained(tmp_path / "a")

        # Run B: same events, every point durably applied, then a
        # crash-like close (no final checkpoint) and full-fleet recovery.
        fleet = FleetManager(tmp_path / "b", FleetConfig(**SYNC))
        for event in generate_events(SPEC):
            fleet.submit(event)
        for tenant in fleet.tenants:
            fleet.shard(tenant).drain_flush()
        fleet.close()  # checkpoint=False: recovery must replay the WAL

        recovered = FleetManager.recover(
            tmp_path / "b", FleetConfig(**SYNC)
        )
        try:
            assert recovered.tenants == tuple(sorted(reference))
            assert len(recovered.tenants) == SPEC.tenants
            for tenant in recovered.tenants:
                assert_states_equal(
                    reference[tenant],
                    fingerprint(recovered.shard(tenant).summarizer),
                )
        finally:
            recovered.drain()

    def test_recover_merges_durable_params(self, tmp_path):
        fleet = FleetManager(tmp_path / "f", FleetConfig(**SYNC))
        fleet.submit(PointEvent(tenant="a", point=(1.0, 2.0)))
        fleet.drain()
        # The caller's durable fields are overridden by fleet.json; the
        # runtime block (queues, workers) is honored.
        resumed = FleetManager.recover(
            tmp_path / "f",
            FleetConfig(
                dim=9,
                window_size=1,
                workers=0,
                queue_points=32,
                batch_points=8,
                fsync=False,
            ),
        )
        try:
            assert resumed.config.dim == 2
            assert resumed.config.window_size == 400
            assert resumed.config.queue_points == 32
            assert resumed.config.workers == 0
            shard = resumed.shard("a")
            assert shard.queue_points == 32
            assert shard.batch_points == 8
            assert shard.summarizer.size == 1
            # the resumed fleet keeps ingesting
            resumed.submit(PointEvent(tenant="a", point=(5.0, 6.0)))
        finally:
            resumed.drain()
        assert resumed.shard("a").summarizer.size == 2
