"""The fleet chaos matrix: crash or error at every service failpoint.

Two arms per declared service-boundary failpoint (``shard.*``,
``fleet.*``, ``dlq.*``):

* **crash** (slow, subprocess) — a child serves a deterministic event
  stream into a fleet with one fault armed via ``REPRO_FAILPOINTS`` and
  dies with the canonical injected-crash exit code. The parent then
  proves *zero acknowledged-point loss*: every tenant WAL passes the
  read-only hash-chain scan, crash recovery of every tenant succeeds
  and an audit holds, and a resumed run finishes cleanly without any
  tenant's durable batch count moving backwards.
* **error** (fast, in-process) — the same failpoint raises an injected
  ``OSError`` under a supervised fleet; the run must end with the exact
  accounting identity

      applied + pending + shed + failed + dead-lettered == submitted

  and a dead-letter replay through the recovered fleet's normal
  ingestion path must drain every queue to zero.

A coverage guard fails the suite when a new service failpoint is
declared anywhere without both arms here — the matrix can never
silently lose coverage.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.faults import CRASH_EXIT_CODE, FAILPOINTS, known_failpoints
from repro.persistence import verify_chain
from repro.service import (
    FleetConfig,
    FleetManager,
    LoadSpec,
    ShardSupervisor,
    generate_events,
    read_dead_letters,
    replay_dead_letters,
)
from repro.service.deadletter import deadletter_path
from repro.streaming import DurableSummarizer

ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Failpoints owned by the service layer (everything else belongs to the
#: single-process persistence crash matrix in test_faults_crash_matrix).
SERVICE_PREFIXES = ("shard.", "fleet.", "dlq.")

SPEC = dict(tenants=4, events=400, seed=11)

CONFIG = dict(
    window_size=400,
    points_per_bubble=20,
    checkpoint_every=4,
    seed=11,
    fsync=False,
    workers=0,
    queue_points=64,
    batch_points=8,
)

# One crash directive per service failpoint. Arms that only fire on the
# failure-handling path (restart, DLQ append) pair the crash with an
# injected flush error that poisons a shard first.
CRASH_SPECS = {
    "fleet.submit.start": ("fleet.submit.start=crash@200", False),
    "shard.apply.before_append": (
        "shard.apply.before_append=crash@10",
        False,
    ),
    "dlq.append.flushed": (
        "shard.apply.before_append=error:EIO@3,dlq.append.flushed=crash",
        False,
    ),
    "shard.restart.start": (
        "shard.apply.before_append=error:EIO@3,shard.restart.start=crash",
        True,
    ),
    "shard.restart.recovered": (
        "shard.apply.before_append=error:EIO@3,"
        "shard.restart.recovered=crash",
        True,
    ),
}

# The child: create-or-recover a fleet, submit the deterministic stream,
# drain, and print the fleet totals as JSON.
CHILD = """
import json
import pathlib
import sys

from repro.faults import install_from_env
from repro.service import (
    FleetConfig, FleetManager, LoadSpec, ShardSupervisor, generate_events,
)

fleet_dir, supervise = sys.argv[1], sys.argv[2] == "1"
config = FleetConfig(**json.loads(sys.argv[3]))
spec = LoadSpec(**json.loads(sys.argv[4]))
install_from_env()
if (pathlib.Path(fleet_dir) / "fleet.json").exists():
    fleet = FleetManager.recover(fleet_dir, config=config)
else:
    fleet = FleetManager(fleet_dir, config=config)
if supervise:
    fleet.attach_supervisor(ShardSupervisor(max_restarts=8))
for event in generate_events(spec):
    fleet.submit(event)
fleet.drain()
print(json.dumps(fleet.rollup()["fleet"]))
"""


def run_child(fleet_dir, supervise=False, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    if faults is None:
        env.pop("REPRO_FAILPOINTS", None)
    else:
        env["REPRO_FAILPOINTS"] = faults
    return subprocess.run(
        [
            sys.executable,
            "-c",
            CHILD,
            str(fleet_dir),
            "1" if supervise else "0",
            json.dumps(CONFIG),
            json.dumps(SPEC),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def tenant_dirs(fleet_dir) -> list[pathlib.Path]:
    tenants = pathlib.Path(fleet_dir) / "tenants"
    if not tenants.exists():
        return []
    return sorted(p for p in tenants.iterdir() if p.is_dir())


def acknowledged_batches(fleet_dir) -> dict[str, int]:
    """Durably acknowledged batch count per tenant, via real recovery."""
    counts: dict[str, int] = {}
    for tenant_dir in tenant_dirs(fleet_dir):
        if not (tenant_dir / "manifest.json").exists():
            continue
        stream = DurableSummarizer.recover(tenant_dir, fsync=False)
        try:
            counts[tenant_dir.name] = stream.batches_applied
            report = stream.audit(repair=False)
            assert report.ok, (tenant_dir.name, report.violations)
        finally:
            stream.close(checkpoint=False)
    return counts


def assert_fleet_identity(fleet_totals: dict) -> None:
    assert (
        fleet_totals["applied_points"]
        + fleet_totals["pending_points"]
        + fleet_totals["shed_points"]
        + fleet_totals["failed_points"]
        + fleet_totals["dead_lettered_points"]
        == fleet_totals["submitted_points"]
    ), fleet_totals


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAILPOINTS.clear()
    yield
    FAILPOINTS.clear()


def service_failpoints() -> set[str]:
    return {
        name
        for name in known_failpoints()
        if name.startswith(SERVICE_PREFIXES)
    }


class TestCoverageGuard:
    def test_every_service_failpoint_has_a_crash_arm(self):
        assert set(CRASH_SPECS) == service_failpoints()

    def test_every_service_failpoint_has_an_error_arm(self):
        assert set(ERROR_ARMS) == service_failpoints()


@pytest.mark.slow
class TestCrashArms:
    @pytest.mark.parametrize("name", sorted(CRASH_SPECS))
    def test_crash_then_recovery_loses_no_acknowledged_points(
        self, name, tmp_path
    ):
        faults, supervise = CRASH_SPECS[name]
        fleet_dir = tmp_path / "fleet"
        crashed = run_child(fleet_dir, supervise=supervise, faults=faults)
        assert crashed.returncode == CRASH_EXIT_CODE, (
            f"fault at {name} did not fire: rc={crashed.returncode}, "
            f"stderr={crashed.stderr}"
        )

        # 1. No at-rest corruption anywhere: every tenant WAL passes the
        #    read-only integrity scan (a torn tail is a crash footprint,
        #    not corruption, and is repaired by recovery below).
        for tenant_dir in tenant_dirs(fleet_dir):
            wal_path = tenant_dir / "wal.log"
            if not wal_path.exists():
                continue
            report = verify_chain(wal_path)
            assert report.ok, (tenant_dir.name, report)

        # 2. Real crash recovery succeeds for every tenant and the
        #    recovered summaries audit clean.
        before = acknowledged_batches(fleet_dir)

        # 3. A resumed run completes, keeps the accounting identity,
        #    and no tenant's durable batch count moves backwards.
        resumed = run_child(fleet_dir, supervise=supervise)
        assert resumed.returncode == 0, resumed.stderr
        totals = json.loads(resumed.stdout.splitlines()[-1])
        assert_fleet_identity(totals)
        after = acknowledged_batches(fleet_dir)
        for tenant, count in before.items():
            assert after.get(tenant, 0) >= count, (tenant, before, after)

    def test_dlq_crash_arm_left_durable_letters(self, tmp_path):
        """The dlq.append.flushed crash lands *after* the flush: the
        poisoned batch must already be on disk, torn tail at worst."""
        faults, supervise = CRASH_SPECS["dlq.append.flushed"]
        fleet_dir = tmp_path / "fleet"
        crashed = run_child(fleet_dir, supervise=supervise, faults=faults)
        assert crashed.returncode == CRASH_EXIT_CODE, crashed.stderr
        letters = []
        for tenant_dir in tenant_dirs(fleet_dir):
            letters.extend(read_dead_letters(deadletter_path(tenant_dir)))
        assert letters, "no dead letters survived the crash"
        assert {letter.reason for letter in letters} == {"append_failed"}


def _run_error_arm(tmp_path, arm) -> tuple[FleetManager, dict]:
    """Drive the stream with one error fault armed under supervision."""
    fleet = FleetManager(tmp_path / "fleet", FleetConfig(**CONFIG))
    fleet.attach_supervisor(ShardSupervisor(max_restarts=8))
    for name, kind, options in arm:
        FAILPOINTS.arm(name, kind=kind, **options)
    injected = 0
    for event in generate_events(LoadSpec(**SPEC)):
        try:
            fleet.submit(event)
        except OSError:
            injected += 1  # the armed fault surfacing at the boundary
    FAILPOINTS.clear()
    fleet.drain()
    totals = fleet.rollup()["fleet"]
    return fleet, {"totals": totals, "injected": injected}


# Each arm: the failpoints to arm (name, kind, options). Arms that only
# fire on the failure path pair the target with a one-shot flush error.
_FLUSH_ERROR = ("shard.apply.before_append", "error", {"after": 2, "times": 1})
ERROR_ARMS = {
    "shard.apply.before_append": [_FLUSH_ERROR],
    "fleet.submit.start": [
        ("fleet.submit.start", "error", {"after": 100, "times": 1})
    ],
    "dlq.append.flushed": [
        _FLUSH_ERROR,
        ("dlq.append.flushed", "error", {"times": 1}),
    ],
    "shard.restart.start": [
        _FLUSH_ERROR,
        ("shard.restart.start", "error", {"times": 1}),
    ],
    "shard.restart.recovered": [
        _FLUSH_ERROR,
        ("shard.restart.recovered", "error", {"times": 1}),
    ],
}


class TestErrorArms:
    @pytest.mark.parametrize("name", sorted(ERROR_ARMS))
    def test_error_keeps_identity_and_dlq_replays_to_zero(
        self, name, tmp_path
    ):
        fleet, outcome = _run_error_arm(tmp_path, ERROR_ARMS[name])
        assert_fleet_identity(outcome["totals"])
        if name == "dlq.append.flushed":
            # The append was durable but errored before the counter
            # moved: the letters are orphans on disk (at-least-once),
            # while the items went back to the queue and were re-applied
            # by the supervisor restart.
            letters = sum(
                len(read_dead_letters(deadletter_path(tenant_dir)))
                for tenant_dir in tenant_dirs(tmp_path / "fleet")
            )
            assert letters > 0
        elif name != "fleet.submit.start":
            # Every failure-path arm parked at least one batch durably.
            assert outcome["totals"]["dead_lettered_points"] > 0

        # Replay every dead letter through the *recovered* fleet's
        # normal ingestion path; with the fault disarmed, each queue
        # must drain to zero.
        recovered = FleetManager.recover(
            tmp_path / "fleet", config=FleetConfig(**CONFIG)
        )
        try:
            for tenant_dir in tenant_dirs(tmp_path / "fleet"):
                report = replay_dead_letters(
                    deadletter_path(tenant_dir),
                    recovered.submit,
                    fsync=False,
                )
                assert report.drained, (tenant_dir.name, report)
                assert read_dead_letters(
                    deadletter_path(tenant_dir)
                ) == []
        finally:
            recovered.drain()
        identity_after = recovered.rollup()["fleet"]
        assert_fleet_identity(identity_after)

    def test_smoke_arm_is_fast(self, tmp_path):
        """The per-push CI smoke: one full error arm, no subprocesses."""
        fleet, outcome = _run_error_arm(
            tmp_path, ERROR_ARMS["shard.apply.before_append"]
        )
        totals = outcome["totals"]
        assert_fleet_identity(totals)
        assert totals["dead_lettered_points"] > 0
        supervision = totals["supervision"]
        assert supervision["restarts"] >= 1
