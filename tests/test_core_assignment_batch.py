"""Equivalence and caching tests for the batch assignment engine.

The vectorized :meth:`TriangleInequalityAssigner.assign_many` promises
*bit-identical* results to the scalar Figure 2 loop under the same RNG:
same indices, same computed/pruned totals, and the same RNG stream
position afterwards (so scalar and batch calls can interleave freely).
These tests pin that contract, plus the :class:`AssignerCache` /
``BubbleSet.version`` machinery that lets maintainers reuse one assigner
(and its O(B²) seed matrix) across batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AssignerCache,
    BubbleSet,
    TriangleInequalityAssigner,
)
from repro.geometry import DistanceCounter


def _paired_assigners(seeds, seed=0, **kwargs):
    """Two TI assigners over the same seeds with identically seeded RNGs."""
    scalar = TriangleInequalityAssigner(
        seeds,
        DistanceCounter(),
        rng=np.random.default_rng(seed),
        count_setup=False,
        **kwargs,
    )
    batch = TriangleInequalityAssigner(
        seeds,
        DistanceCounter(),
        rng=np.random.default_rng(seed),
        count_setup=False,
        **kwargs,
    )
    return scalar, batch


def _scalar_loop(assigner, points):
    return np.array([assigner.assign(p) for p in points], dtype=np.int64)


class TestBatchScalarEquivalence:
    """assign_many == a scalar assign() loop, bit for bit."""

    @pytest.mark.parametrize(
        "num_points,num_seeds,dim,scale",
        [
            (1, 2, 2, 1.0),  # single point, minimal seed count
            (7, 3, 1, 5.0),  # 1-d data
            (50, 25, 3, 10.0),  # generic
            (200, 40, 2, 0.3),  # dense overlap: little pruning
            (128, 16, 8, 50.0),  # well-separated: heavy pruning
            (1030, 10, 2, 10.0),  # crosses the default block boundary
        ],
    )
    def test_property_bit_identical(self, num_points, num_seeds, dim, scale):
        rng = np.random.default_rng(num_points * 31 + num_seeds)
        seeds = rng.normal(size=(num_seeds, dim)) * scale
        points = rng.normal(size=(num_points, dim)) * scale

        scalar, batch = _paired_assigners(seeds, seed=99)
        expected = _scalar_loop(scalar, points)
        actual = batch.assign_many(points)

        assert actual.tolist() == expected.tolist()
        assert batch.assign_computed == scalar.assign_computed
        assert batch.assign_pruned == scalar.assign_pruned
        assert batch.counter.computed == scalar.counter.computed
        assert batch.counter.pruned == scalar.counter.pruned
        # Same RNG stream position: further draws stay in lockstep.
        assert (
            batch._rng.bit_generator.state == scalar._rng.bit_generator.state
        )

    def test_clustered_data_heavy_pruning(self):
        rng = np.random.default_rng(5)
        seeds = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(30, 2)),
                rng.normal([80, 80], 0.2, size=(30, 2)),
            ]
        )
        points = np.vstack(
            [
                rng.normal([0, 0], 1.0, size=(300, 2)),
                rng.normal([80, 80], 1.0, size=(300, 2)),
            ]
        )
        scalar, batch = _paired_assigners(seeds, seed=3)
        expected = _scalar_loop(scalar, points)
        actual = batch.assign_many(points)
        assert actual.tolist() == expected.tolist()
        assert batch.assign_pruned == scalar.assign_pruned
        assert batch.pruned_fraction > 0.3  # pruning actually engaged

    def test_small_block_size_multi_block(self):
        # A tiny block size forces many blocks; totals and indices must
        # be independent of the blocking.
        rng = np.random.default_rng(17)
        seeds = rng.normal(size=(12, 3)) * 4.0
        points = rng.normal(size=(97, 3)) * 4.0
        scalar, batch = _paired_assigners(seeds, seed=1, block_size=8)
        expected = _scalar_loop(scalar, points)
        actual = batch.assign_many(points)
        assert actual.tolist() == expected.tolist()
        assert batch.assign_computed == scalar.assign_computed
        assert batch.assign_pruned == scalar.assign_pruned

    def test_block_size_does_not_change_results(self):
        rng = np.random.default_rng(23)
        seeds = rng.normal(size=(20, 2)) * 6.0
        points = rng.normal(size=(150, 2)) * 6.0
        a, b = _paired_assigners(seeds, seed=2, block_size=1)
        b2 = TriangleInequalityAssigner(
            seeds,
            DistanceCounter(),
            rng=np.random.default_rng(2),
            count_setup=False,
            block_size=1024,
        )
        assert a.assign_many(points).tolist() == b2.assign_many(points).tolist()

    def test_empty_batch(self):
        seeds = np.random.default_rng(0).normal(size=(5, 2))
        scalar, batch = _paired_assigners(seeds, seed=0)
        result = batch.assign_many(np.empty((0, 2)))
        assert result.shape == (0,)
        assert batch.assign_computed == 0
        assert batch.assign_pruned == 0
        # m == 0 consumes no randomness.
        assert (
            batch._rng.bit_generator.state == scalar._rng.bit_generator.state
        )

    def test_single_seed_batch(self):
        # B == 1: one computed distance per point, RNG untouched.
        seeds = np.zeros((1, 2))
        scalar, batch = _paired_assigners(seeds, seed=0)
        points = np.random.default_rng(1).normal(size=(9, 2))
        expected = _scalar_loop(scalar, points)
        actual = batch.assign_many(points)
        assert actual.tolist() == expected.tolist() == [0] * 9
        assert batch.assign_computed == scalar.assign_computed == 9
        assert (
            batch._rng.bit_generator.state == scalar._rng.bit_generator.state
        )

    def test_interleaved_scalar_and_batch_calls(self):
        # Because both paths consume the RNG identically, any interleaving
        # of scalar and batch calls stays reproducible across assigners.
        rng = np.random.default_rng(8)
        seeds = rng.normal(size=(15, 2)) * 5.0
        p1 = rng.normal(size=(20, 2)) * 5.0
        p2 = rng.normal(size=(3, 2)) * 5.0
        p3 = rng.normal(size=(40, 2)) * 5.0

        a, b = _paired_assigners(seeds, seed=6)
        # a: batch, scalar, batch — b: scalar, batch, scalar loop.
        r_a = [
            a.assign_many(p1),
            _scalar_loop(a, p2),
            a.assign_many(p3),
        ]
        r_b = [
            _scalar_loop(b, p1),
            b.assign_many(p2),
            _scalar_loop(b, p3),
        ]
        for got, want in zip(r_a, r_b):
            assert got.tolist() == want.tolist()
        assert a.assign_computed == b.assign_computed
        assert a.assign_pruned == b.assign_pruned


class TestAssignerCache:
    def _bubble_set(self, seeds):
        bubbles = BubbleSet(dim=seeds.shape[1])
        for seed in seeds:
            bubbles.add_bubble(seed)
        return bubbles

    def test_hit_while_unchanged(self):
        seeds = np.random.default_rng(0).normal(size=(6, 2))
        bubbles = self._bubble_set(seeds)
        cache = AssignerCache()
        counter = DistanceCounter()
        rng = np.random.default_rng(0)
        a1 = cache.get(bubbles, counter, rng=rng)
        a2 = cache.get(bubbles, counter, rng=rng)
        assert a1 is a2
        assert cache.misses == 1
        assert cache.hits == 1

    def test_miss_after_mutation(self):
        seeds = np.random.default_rng(0).normal(size=(6, 2))
        bubbles = self._bubble_set(seeds)
        cache = AssignerCache()
        counter = DistanceCounter()
        a1 = cache.get(bubbles, counter)
        bubbles[0].absorb(0, np.array([1.0, 1.0]))
        a2 = cache.get(bubbles, counter)
        assert a1 is not a2
        assert cache.misses == 2

    def test_key_includes_active_ids_and_flag(self):
        seeds = np.random.default_rng(0).normal(size=(6, 2))
        bubbles = self._bubble_set(seeds)
        cache = AssignerCache()
        counter = DistanceCounter()
        full = cache.get(bubbles, counter)
        subset = cache.get(bubbles, counter, active_ids=[0, 2, 4])
        assert subset is not full
        assert subset.num_locations == 3
        naive = cache.get(
            bubbles, counter, use_triangle_inequality=False
        )
        assert naive is not subset

    def test_invalidate(self):
        seeds = np.random.default_rng(0).normal(size=(4, 2))
        bubbles = self._bubble_set(seeds)
        cache = AssignerCache()
        counter = DistanceCounter()
        a1 = cache.get(bubbles, counter)
        cache.invalidate()
        a2 = cache.get(bubbles, counter)
        assert a1 is not a2
        assert cache.misses == 2

    def test_cached_assigner_is_isolated_from_later_mutations(self):
        # reps() hands out views of live cache rows; the assigner must
        # have copied them so later bubble mutations cannot skew an
        # in-flight (stale-keyed) assigner's geometry.
        seeds = np.random.default_rng(0).normal(size=(4, 2))
        bubbles = self._bubble_set(seeds)
        cache = AssignerCache()
        assigner = cache.get(bubbles, DistanceCounter())
        before = assigner.locations.copy()
        bubbles[0].absorb(0, np.array([100.0, 100.0]))
        bubbles.reps()  # refresh the set's cache in place
        assert np.array_equal(assigner.locations, before)


class TestBubbleSetVersioning:
    def test_version_bumps_on_every_mutation(self):
        bubbles = BubbleSet(dim=2)
        v0 = bubbles.version
        bubble = bubbles.add_bubble(np.zeros(2))
        assert bubbles.version > v0

        v1 = bubbles.version
        bubble.absorb(0, np.array([1.0, 0.0]))
        assert bubbles.version > v1

        v2 = bubbles.version
        bubble.release(0, np.array([1.0, 0.0]))
        assert bubbles.version > v2

        v3 = bubbles.version
        bubble.absorb_many(
            np.array([1, 2]), np.array([[1.0, 0.0], [0.0, 1.0]])
        )
        assert bubbles.version > v3

        v4 = bubbles.version
        bubble.release_many(
            np.array([1, 2]), np.array([[1.0, 0.0], [0.0, 1.0]])
        )
        assert bubbles.version > v4

        v5 = bubbles.version
        bubble.clear()
        assert bubbles.version > v5

        v6 = bubbles.version
        bubble.reseed(np.array([3.0, 3.0]))
        assert bubbles.version > v6

    def test_reps_cache_refreshes_dirty_rows_only(self):
        bubbles = BubbleSet(dim=2)
        a = bubbles.add_bubble(np.array([0.0, 0.0]))
        b = bubbles.add_bubble(np.array([5.0, 5.0]))
        first = bubbles.reps()
        assert first[0].tolist() == [0.0, 0.0]

        a.absorb(0, np.array([2.0, 2.0]))
        second = bubbles.reps()
        assert second[0].tolist() == [2.0, 2.0]  # dirty row refreshed
        assert second[1].tolist() == [5.0, 5.0]
        # Same backing buffer: the refresh was in place, not a rebuild.
        assert second.base is first.base

    def test_reps_view_is_read_only(self):
        bubbles = BubbleSet(dim=2)
        bubbles.add_bubble(np.zeros(2))
        reps = bubbles.reps()
        with pytest.raises(ValueError):
            reps[0, 0] = 1.0
