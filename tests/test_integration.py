"""End-to-end integration tests across the whole pipeline.

These drive realistic (small) versions of the paper's workflows through
the public API only: build → maintain over a dynamic stream → cluster →
extract → score, plus the headline comparisons each evaluation artifact
rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    CompleteRebuildMaintainer,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
)
from repro.clustering import BubbleOptics, PointOptics, extract_cluster_tree
from repro.data import UpdateStream, apply_raw, clone_batch_for, make_scenario
from repro.evaluation import adjusted_rand_index, fscore_from_labels
from repro.experiments import ExperimentConfig, run_comparison, score_summary


class TestFullPipeline:
    def test_summarized_clustering_matches_point_clustering(self, rng):
        """OPTICS on bubbles must recover the same clusters as OPTICS on
        the raw points for clean, well-separated data."""
        points = np.vstack(
            [
                rng.normal([0, 0], 0.3, size=(400, 2)),
                rng.normal([15, 0], 0.3, size=(400, 2)),
                rng.normal([7, 13], 0.3, size=(400, 2)),
            ]
        )
        truth = np.repeat([0, 1, 2], 400)
        store = PointStore(dim=2)
        store.insert(points, truth)

        # Point-level clustering (the reference).
        plot = PointOptics(min_pts=10).fit(points)
        tree = extract_cluster_tree(plot.reachability, min_size=100)
        point_labels = np.full(len(points), -1, dtype=np.int64)
        for i, leaf in enumerate(tree.leaves()):
            point_labels[plot.ordering[leaf.start : leaf.end]] = i
        point_f = fscore_from_labels(truth, point_labels).overall

        # Bubble-level clustering of the same database.
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=30, seed=0)).build(
            store
        )
        config = ExperimentConfig(min_pts=30, min_cluster_size=0.05)
        bubble_f, _ = score_summary(bubbles, store, config)

        assert point_f > 0.9
        assert bubble_f > 0.9
        assert abs(point_f - bubble_f) < 0.1

    def test_incremental_tracks_appearing_cluster(self, rng):
        """The headline behaviour: after a new cluster appears, the
        incrementally maintained summary clusters as well as a from-scratch
        rebuild."""
        config = ExperimentConfig(
            scenario="appear",
            dim=2,
            initial_size=2500,
            num_bubbles=50,
            update_fraction=0.08,
            num_batches=6,
            min_pts=25,
            seed=5,
        )
        result = run_comparison(config)
        final_inc = result.incremental.measurements[-1].fscore
        final_cmp = result.complete.measurements[-1].fscore
        assert final_inc > 0.85
        assert final_inc > final_cmp - 0.1

    def test_incremental_and_rebuild_agree_on_labels(self, rng):
        """Both summaries of the same database must induce very similar
        point partitions (high ARI between their flat clusterings)."""
        points = np.vstack(
            [
                rng.normal([0, 0], 0.4, size=(600, 2)),
                rng.normal([20, 5], 0.4, size=(600, 2)),
            ]
        )
        truth = np.repeat([0, 1], 600)
        store_a = PointStore(dim=2)
        store_a.insert(points, truth)
        store_b = PointStore(dim=2)
        store_b.insert(points, truth)

        bubbles_a = BubbleBuilder(BubbleConfig(num_bubbles=24, seed=1)).build(
            store_a
        )
        bubbles_b = BubbleBuilder(BubbleConfig(num_bubbles=24, seed=99)).build(
            store_b
        )

        def flat_labels(bubbles, store):
            result = BubbleOptics(min_pts=25).fit(bubbles)
            expanded = result.expanded()
            tree = extract_cluster_tree(expanded.reachability, min_size=120)
            from repro.clustering import majority_bubble_labels

            # Compare the two summaries at the top resolution (the root
            # split); leaf-level sub-splits legitimately differ between
            # random summaries of the same data.
            top = tree.root.children or [tree.root]
            spans = [node.span() for node in top]
            mapping = majority_bubble_labels(expanded, spans)
            ids, _, _ = store.snapshot()
            labels = np.empty(store.size, dtype=np.int64)
            position = {int(pid): i for i, pid in enumerate(ids)}
            for bubble in bubbles:
                label = mapping.get(bubble.bubble_id, -1)
                for pid in bubble.members:
                    labels[position[pid]] = label
            return labels

        labels_a = flat_labels(bubbles_a, store_a)
        labels_b = flat_labels(bubbles_b, store_b)
        assert adjusted_rand_index(labels_a, labels_b) > 0.9

    def test_long_stream_stability(self):
        """Twenty batches of heavy churn: invariants hold, quality stays."""
        scenario = make_scenario("complex", dim=2, initial_size=2000, seed=7)
        store = PointStore(dim=2)
        scenario.populate(store)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=40, seed=7)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=7)
        )
        stream = UpdateStream(scenario, store, 0.1, num_batches=20)
        for batch in stream:
            maintainer.apply_batch(batch)
            assert bubbles.membership_invariant_ok(store.size)
        assert store.size == 2000
        config = ExperimentConfig(min_pts=20, min_cluster_size=0.02)
        fscore, _ = score_summary(bubbles, store, config)
        assert fscore > 0.75

    def test_mirrored_rebuild_arm_sees_identical_database(self):
        """clone_batch_for keeps the two arms' stores logically identical."""
        scenario = make_scenario("random", dim=3, initial_size=500, seed=11)
        points, labels = scenario.initial()
        store_inc = PointStore(dim=3)
        store_inc.insert(points, labels)
        store_cmp = PointStore(dim=3)
        store_cmp.insert(points, labels)
        rebuilder = CompleteRebuildMaintainer(
            store_cmp, CompleteRebuildMaintainer.default_config(10, seed=0)
        )
        rebuilder.rebuild()
        stream = UpdateStream(scenario, store_inc, 0.2, num_batches=4)
        for batch in stream:
            mirrored = clone_batch_for(batch, store_inc, store_cmp)
            apply_raw(store_inc, batch)
            rebuilder.apply_batch(mirrored)
            _, pa, la = store_inc.snapshot()
            _, pb, lb = store_cmp.snapshot()
            assert pa == pytest.approx(pb)
            assert la.tolist() == lb.tolist()


class TestHighDimensional:
    @pytest.mark.parametrize("dim", [5, 10, 20])
    def test_pipeline_works_in_high_dimensions(self, dim):
        config = ExperimentConfig(
            scenario="random",
            dim=dim,
            initial_size=1500,
            num_bubbles=30,
            update_fraction=0.1,
            num_batches=2,
            min_pts=20,
            seed=2,
        )
        result = run_comparison(config)
        assert result.incremental.mean_fscore() > 0.8
        assert result.complete.mean_fscore() > 0.8
