"""Unit tests for the staleness (incremental vs periodic rebuild) experiment."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    render_staleness,
    run_staleness,
)

QUICK = ExperimentConfig(
    scenario="complex",
    dim=2,
    initial_size=1_500,
    num_bubbles=30,
    update_fraction=0.1,
    num_batches=4,
    min_pts=15,
    seed=0,
)


class TestRunStaleness:
    def test_trace_lengths(self):
        result = run_staleness(QUICK, rebuild_every=2)
        assert len(result.incremental_fscores) == 4
        assert len(result.periodic_fscores) == 4
        assert result.rebuild_every == 2

    def test_incremental_at_least_matches_periodic(self):
        result = run_staleness(QUICK, rebuild_every=4)
        assert result.incremental_mean >= result.periodic_mean - 0.05

    def test_periodic_cost_concentrates_on_rebuild_batches(self):
        result = run_staleness(QUICK, rebuild_every=4)
        costs = result.periodic_cost.values
        # Non-rebuild batches cost nothing; the rebuild batch pays N·B.
        assert costs[0] == 0.0
        assert costs[3] > 0.0

    def test_rebuild_every_one_equals_always_fresh(self):
        result = run_staleness(QUICK, rebuild_every=1)
        # Rebuilding every batch: the periodic arm is never stale, so its
        # scores are in the same band as the incremental arm's.
        assert abs(result.incremental_mean - result.periodic_mean) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            run_staleness(QUICK, rebuild_every=0)

    def test_render(self):
        result = run_staleness(QUICK, rebuild_every=2)
        text = render_staleness(result)
        assert "Staleness" in text
        assert "rebuild" in text
        assert "stale" in text
        assert "means:" in text
