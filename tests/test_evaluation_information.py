"""Unit tests for purity and normalized mutual information."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import normalized_mutual_information, purity


class TestPurity:
    def test_pure_clustering(self):
        truth = np.array([0, 0, 1, 1])
        predicted = np.array([5, 5, 9, 9])
        assert purity(truth, predicted) == 1.0

    def test_merged_clusters(self):
        truth = np.array([0, 0, 1, 1])
        predicted = np.zeros(4, dtype=np.int64)
        assert purity(truth, predicted) == 0.5

    def test_singletons_game_purity(self):
        # The known weakness: all-singleton predictions are perfectly pure.
        truth = np.array([0, 0, 1, 1])
        predicted = np.arange(4)
        assert purity(truth, predicted) == 1.0

    def test_partial(self):
        truth = np.array([0, 0, 0, 1])
        predicted = np.array([7, 7, 7, 7])
        assert purity(truth, predicted) == pytest.approx(0.75)


class TestNmi:
    def test_identical(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(
            1.0
        )

    def test_relabeled(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([9, 9, 4, 4])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 4, size=10_000)
        b = rng.integers(0, 4, size=10_000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_symmetry(self, rng):
        a = rng.integers(0, 3, size=300)
        b = rng.integers(0, 5, size=300)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    def test_trivial_partitions(self):
        ones = np.zeros(10, dtype=np.int64)
        assert normalized_mutual_information(ones, ones) == 1.0

    def test_one_trivial_side_is_zero(self):
        truth = np.array([0, 0, 1, 1])
        trivial = np.zeros(4, dtype=np.int64)
        assert normalized_mutual_information(truth, trivial) == 0.0

    def test_bounded(self, rng):
        for _ in range(10):
            a = rng.integers(0, 6, size=100)
            b = rng.integers(0, 6, size=100)
            value = normalized_mutual_information(a, b)
            assert 0.0 <= value <= 1.0

    def test_agrees_with_ari_direction(self, rng):
        """NMI and ARI must rank a good clustering above a noisy one."""
        from repro.evaluation import adjusted_rand_index

        truth = np.repeat(np.arange(4), 100)
        good = truth.copy()
        flip = rng.choice(400, size=20, replace=False)
        good[flip] = rng.integers(0, 4, size=20)
        bad = truth.copy()
        flip = rng.choice(400, size=200, replace=False)
        bad[flip] = rng.integers(0, 4, size=200)
        assert normalized_mutual_information(
            truth, good
        ) > normalized_mutual_information(truth, bad)
        assert adjusted_rand_index(truth, good) > adjusted_rand_index(
            truth, bad
        )
