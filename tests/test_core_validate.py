"""Unit tests for the deep consistency validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.core import verify_consistency


@pytest.fixture
def consistent_world(rng):
    store = PointStore(dim=2)
    store.insert(rng.normal(size=(300, 2)), np.zeros(300, dtype=np.int64))
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=0)).build(store)
    return store, bubbles


class TestVerifyConsistency:
    def test_fresh_build_is_consistent(self, consistent_world):
        store, bubbles = consistent_world
        report = verify_consistency(bubbles, store)
        assert report.ok
        assert report.violations == ()
        report.raise_if_invalid()  # no-op when ok

    def test_consistent_after_maintenance(self, consistent_world, rng):
        store, bubbles = consistent_world
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=0)
        )
        for _ in range(3):
            victims = tuple(
                int(i) for i in rng.choice(store.ids(), 30, replace=False)
            )
            maintainer.apply_batch(
                UpdateBatch(
                    deletions=victims,
                    insertions=rng.normal(size=(30, 2)) * 20.0,
                    insertion_labels=tuple([0] * 30),
                )
            )
            assert verify_consistency(bubbles, store).ok

    def test_detects_double_membership(self, consistent_world):
        store, bubbles = consistent_world
        donor = bubbles.non_empty_ids()[0]
        pid = next(iter(bubbles[donor].members))
        other = bubbles.non_empty_ids()[1]
        bubbles[other].absorb(pid, store.point(pid))  # corrupt on purpose
        report = verify_consistency(bubbles, store)
        assert not report.ok
        assert any("member of bubbles" in v for v in report.violations)
        with pytest.raises(AssertionError):
            report.raise_if_invalid()

    def test_detects_uncovered_point(self, consistent_world):
        store, bubbles = consistent_world
        store.insert(np.zeros((1, 2)))  # alive but owned by nobody
        report = verify_consistency(bubbles, store)
        assert not report.ok
        assert any("belong to no bubble" in v for v in report.violations)

    def test_detects_dead_member(self, consistent_world):
        store, bubbles = consistent_world
        donor = bubbles.non_empty_ids()[0]
        pid = next(iter(bubbles[donor].members))
        # Delete from the store without telling the bubble.
        store.delete([pid])
        report = verify_consistency(bubbles, store)
        assert not report.ok
        assert any("dead point" in v for v in report.violations)

    def test_detects_ownership_mismatch(self, consistent_world):
        store, bubbles = consistent_world
        donor = bubbles.non_empty_ids()[0]
        pid = next(iter(bubbles[donor].members))
        store.set_owner(pid, donor + 1)  # lie about the owner
        report = verify_consistency(bubbles, store)
        assert not report.ok
        assert any("store owner" in v for v in report.violations)

    def test_detects_statistics_drift(self, consistent_world):
        store, bubbles = consistent_world
        donor = bubbles.non_empty_ids()[0]
        # Corrupt statistics directly (simulating a missed update).
        bubbles[donor].stats.insert(np.array([1e6, 1e6]))
        bubbles[donor].stats.remove(np.array([0.0, 0.0]))
        report = verify_consistency(bubbles, store)
        assert not report.ok
        assert any("drifted" in v or "n=" in v for v in report.violations)
