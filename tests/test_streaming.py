"""Unit tests for the sliding-window stream summarizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SlidingWindowSummarizer
from repro.exceptions import InvalidConfigError, NotFittedError


class TestBootstrap:
    def test_not_ready_before_enough_points(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=500, points_per_bubble=50, seed=0
        )
        report = stream.append(rng.normal(size=(60, 2)))
        assert report is None
        assert not stream.is_ready()
        with pytest.raises(NotFittedError):
            _ = stream.summary

    def test_bootstraps_at_threshold(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=500, points_per_bubble=50, seed=0
        )
        stream.append(rng.normal(size=(60, 2)))
        stream.append(rng.normal(size=(60, 2)))
        assert stream.is_ready()
        assert stream.summary.membership_invariant_ok(stream.size)

    def test_reports_after_bootstrap(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=500, points_per_bubble=40, seed=0
        )
        stream.append(rng.normal(size=(100, 2)))
        report = stream.append(rng.normal(size=(100, 2)))
        assert report is not None
        assert report.num_insertions == 100


class TestWindowSemantics:
    def test_size_capped_at_window(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=300, points_per_bubble=30, seed=0
        )
        for _ in range(10):
            stream.append(rng.normal(size=(80, 2)))
        assert stream.size == 300

    def test_fifo_eviction(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=200, points_per_bubble=20, seed=0
        )
        stream.append(np.zeros((150, 2)))
        stream.append(np.ones((150, 2)))
        # The first 100 zeros fell out; 50 zeros + 150 ones remain.
        _, points, _ = stream.store.snapshot()
        assert stream.size == 200
        assert int((points == 0.0).all(axis=1).sum()) == 50

    def test_window_replacement_tracks_drift(self, rng):
        """The degenerate-database claim: a full window replacement moves
        the summary to the new distribution."""
        stream = SlidingWindowSummarizer(
            dim=2, window_size=400, points_per_bubble=40, seed=0
        )
        for _ in range(5):
            stream.append(rng.normal([0, 0], 1.0, size=(100, 2)))
        for _ in range(8):
            stream.append(rng.normal([50, 50], 1.0, size=(100, 2)))
        reps = stream.summary.reps()
        counts = stream.summary.counts()
        weighted = (reps * counts[:, None]).sum(axis=0) / counts.sum()
        assert np.linalg.norm(weighted - np.array([50.0, 50.0])) < 3.0
        assert stream.summary.membership_invariant_ok(stream.size)

    def test_invariant_maintained_throughout(self, rng):
        stream = SlidingWindowSummarizer(
            dim=3, window_size=250, points_per_bubble=25, seed=1
        )
        for i in range(12):
            stream.append(rng.normal(size=(60, 3)) * (1 + i))
            if stream.is_ready():
                assert stream.summary.membership_invariant_ok(stream.size)

    def test_eviction_is_strictly_fifo(self, rng):
        """Eviction removes the oldest ids first — exactly the ids below
        the cutoff — and the size never exceeds the window, across ragged
        chunk sizes (regression for the windowing arithmetic)."""
        window = 250
        stream = SlidingWindowSummarizer(
            dim=2, window_size=window, points_per_bubble=25, seed=2
        )
        appended = 0
        for size in (30, 110, 7, 95, 64, 1, 120, 33, 250, 18, 77):
            stream.append(rng.normal(size=(size, 2)))
            appended += size
            assert stream.size == min(appended, window)
            surviving = np.sort(stream.store.ids())
            # Ids are allocated sequentially, so a strictly-FIFO window
            # holds exactly the most recent ``size`` ids — contiguous and
            # ending at the newest allocation.
            expected = np.arange(appended - stream.size, appended)
            assert np.array_equal(surviving, expected)

    def test_labels_flow_through(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=300, points_per_bubble=30, seed=0
        )
        stream.append(rng.normal(size=(100, 2)), labels=[3] * 100)
        assert stream.store.ids_with_label(3).size == 100


class TestValidation:
    def test_config_validated(self):
        with pytest.raises(InvalidConfigError):
            SlidingWindowSummarizer(dim=2, window_size=1, points_per_bubble=1)
        with pytest.raises(InvalidConfigError):
            SlidingWindowSummarizer(
                dim=2, window_size=100, points_per_bubble=0
            )
        with pytest.raises(InvalidConfigError):
            SlidingWindowSummarizer(
                dim=2, window_size=100, points_per_bubble=80
            )

    def test_oversized_chunk_rejected(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=100, points_per_bubble=10
        )
        with pytest.raises(ValueError):
            stream.append(rng.normal(size=(101, 2)))

    def test_single_point_chunk(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=100, points_per_bubble=10
        )
        stream.append(np.array([1.0, 2.0]))
        assert stream.size == 1
