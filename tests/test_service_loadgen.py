"""Load generator: determinism, Zipf skew, burstiness, round trips."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.exceptions import InvalidConfigError
from repro.service import (
    LoadSpec,
    generate_events,
    read_events,
    tenant_ids,
    tenant_weights,
    valid_tenant,
    write_events,
)


class TestSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenants": 0},
            {"events": -1},
            {"dim": 0},
            {"zipf_s": -0.1},
            {"burst_mean": 0.0},
        ],
    )
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(InvalidConfigError):
            LoadSpec(**kwargs)

    def test_tenant_ids_are_valid_tenants(self):
        for tenant in tenant_ids(LoadSpec(tenants=12)):
            assert valid_tenant(tenant)

    def test_weights_normalized_and_skewed(self):
        weights = tenant_weights(LoadSpec(tenants=8, zipf_s=1.1))
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)  # strictly rank-decreasing
        uniform = tenant_weights(LoadSpec(tenants=8, zipf_s=0.0))
        assert np.allclose(uniform, 1.0 / 8)


class TestStream:
    def test_exact_event_count(self):
        spec = LoadSpec(tenants=4, events=777, seed=3)
        assert sum(1 for _ in generate_events(spec)) == 777

    def test_deterministic(self):
        spec = LoadSpec(tenants=8, events=1000, seed=42)
        assert list(generate_events(spec)) == list(generate_events(spec))

    def test_seed_changes_stream(self):
        a = list(generate_events(LoadSpec(events=200, seed=1)))
        b = list(generate_events(LoadSpec(events=200, seed=2)))
        assert a != b

    def test_zipf_head_dominates(self):
        spec = LoadSpec(tenants=8, events=4000, seed=0, zipf_s=1.1)
        counts: dict[str, int] = {}
        for event in generate_events(spec):
            counts[event.tenant] = counts.get(event.tenant, 0) + 1
        assert len(counts) == 8  # even the tail trickles
        head = counts["tenant-000"]
        tail = counts["tenant-007"]
        assert head > 3 * tail

    def test_bursts_share_virtual_timestamps(self):
        spec = LoadSpec(tenants=4, events=500, seed=5, burst_mean=16.0)
        ts = [event.ts for event in generate_events(spec)]
        assert ts == sorted(ts)  # virtual time is monotone
        bursts = len(set(ts))
        assert 1 < bursts < 500  # grouped, not one-per-event

    def test_labels_match_tenant_index(self):
        spec = LoadSpec(tenants=4, events=300, seed=6)
        ids = tenant_ids(spec)
        for event in generate_events(spec):
            assert ids[event.label] == event.tenant
            assert len(event.point) == spec.dim

    def test_ndjson_round_trip_lossless(self):
        spec = LoadSpec(tenants=5, events=400, seed=9, dim=3)
        events = list(generate_events(spec))
        buffer = io.StringIO()
        write_events(buffer, events)
        buffer.seek(0)
        assert list(read_events(buffer)) == events

    def test_points_are_finite(self):
        spec = LoadSpec(tenants=3, events=300, seed=11, dim=4)
        for event in generate_events(spec):
            assert all(np.isfinite(v) for v in event.point)
