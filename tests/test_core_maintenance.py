"""Unit tests for the incremental maintenance scheme (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.core import DonorPolicy, SplitStrategy
from repro.exceptions import InvalidConfigError
from repro.geometry import DistanceCounter


def make_world(rng, num_points=600, num_bubbles=20):
    points = np.vstack(
        [
            rng.normal([0, 0], 0.5, size=(num_points // 2, 2)),
            rng.normal([20, 20], 0.5, size=(num_points // 2, 2)),
        ]
    )
    labels = np.array(
        [0] * (num_points // 2) + [1] * (num_points // 2), dtype=np.int64
    )
    store = PointStore(dim=2)
    store.insert(points, labels)
    counter = DistanceCounter()
    bubbles = BubbleBuilder(
        BubbleConfig(num_bubbles=num_bubbles, seed=0), counter
    ).build(store)
    maintainer = IncrementalMaintainer(
        bubbles, store, MaintenanceConfig(seed=0), counter=counter
    )
    return store, bubbles, maintainer


class TestDeletions:
    def test_deletion_decrements_owner(self, rng):
        store, bubbles, maintainer = make_world(rng)
        victim = int(store.ids()[0])
        owner = store.owner(victim)
        before = bubbles[owner].n
        batch = UpdateBatch(deletions=(victim,), insertions=np.empty((0, 2)))
        maintainer.apply_batch(batch)
        assert bubbles[owner].n == before - 1
        assert victim not in store

    def test_deletions_cost_no_distance_computations(self, rng):
        store, bubbles, maintainer = make_world(rng)
        victims = tuple(int(i) for i in store.ids()[:10])
        batch = UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
        report = maintainer.apply_batch(batch)
        # A pure-deletion batch only pays for rebuilds (if any trigger).
        if not report.rebuilt_bubbles:
            assert report.computed_distances == 0

    def test_partition_preserved_under_deletions(self, rng):
        store, bubbles, maintainer = make_world(rng)
        victims = tuple(int(i) for i in store.ids()[::5])
        maintainer.apply_batch(
            UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
        )
        assert bubbles.membership_invariant_ok(store.size)


class TestInsertions:
    def test_insertion_goes_to_nearest_rep(self, rng):
        store, bubbles, maintainer = make_world(rng)
        reps_before = bubbles.reps()
        new_point = np.array([[0.1, -0.2]])
        batch = UpdateBatch(
            insertions=new_point, insertion_labels=(0,)
        )
        maintainer.apply_batch(batch)
        new_id = int(store.ids()[-1])
        owner = store.owner(new_id)
        dists = np.linalg.norm(reps_before - new_point[0], axis=1)
        assert owner == int(np.argmin(dists))

    def test_insertion_updates_statistics(self, rng):
        store, bubbles, maintainer = make_world(rng)
        total_before = bubbles.total_points
        batch = UpdateBatch(
            insertions=rng.normal([0, 0], 0.5, size=(25, 2)),
            insertion_labels=tuple([0] * 25),
        )
        maintainer.apply_batch(batch)
        assert bubbles.total_points == total_before + 25
        assert bubbles.membership_invariant_ok(store.size)

    def test_empty_batch_is_noop(self, rng):
        store, bubbles, maintainer = make_world(rng)
        counts_before = bubbles.counts().tolist()
        report = maintainer.apply_batch(UpdateBatch.empty(dim=2))
        assert bubbles.counts().tolist() == counts_before
        assert report.num_insertions == 0
        assert report.num_deletions == 0


class TestQualityRepair:
    def test_new_far_cluster_triggers_rebuild(self, rng):
        store, bubbles, maintainer = make_world(rng)
        # Insert a heavy new cluster far from everything across batches.
        rebuilt_any = False
        for _ in range(4):
            batch = UpdateBatch(
                insertions=rng.normal([60, -40], 0.5, size=(120, 2)),
                insertion_labels=tuple([2] * 120),
            )
            report = maintainer.apply_batch(batch)
            rebuilt_any = rebuilt_any or bool(report.rebuilt_bubbles)
        assert rebuilt_any
        # After the rebuilds, several bubbles summarize the new region.
        reps = maintainer.bubbles.reps()
        near = np.linalg.norm(reps - np.array([60.0, -40.0]), axis=1) < 5.0
        counts = maintainer.bubbles.counts()
        assert counts[near].sum() > 200  # most of the 480 new points
        assert near.sum() >= 2

    def test_report_counts_classes(self, rng):
        store, bubbles, maintainer = make_world(rng)
        report = maintainer.apply_batch(UpdateBatch.empty(dim=2))
        assert report.num_over_filled >= 0
        assert report.num_under_filled >= 0
        assert report.rounds_run <= maintainer.config.rebuild_rounds

    def test_classify_does_not_mutate(self, rng):
        store, bubbles, maintainer = make_world(rng)
        counts = bubbles.counts().tolist()
        maintainer.classify()
        assert bubbles.counts().tolist() == counts

    def test_rebuilt_ids_are_valid(self, rng):
        store, bubbles, maintainer = make_world(rng)
        batch = UpdateBatch(
            insertions=rng.normal([80, 80], 0.5, size=(400, 2)),
            insertion_labels=tuple([3] * 400),
        )
        report = maintainer.apply_batch(batch)
        for bid in report.rebuilt_bubbles:
            assert 0 <= bid < len(bubbles)


class TestUnownedDeletion:
    def test_deleting_unassigned_point_raises_clearly(self, rng):
        from repro.exceptions import UnknownPointError

        store, bubbles, maintainer = make_world(rng)
        rogue = store.insert(np.zeros((1, 2)), labels=[-1])[0]
        with pytest.raises(UnknownPointError, match="not summarized"):
            maintainer.apply_batch(
                UpdateBatch(
                    deletions=(rogue,), insertions=np.empty((0, 2))
                )
            )


class TestDonorPolicies:
    @pytest.mark.parametrize(
        "policy", [DonorPolicy.UNDERFILLED_FIRST, DonorPolicy.LOWEST_BETA]
    )
    def test_policies_preserve_partition(self, rng, policy):
        store = PointStore(dim=2)
        points = rng.normal([0, 0], 1.0, size=(500, 2))
        store.insert(points, np.zeros(500, dtype=np.int64))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=15, seed=1)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles,
            store,
            MaintenanceConfig(seed=1, donor_policy=policy),
        )
        for _ in range(3):
            batch = UpdateBatch(
                insertions=rng.normal([50, 50], 0.5, size=(150, 2)),
                insertion_labels=tuple([1] * 150),
            )
            maintainer.apply_batch(batch)
            assert bubbles.membership_invariant_ok(store.size)


class TestBatchReport:
    def test_pruned_fraction(self, rng):
        store, bubbles, maintainer = make_world(rng)
        batch = UpdateBatch(
            insertions=rng.normal([0, 0], 0.5, size=(60, 2)),
            insertion_labels=tuple([0] * 60),
        )
        report = maintainer.apply_batch(batch)
        assert 0.0 <= report.pruned_fraction <= 1.0
        assert 0.0 <= report.insertion_pruned_fraction <= 1.0
        assert report.num_rebuilt == len(report.rebuilt_bubbles)

    def test_counter_delta_matches_report(self, rng):
        store, bubbles, maintainer = make_world(rng)
        before = maintainer.counter.snapshot()
        batch = UpdateBatch(
            insertions=rng.normal([0, 0], 0.5, size=(30, 2)),
            insertion_labels=tuple([0] * 30),
        )
        report = maintainer.apply_batch(batch)
        delta = maintainer.counter.snapshot() - before
        assert report.computed_distances == delta.computed
        assert report.pruned_distances == delta.pruned


class TestMaintenanceConfig:
    def test_rebuild_rounds_validated(self):
        with pytest.raises(InvalidConfigError):
            MaintenanceConfig(rebuild_rounds=0)

    def test_probability_validated(self):
        with pytest.raises(InvalidConfigError):
            MaintenanceConfig(probability=2.0)

    def test_k_property(self):
        assert MaintenanceConfig(probability=0.9).k == pytest.approx(
            10.0 ** 0.5
        )

    def test_defaults(self):
        config = MaintenanceConfig()
        assert config.probability == 0.9
        assert config.split_strategy is SplitStrategy.FARTHEST
        assert config.donor_policy is DonorPolicy.UNDERFILLED_FIRST
