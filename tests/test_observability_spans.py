"""Hierarchical span tracing: parenting, no-op guarantees, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability import (
    NULL_SPAN,
    EventTracer,
    Observability,
    SpanTracer,
    maybe_span,
)
from repro.observability.spans import SPAN_SECONDS_METRIC
from repro.streaming import SlidingWindowSummarizer


def _traced() -> Observability:
    return Observability(tracer=EventTracer(), spans=SpanTracer())


class TestSpanLifecycle:
    def test_span_emits_start_and_end_events(self):
        obs = _traced()
        with obs.span("apply_batch", batch=7):
            pass
        (start,) = obs.tracer.events("span_start")
        (end,) = obs.tracer.events("span_end")
        assert start.fields["op"] == "apply_batch"
        assert start.fields["batch"] == 7
        assert start.fields["parent"] is None
        assert end.fields["span"] == start.fields["span"]
        assert end.fields["seconds"] >= 0.0

    def test_nested_spans_are_parented(self):
        obs = _traced()
        with obs.span("apply_batch"):
            with obs.span("maintain_insert"):
                with obs.span("assign_block"):
                    assert obs.spans.depth == 3
        starts = obs.tracer.events("span_start")
        by_op = {e.fields["op"]: e.fields for e in starts}
        assert by_op["apply_batch"]["parent"] is None
        assert by_op["maintain_insert"]["parent"] == by_op["apply_batch"]["span"]
        assert by_op["assign_block"]["parent"] == by_op["maintain_insert"]["span"]
        assert obs.spans.depth == 0

    def test_siblings_share_a_parent(self):
        obs = _traced()
        with obs.span("apply_batch"):
            with obs.span("maintain_delete"):
                pass
            with obs.span("maintain_insert"):
                pass
        starts = obs.tracer.events("span_start")
        parent = starts[0].fields["span"]
        assert starts[1].fields["parent"] == parent
        assert starts[2].fields["parent"] == parent

    def test_seq_numbers_totally_order_nested_spans(self):
        # LIFO close: start(outer) < start(inner) < end(inner) < end(outer),
        # and the tracer's seq numbers must witness that order even when
        # the monotonic timestamps are equal at clock resolution.
        obs = _traced()
        with obs.span("recovery"):
            with obs.span("recovery_scan"):
                pass
            with obs.span("replay"):
                pass
        events = obs.tracer.events()
        assert [e.seq for e in events] == list(range(len(events)))
        order = [(e.kind, e.fields["op"]) for e in events]
        assert order == [
            ("span_start", "recovery"),
            ("span_start", "recovery_scan"),
            ("span_end", "recovery_scan"),
            ("span_start", "replay"),
            ("span_end", "replay"),
            ("span_end", "recovery"),
        ]

    def test_exception_closes_span_with_error_flag(self):
        obs = _traced()
        with pytest.raises(RuntimeError):
            with obs.span("checkpoint"):
                raise RuntimeError("disk on fire")
        (end,) = obs.tracer.events("span_end")
        assert end.fields["error"] is True
        assert obs.spans.depth == 0

    def test_durations_feed_per_op_histogram(self):
        obs = _traced()
        for _ in range(3):
            with obs.span("classify"):
                pass
        sample = next(
            s
            for s in obs.metrics.snapshot()
            if s.name == SPAN_SECONDS_METRIC
            and dict(s.labels).get("op") == "classify"
        )
        assert sample.kind == "histogram"
        assert sample.count == 3

    def test_counts_and_total_opened(self):
        obs = _traced()
        with obs.span("audit"):
            with obs.span("audit_repair"):
                pass
        assert obs.spans.total_opened == 2
        assert obs.spans.counts() == {"audit": 1, "audit_repair": 1}


class TestDisabledSpans:
    def test_maybe_span_returns_null_for_none_obs(self):
        assert maybe_span(None, "apply_batch") is NULL_SPAN

    def test_maybe_span_returns_null_without_tracer(self):
        obs = Observability()
        assert maybe_span(obs, "apply_batch", batch=1) is NULL_SPAN
        assert obs.span("apply_batch") is NULL_SPAN

    def test_null_span_is_a_reusable_context_manager(self):
        with NULL_SPAN as handle:
            assert handle is NULL_SPAN
        with NULL_SPAN:
            pass

    def test_spanless_handle_records_no_span_metrics(self):
        obs = Observability()
        with obs.span("apply_batch"):
            pass
        names = {s.name for s in obs.metrics.snapshot()}
        assert SPAN_SECONDS_METRIC not in names


class TestBinding:
    def test_unbound_tracer_refuses_spans(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError, match="not bound"):
            tracer.span("apply_batch")

    def test_tracer_cannot_serve_two_handles(self):
        tracer = SpanTracer()
        Observability(spans=tracer)
        with pytest.raises(ValueError, match="already bound"):
            Observability(spans=tracer)

    def test_rebinding_same_handle_is_idempotent(self):
        tracer = SpanTracer()
        obs = Observability(spans=tracer)
        tracer.bind(obs)  # no error


class TestBitIdentical:
    def test_flight_recorder_does_not_perturb_the_stream(self):
        """Full instrumentation must leave results and RNG bit-identical."""

        def run(obs):
            stream = SlidingWindowSummarizer(
                dim=2,
                window_size=600,
                points_per_bubble=25,
                seed=3,
                obs=obs,
            )
            rng = np.random.default_rng(11)
            for i in range(8):
                stream.append(rng.normal(size=(150, 2)) + 0.2 * i)
            return stream

        plain = run(None)
        traced = run(
            Observability(tracer=EventTracer(), spans=SpanTracer())
        )

        assert plain.counter.snapshot() == traced.counter.snapshot()
        assert plain.maintainer.rng_state == traced.maintainer.rng_state
        a, b = plain.maintainer.bubbles, traced.maintainer.bubbles
        assert sorted(x.bubble_id for x in a) == sorted(
            x.bubble_id for x in b
        )
        np.testing.assert_array_equal(a.counts(), b.counts())
        np.testing.assert_array_equal(a.reps(), b.reps())
        np.testing.assert_array_equal(a.extents(), b.extents())
        for bubble in a:
            np.testing.assert_array_equal(
                bubble.member_ids(),
                b[bubble.bubble_id].member_ids(),
            )
        assert traced.obs.spans.total_opened > 0
