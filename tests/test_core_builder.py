"""Unit tests for static bubble construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    PointStore,
)
from repro.exceptions import InvalidConfigError
from repro.geometry import DistanceCounter


class TestBuild:
    def test_partition_invariant(self, populated_store, built_bubbles):
        assert built_bubbles.membership_invariant_ok(populated_store.size)
        assert built_bubbles.total_points == populated_store.size

    def test_owners_recorded(self, populated_store, built_bubbles):
        for bubble in built_bubbles:
            for pid in bubble.members:
                assert populated_store.owner(pid) == bubble.bubble_id

    def test_assignment_is_nearest_seed(self, populated_store, built_bubbles):
        seeds = built_bubbles.seeds()
        ids, points, _ = populated_store.snapshot()
        expected = np.argmin(
            ((points[:, None, :] - seeds[None, :, :]) ** 2).sum(axis=2),
            axis=1,
        )
        for pid, owner in zip(ids, expected):
            assert populated_store.owner(int(pid)) == int(owner)

    def test_requested_number_of_bubbles(self, built_bubbles):
        assert len(built_bubbles) == 12

    def test_too_few_points(self):
        store = PointStore(dim=2)
        store.insert(np.zeros((3, 2)))
        builder = BubbleBuilder(BubbleConfig(num_bubbles=5))
        with pytest.raises(InvalidConfigError):
            builder.build(store)

    def test_deterministic_given_seed(self, populated_store):
        a = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=3)).build(
            populated_store
        )
        b = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=3)).build(
            populated_store
        )
        assert a.counts().tolist() == b.counts().tolist()
        assert a.reps() == pytest.approx(b.reps())

    def test_naive_and_pruned_builds_agree(self, populated_store):
        pruned = BubbleBuilder(
            BubbleConfig(num_bubbles=10, seed=5)
        ).build(populated_store)
        naive = BubbleBuilder(
            BubbleConfig(num_bubbles=10, seed=5, use_triangle_inequality=False)
        ).build(populated_store)
        assert pruned.counts().tolist() == naive.counts().tolist()
        assert pruned.reps() == pytest.approx(naive.reps())

    def test_counter_receives_costs(self, populated_store):
        counter = DistanceCounter()
        BubbleBuilder(
            BubbleConfig(num_bubbles=10, seed=1), counter=counter
        ).build(populated_store)
        # At minimum, every point required one computed distance.
        assert counter.computed >= populated_store.size

    def test_pruning_fraction_positive_on_clustered_data(
        self, populated_store
    ):
        builder = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=1))
        builder.build(populated_store)
        assert builder.last_pruned_fraction > 0.2

    def test_rebuild_overwrites_ownership(self, populated_store):
        builder = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=1))
        builder.build(populated_store)
        second = builder.build(populated_store)
        assert second.membership_invariant_ok(populated_store.size)

    def test_single_bubble(self, populated_store):
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=1, seed=0)).build(
            populated_store
        )
        assert bubbles[0].n == populated_store.size


class TestConfigValidation:
    def test_num_bubbles_must_be_positive(self):
        with pytest.raises(InvalidConfigError):
            BubbleConfig(num_bubbles=0)
