"""Live telemetry plane: endpoints, merged scrapes, readiness, SLO wiring.

Includes the concurrency contracts: a scrape taken *during* ingest is
snapshot-consistent per tenant, and counters are monotone across
consecutive scrapes even through a supervised shard restart (the
replacement shard inherits the failed shard's registry).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.observability import (
    SLOEngine,
    TelemetryListener,
    merged_fleet_snapshot,
)
from repro.service import (
    FleetConfig,
    FleetManager,
    PointEvent,
    ShardSupervisor,
    serve_events,
)

SYNC = dict(
    window_size=400,
    points_per_bubble=20,
    checkpoint_every=8,
    fsync=False,
    workers=0,
    queue_points=256,
    batch_points=16,
)


def ev(tenant: str, i: int) -> PointEvent:
    return PointEvent(tenant=tenant, point=(float(i % 7), 0.5), label=i)


def boom(self, points, labels=None):
    raise RuntimeError("poisoned batch")


def get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


@pytest.fixture()
def fleet(tmp_path):
    with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as manager:
        yield manager


@pytest.fixture()
def listener(fleet):
    with TelemetryListener(fleet, tick_seconds=0.0) as plane:
        yield plane


def feed(fleet, tenants=("alpha", "beta"), n=48) -> None:
    for i in range(n):
        fleet.submit(ev(tenants[i % len(tenants)], i))


class TestMergedSnapshot:
    def test_samples_carry_tenant_labels(self, fleet):
        feed(fleet)
        snapshot = merged_fleet_snapshot(fleet)
        tenants = {
            dict(sample.labels).get("tenant")
            for sample in snapshot
            if sample.name == "repro_service_enqueued_points_total"
        }
        assert tenants == {"alpha", "beta"}

    def test_sorted_for_single_family_headers(self, fleet):
        feed(fleet)
        samples = list(merged_fleet_snapshot(fleet))
        assert samples == sorted(
            samples, key=lambda s: (s.name, s.labels)
        )

    def test_fleet_gauges_present(self, fleet):
        feed(fleet)
        snapshot = merged_fleet_snapshot(fleet)
        assert snapshot.value("repro_fleet_tenants") == 2
        assert (
            snapshot.value("repro_fleet_shards", {"state": "running"}) == 2
        )

    def test_slo_burn_rates_exported_when_attached(self, fleet):
        fleet.attach_slo(SLOEngine())
        feed(fleet)
        fleet.slo_tick(now=1.0)
        snapshot = merged_fleet_snapshot(fleet)
        assert snapshot.value("repro_slo_alerts_firing") == 0
        value = snapshot.value(
            "repro_slo_burn_rate",
            {"objective": "shed_fraction", "window": "fast"},
        )
        assert value == 0.0


class TestEndpoints:
    def test_metrics_is_prometheus_text(self, fleet, listener):
        feed(fleet)
        status, body = get(listener.url("/metrics"))
        assert status == 200
        assert "# TYPE repro_service_enqueued_points_total counter" in body
        assert 'tenant="alpha"' in body
        # One header per family even with per-tenant series.
        assert (
            body.count("# TYPE repro_service_enqueued_points_total ") == 1
        )

    def test_health_reports_ok_fleet(self, fleet, listener):
        feed(fleet)
        status, body = get(listener.url("/health"))
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["failed_shards"] == 0
        assert document["rollup"]["fleet"]["tenants"] == 2

    def test_ready_while_live(self, fleet, listener):
        feed(fleet)
        status, body = get(listener.url("/ready"))
        assert status == 200
        assert json.loads(body)["ready"] is True

    def test_tenant_stats_and_404(self, fleet, listener):
        feed(fleet)
        status, body = get(listener.url("/tenants/alpha/stats"))
        assert status == 200
        assert json.loads(body)["submitted_points"] > 0
        status, _ = get(listener.url("/tenants/nobody/stats"))
        assert status == 404
        status, _ = get(listener.url("/bogus"))
        assert status == 404

    def test_index_lists_endpoints(self, fleet, listener):
        status, body = get(listener.url("/"))
        assert status == 200
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_start_stop_idempotent(self, fleet):
        plane = TelemetryListener(fleet, tick_seconds=0.0)
        assert plane.start() is plane.start()
        port = plane.port
        assert port > 0
        plane.stop()
        plane.stop()


class TestDegradedFleet:
    def test_failed_shard_flips_ready_and_health(
        self, fleet, listener, monkeypatch
    ):
        feed(fleet, tenants=("alpha",), n=8)
        summarizer = fleet.shard("alpha").summarizer
        monkeypatch.setattr(
            summarizer, "append", boom.__get__(summarizer)
        )
        for i in range(32):
            fleet.submit(ev("alpha", i))
        assert fleet.shard("alpha").state == "failed"
        status, body = get(listener.url("/ready"))
        assert status == 503
        assert json.loads(body)["failed_shards"] == 1
        status, body = get(listener.url("/health"))
        assert status == 200  # health always answers
        assert json.loads(body)["status"] == "degraded"

    def test_ready_503_after_drain(self, tmp_path):
        fleet = FleetManager(tmp_path / "f", FleetConfig(**SYNC))
        with TelemetryListener(fleet, tick_seconds=0.0) as plane:
            feed(fleet, n=8)
            fleet.drain()
            status, body = get(plane.url("/ready"))
            assert status == 503
            assert json.loads(body)["closed"] is True

    def test_firing_alert_degrades_health_then_resolves(self, tmp_path):
        shed_config = dict(SYNC, queue_points=16, backpressure="shed")
        with FleetManager(
            tmp_path / "f", FleetConfig(**shed_config)
        ) as fleet:
            fleet.attach_slo(
                SLOEngine(
                    fast_window_seconds=5.0, slow_window_seconds=10.0
                )
            )
            with TelemetryListener(fleet, tick_seconds=0.0) as plane:
                # Submit straight to the shard without flushing: the
                # 16-point queue fills and everything beyond it sheds,
                # while the injected clock ticks through both windows.
                shard = fleet._get_or_create("t")
                for second in range(12):
                    for i in range(64):
                        event = ev("t", i)
                        shard.submit(event.point, event.label)
                    fleet.slo_tick(now=float(second))
                status, body = get(plane.url("/health"))
                document = json.loads(body)
                assert document["status"] == "degraded"
                assert document["firing_alerts"] >= 1
                firing = {
                    row["name"]
                    for row in document["rollup"]["fleet"]["slo"][
                        "objectives"
                    ]
                    if row["state"] == "firing"
                }
                assert "shed_fraction" in firing
                # Recovery: flush the backlog, then run clean ticks
                # until both windows forget the incident.
                shard.drain_flush()
                for second in range(12, 30):
                    fleet.slo_tick(now=float(second))
                status, body = get(plane.url("/health"))
                document = json.loads(body)
                assert document["status"] == "ok"
                states = {
                    row["name"]: row["state"]
                    for row in document["rollup"]["fleet"]["slo"][
                        "objectives"
                    ]
                }
                assert states["shed_fraction"] == "resolved"


class TestConcurrentScrapes:
    def test_scrape_during_ingest_is_consistent(self, tmp_path):
        """Scrapes racing live ingest: every per-tenant snapshot obeys
        the shard accounting identity, and counters are monotone."""
        config = FleetConfig(**dict(SYNC, workers=2))
        stop = threading.Event()
        errors: list[str] = []
        seen: dict[str, float] = {}

        def scrape_loop(url: str) -> None:
            while not stop.is_set():
                status, body = get(url)
                if status != 200:
                    errors.append(f"status {status}")
                    return
                enqueued: dict[str, float] = {}
                applied: dict[str, float] = {}
                queued: dict[str, float] = {}
                for line in body.splitlines():
                    if line.startswith("#") or "tenant=" not in line:
                        continue
                    name = line.split("{", 1)[0]
                    tenant = line.split('tenant="', 1)[1].split('"', 1)[0]
                    value = float(line.rsplit(" ", 1)[1])
                    if name == "repro_service_enqueued_points_total":
                        enqueued[tenant] = value
                    elif name == "repro_service_applied_points_total":
                        applied[tenant] = value
                    elif name == "repro_service_queue_points":
                        queued[tenant] = value
                for tenant, total in enqueued.items():
                    accounted = applied.get(tenant, 0) + queued.get(
                        tenant, 0
                    )
                    # Snapshot consistency: one tenant's series come
                    # from one frozen registry instant, so applied +
                    # queued can never exceed enqueued.
                    if accounted > total:
                        errors.append(
                            f"{tenant}: applied+queued {accounted} > "
                            f"enqueued {total}"
                        )
                    previous = seen.get(tenant, 0.0)
                    if total < previous:
                        errors.append(
                            f"{tenant}: enqueued went backwards "
                            f"{previous} -> {total}"
                        )
                    seen[tenant] = total

        with FleetManager(tmp_path / "f", config) as fleet:
            with TelemetryListener(fleet, tick_seconds=0.0) as plane:
                scraper = threading.Thread(
                    target=scrape_loop,
                    args=(plane.url("/metrics"),),
                    daemon=True,
                )
                scraper.start()
                for i in range(1500):
                    fleet.submit(ev(f"tenant-{i % 4}", i))
                stop.set()
                scraper.join(timeout=10)
        assert not errors, errors[:5]
        assert seen, "scraper never parsed a tenant sample"

    def test_counters_monotone_across_supervised_restart(
        self, fleet, listener, monkeypatch
    ):
        supervisor = ShardSupervisor(max_restarts=3)
        fleet.attach_supervisor(supervisor)
        feed(fleet, tenants=("t",), n=16)

        def enqueued_now() -> float:
            _, body = get(listener.url("/metrics"))
            for line in body.splitlines():
                if line.startswith(
                    "repro_service_enqueued_points_total"
                ) and 'tenant="t"' in line:
                    return float(line.rsplit(" ", 1)[1])
            raise AssertionError("sample missing")

        before = enqueued_now()
        summarizer = fleet.shard("t").summarizer
        monkeypatch.setattr(
            summarizer, "append", boom.__get__(summarizer)
        )
        for i in range(16, 64):
            fleet.submit(ev("t", i))
        after = enqueued_now()
        assert fleet.shard("t").state == "running"  # restarted
        assert after >= before
        assert supervisor.stats()["restarts"] >= 1


class TestServeIntegration:
    def test_serve_events_runs_listener_through_drain(self, tmp_path):
        fleet = FleetManager(tmp_path / "f", FleetConfig(**SYNC))
        plane = TelemetryListener(fleet, tick_seconds=0.0)
        fleet.attach_slo(SLOEngine())
        stats = serve_events(
            fleet, [ev("t", i) for i in range(64)], listener=plane
        )
        assert stats.drained
        assert "slo" in stats.rollup["fleet"]
        # Listener is stopped after the rollup was captured.
        assert plane._server is None
        with pytest.raises(OSError):
            get(plane.url("/health"))
