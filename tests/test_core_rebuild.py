"""Unit tests for the complete-rebuild baseline maintainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CompleteRebuildMaintainer, PointStore, UpdateBatch
from repro.core import BubbleConfig


@pytest.fixture
def world(rng):
    store = PointStore(dim=2)
    points = rng.normal(size=(400, 2))
    store.insert(points, np.zeros(400, dtype=np.int64))
    maintainer = CompleteRebuildMaintainer(
        store, CompleteRebuildMaintainer.default_config(10, seed=0)
    )
    return store, maintainer


class TestCompleteRebuild:
    def test_bubbles_before_build_raises(self, world):
        _, maintainer = world
        with pytest.raises(RuntimeError):
            _ = maintainer.bubbles

    def test_rebuild_covers_database(self, world):
        store, maintainer = world
        bubbles = maintainer.rebuild()
        assert bubbles.total_points == store.size
        assert bubbles.membership_invariant_ok(store.size)

    def test_apply_batch_applies_and_rebuilds(self, world, rng):
        store, maintainer = world
        maintainer.rebuild()
        victims = tuple(int(i) for i in store.ids()[:50])
        batch = UpdateBatch(
            deletions=victims,
            insertions=rng.normal(size=(50, 2)),
            insertion_labels=tuple([0] * 50),
        )
        report = maintainer.apply_batch(batch)
        assert store.size == 400
        assert maintainer.bubbles.total_points == 400
        assert report.num_deletions == 50
        assert report.num_insertions == 50
        # Every bubble counts as rebuilt for Figure 9 purposes.
        assert len(report.rebuilt_bubbles) == 10

    def test_default_config_disables_pruning(self):
        config = CompleteRebuildMaintainer.default_config(5)
        assert config.use_triangle_inequality is False

    def test_rebuild_cost_scales_with_database(self, world):
        store, maintainer = world
        before = maintainer.counter.snapshot()
        maintainer.rebuild()
        delta = maintainer.counter.snapshot() - before
        # Naive rebuild: exactly N x B distance computations.
        assert delta.computed == store.size * 10
        assert delta.pruned == 0

    def test_pruned_rebuild_configurable(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(300, 2)))
        maintainer = CompleteRebuildMaintainer(
            store,
            BubbleConfig(num_bubbles=10, use_triangle_inequality=True, seed=0),
        )
        maintainer.rebuild()
        assert maintainer.counter.pruned > 0
