"""White-box tests of the maintenance scheme's internal decisions.

These pin the *order* of operations the paper specifies: donors are taken
under-filled-first (emptiest first), over-filled bubbles are processed
worst-first, a donor is used at most once per round, and the rebuild
rounds re-classify between passes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.core import BubbleClass, DonorPolicy
from repro.core.quality import QualityReport, classify_values


def report_from_values(values) -> QualityReport:
    return classify_values(np.asarray(values, dtype=np.float64), 0.9)


def make_maintainer(policy=DonorPolicy.UNDERFILLED_FIRST, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    store = PointStore(dim=2)
    store.insert(rng.normal(size=(200, 2)))
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=8, seed=rng_seed)).build(
        store
    )
    maintainer = IncrementalMaintainer(
        bubbles,
        store,
        MaintenanceConfig(seed=rng_seed, donor_policy=policy),
    )
    return store, bubbles, maintainer


class TestDonorQueue:
    def test_underfilled_first_ordering(self):
        _, _, maintainer = make_maintainer()
        # Craft a report: values chosen so ids 2 and 5 are under-filled
        # (2 emptier), id 0 over-filled, rest good with varying values.
        values = [0.9, 0.10, 0.0, 0.12, 0.14, 0.01, 0.11, 0.13]
        report = classify_values(np.asarray(values), 0.9)
        # Force the classes we want by building the report manually.
        from repro.core.quality import BubbleClass, QualityReport

        classes = [
            BubbleClass.OVER_FILLED,
            BubbleClass.GOOD,
            BubbleClass.UNDER_FILLED,
            BubbleClass.GOOD,
            BubbleClass.GOOD,
            BubbleClass.UNDER_FILLED,
            BubbleClass.GOOD,
            BubbleClass.GOOD,
        ]
        report = QualityReport(
            values=np.asarray(values),
            mean=report.mean,
            std=report.std,
            k=report.k,
            lower=report.lower,
            upper=report.upper,
            classes=tuple(classes),
        )
        queue = maintainer._donor_queue(report)  # noqa: SLF001
        # Under-filled first (emptiest first: 2 then 5), then good by
        # ascending value: 1 (0.10), 6 (0.11), 3 (0.12), 7 (0.13), 4 (0.14).
        assert queue == [2, 5, 1, 6, 3, 7, 4]

    def test_lowest_beta_policy_ignores_classes(self):
        _, _, maintainer = make_maintainer(policy=DonorPolicy.LOWEST_BETA)
        from repro.core.quality import BubbleClass, QualityReport

        values = [0.9, 0.10, 0.0, 0.12]
        classes = [
            BubbleClass.OVER_FILLED,
            BubbleClass.GOOD,
            BubbleClass.UNDER_FILLED,
            BubbleClass.GOOD,
        ]
        report = QualityReport(
            values=np.asarray(values),
            mean=0.0, std=0.0, k=1.0, lower=0.0, upper=0.0,
            classes=tuple(classes),
        )
        queue = maintainer._donor_queue(report)  # noqa: SLF001
        # Pure ascending value among non-over-filled: 2, 1, 3.
        assert queue == [2, 1, 3]


class TestRebuildRounds:
    def test_rounds_stop_when_clean(self):
        _, _, maintainer = make_maintainer()
        report = maintainer.apply_batch(UpdateBatch.empty(dim=2))
        # A balanced summary has no over-filled bubbles: zero rounds run.
        assert report.rounds_run == 0 or report.num_over_filled > 0

    def test_round_budget_respected(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(300, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=1)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=1, rebuild_rounds=3)
        )
        batch = UpdateBatch(
            insertions=rng.normal([90, 90], 0.5, size=(400, 2)),
            insertion_labels=tuple([1] * 400),
        )
        report = maintainer.apply_batch(batch)
        assert report.rounds_run <= 3

    def test_donor_used_once_per_round(self, rng):
        # Two far-apart new clusters appearing at once: both over-filled
        # bubbles need distinct donors.
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(400, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=12, seed=2)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=2)
        )
        batch = UpdateBatch(
            insertions=np.vstack(
                [
                    rng.normal([80, 0], 0.5, size=(200, 2)),
                    rng.normal([0, 80], 0.5, size=(200, 2)),
                ]
            ),
            insertion_labels=tuple([1] * 200 + [2] * 200),
        )
        report = maintainer.apply_batch(batch)
        # Every rebuilt id appears exactly once in the (sorted, deduped)
        # tuple; rebuilding happened for at least one over-filled bubble.
        assert len(set(report.rebuilt_bubbles)) == len(
            report.rebuilt_bubbles
        )
        assert bubbles.membership_invariant_ok(store.size)


class TestWorstFirstProcessing:
    def test_most_overfilled_bubble_is_rebuilt_when_donors_scarce(self, rng):
        """With a single usable donor, the worst over-filled bubble (by β)
        must win it."""
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(100, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=4, seed=3)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=3, rebuild_rounds=1)
        )
        # Overfill two bubbles to different degrees.
        big = rng.normal([60, 0], 0.4, size=(300, 2))
        small = rng.normal([0, 60], 0.4, size=(150, 2))
        report = maintainer.apply_batch(
            UpdateBatch(
                insertions=np.vstack([big, small]),
                insertion_labels=tuple([1] * 300 + [2] * 150),
            )
        )
        if report.num_over_filled >= 1 and report.rebuilt_bubbles:
            # The bubble holding the 300-point cluster must be among the
            # rebuilt ones (worst-first).
            reps = bubbles.reps()
            near_big = np.linalg.norm(
                reps - np.array([60.0, 0.0]), axis=1
            ) < 10.0
            assert near_big.sum() >= 2  # it was split toward the big blob


class TestBatchReportAccounting:
    def test_empty_summary_edge(self, rng):
        # A store whose every point is deleted: bubbles all empty, the
        # classifier must not crash and nothing is over-filled.
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(50, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=5, seed=4)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=4)
        )
        victims = tuple(int(i) for i in store.ids())
        report = maintainer.apply_batch(
            UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
        )
        assert store.size == 0
        assert bubbles.total_points == 0
        assert report.num_over_filled == 0

    def test_reinsertion_after_total_drain(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(50, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=5, seed=5)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=5)
        )
        victims = tuple(int(i) for i in store.ids())
        maintainer.apply_batch(
            UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
        )
        maintainer.apply_batch(
            UpdateBatch(
                insertions=rng.normal(size=(60, 2)),
                insertion_labels=tuple([0] * 60),
            )
        )
        assert bubbles.total_points == 60
        assert bubbles.membership_invariant_ok(store.size)
