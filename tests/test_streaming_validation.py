"""Ingestion screening policies and periodic audits in the stream path."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DurableSummarizer,
    InvalidPointError,
    SlidingWindowSummarizer,
)
from repro.core import BAD_POINT_POLICIES, screen_chunk
from repro.core.validate import check_policy
from repro.exceptions import InvalidConfigError
from repro.observability import EventTracer, Observability
from repro.streaming import QUARANTINE_CAPACITY


def chunk_with_nans(rng, m=40, bad_rows=(3, 17)):
    points = rng.normal(size=(m, 2))
    for i, row in enumerate(bad_rows):
        points[row, i % 2] = np.nan if i % 2 == 0 else np.inf
    return points


class TestCheckPolicy:
    @pytest.mark.parametrize("policy", BAD_POINT_POLICIES)
    def test_valid_policies_pass_through(self, policy):
        assert check_policy(policy) == policy

    def test_invalid_policy_rejected(self):
        with pytest.raises(InvalidConfigError, match="on_bad_point"):
            check_policy("ignore")


class TestScreenChunk:
    def test_clean_chunk_passes_untouched(self, rng):
        points = rng.normal(size=(10, 2))
        labels = tuple(range(10))
        screened = screen_chunk(points, labels, 2, "strict")
        assert screened.points is points
        assert screened.labels == labels
        assert screened.num_rejected == 0

    def test_strict_raises_on_nan(self, rng):
        points = chunk_with_nans(rng)
        with pytest.raises(InvalidPointError, match="NaN/Inf"):
            screen_chunk(points, tuple([-1] * 40), 2, "strict")

    def test_invalid_point_error_is_a_value_error(self, rng):
        # Backward compatibility: malformed input at this boundary was
        # historically a ValueError.
        points = chunk_with_nans(rng)
        with pytest.raises(ValueError):
            screen_chunk(points, tuple([-1] * 40), 2, "strict")

    def test_skip_drops_only_the_bad_rows(self, rng):
        points = chunk_with_nans(rng, bad_rows=(3, 17))
        labels = tuple(range(40))
        screened = screen_chunk(points, labels, 2, "skip")
        assert screened.points.shape == (38, 2)
        assert np.isfinite(screened.points).all()
        assert screened.num_rejected == 2
        assert {r.row for r in screened.rejected} == {3, 17}
        assert all(r.reason == "non_finite" for r in screened.rejected)
        # Labels stay aligned with the surviving rows.
        assert 3 not in screened.labels and 17 not in screened.labels
        assert len(screened.labels) == 38

    def test_dimension_mismatch_damns_the_whole_chunk(self, rng):
        points = rng.normal(size=(10, 3))
        with pytest.raises(InvalidPointError, match=r"\(m, 2\)"):
            screen_chunk(points, tuple([-1] * 10), 2, "strict")
        screened = screen_chunk(points, tuple([-1] * 10), 2, "skip")
        assert screened.points.shape == (0, 2)
        assert screened.num_rejected == 10
        assert all(
            r.reason == "dimension_mismatch" for r in screened.rejected
        )


class TestSlidingWindowPolicies:
    def make_stream(self, policy, obs=None, audit_every=0):
        return SlidingWindowSummarizer(
            dim=2,
            window_size=400,
            points_per_bubble=20,
            seed=9,
            obs=obs,
            on_bad_point=policy,
            audit_every=audit_every,
        )

    def test_invalid_policy_rejected_at_construction(self):
        with pytest.raises(InvalidConfigError):
            self.make_stream("ignore")

    def test_negative_audit_every_rejected(self):
        with pytest.raises(InvalidConfigError, match="audit_every"):
            self.make_stream("strict", audit_every=-1)

    def test_strict_raises_and_ingests_nothing(self, rng):
        stream = self.make_stream("strict")
        with pytest.raises(InvalidPointError):
            stream.append(chunk_with_nans(rng))
        assert stream.size == 0
        assert stream.rejected_points == 0

    def test_skip_drops_counts_and_continues(self, rng):
        stream = self.make_stream("skip")
        stream.append(chunk_with_nans(rng, m=60, bad_rows=(1, 2, 3)))
        assert stream.size == 57
        assert stream.rejected_points == 3
        assert stream.quarantined == ()  # skip does not retain
        # The stream keeps working normally afterwards.
        for _ in range(6):
            stream.append(rng.normal(size=(60, 2)))
        assert stream.is_ready()
        assert stream.audit().healthy

    def test_quarantine_retains_the_rejects(self, rng):
        stream = self.make_stream("quarantine")
        stream.append(chunk_with_nans(rng, m=60, bad_rows=(1, 2, 3)))
        assert stream.rejected_points == 3
        assert len(stream.quarantined) == 3
        assert {r.row for r in stream.quarantined} == {1, 2, 3}
        assert all(
            not np.isfinite(r.point).all() for r in stream.quarantined
        )

    def test_quarantine_is_capacity_bounded(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2,
            window_size=QUARANTINE_CAPACITY * 4,
            points_per_bubble=20,
            seed=9,
            on_bad_point="quarantine",
        )
        chunk = rng.normal(size=(700, 2))
        chunk[:, 0] = np.nan  # every row is bad
        stream.append(chunk)
        stream.append(chunk)
        assert stream.rejected_points == 1400
        assert len(stream.quarantined) == QUARANTINE_CAPACITY

    def test_rejections_are_counted_and_traced(self, rng):
        obs = Observability(tracer=EventTracer())
        stream = self.make_stream("skip", obs=obs)
        stream.append(chunk_with_nans(rng, m=60, bad_rows=(1, 2)))
        metric = obs.metrics.get(
            "repro_points_rejected_total", labels={"reason": "non_finite"}
        )
        assert metric is not None and metric.value == 2
        events = obs.tracer.events("bad_points_rejected")
        assert len(events) == 1
        assert events[0].fields["count"] == 2
        assert events[0].fields["policy"] == "skip"
        assert events[0].fields["non_finite"] == 2


class TestPeriodicAudit:
    def test_audit_every_runs_and_records(self, rng):
        obs = Observability(tracer=EventTracer())
        stream = SlidingWindowSummarizer(
            dim=2,
            window_size=400,
            points_per_bubble=20,
            seed=9,
            obs=obs,
            audit_every=2,
        )
        for _ in range(8):
            stream.append(rng.normal(size=(60, 2)))
        # Audits only run once the maintainer exists; with 60-point
        # chunks and 2*20 bootstrap, chunks 2,4,6,8 qualify.
        assert obs.metrics.get("repro_audit_runs_total").value == 4
        assert stream.last_audit is not None
        assert stream.last_audit.healthy

    def test_periodic_audit_heals_injected_drift(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2,
            window_size=400,
            points_per_bubble=20,
            seed=9,
            audit_every=1,
        )
        for _ in range(4):
            stream.append(rng.normal(size=(60, 2)))
        victim = stream.summary.non_empty_ids()[0]
        stream.summary[victim].stats.insert(np.array([99.0, 99.0]))
        stream.append(rng.normal(size=(60, 2)))
        assert stream.last_audit is not None
        assert not stream.last_audit.ok  # it saw the drift...
        assert stream.last_audit.healthy  # ...and repaired it

    def test_audit_disabled_by_default(self, rng):
        obs = Observability(tracer=EventTracer())
        stream = SlidingWindowSummarizer(
            dim=2, window_size=400, points_per_bubble=20, seed=9, obs=obs
        )
        for _ in range(6):
            stream.append(rng.normal(size=(60, 2)))
        assert obs.metrics.get("repro_audit_runs_total") is None


class TestDurablePolicies:
    def test_rejected_rows_never_reach_the_wal(self, tmp_path, rng):
        stream = DurableSummarizer(
            tmp_path,
            dim=2,
            window_size=400,
            points_per_bubble=20,
            seed=9,
            fsync=False,
            checkpoint_every=100,
            on_bad_point="skip",
        )
        stream.append(chunk_with_nans(rng, m=60, bad_rows=(5, 6)))
        assert stream.rejected_points == 2
        records = stream.checkpoints.wal.replay()
        assert len(records) == 1
        logged = records[0].batch.insertions
        assert logged.shape == (58, 2)
        assert np.isfinite(logged).all()
        stream._manager.close()

        # Replay (crash recovery) sees only the clean history.
        recovered = DurableSummarizer.recover(tmp_path, fsync=False)
        assert recovered.size == 58
        assert recovered.rejected_points == 0  # nothing to re-reject
        recovered.close()

    def test_policy_round_trips_through_the_manifest(self, tmp_path, rng):
        stream = DurableSummarizer(
            tmp_path,
            dim=2,
            window_size=400,
            points_per_bubble=20,
            seed=9,
            fsync=False,
            on_bad_point="quarantine",
        )
        stream.append(rng.normal(size=(60, 2)))
        stream.close()

        recovered = DurableSummarizer.recover(tmp_path, fsync=False)
        assert recovered.on_bad_point == "quarantine"
        recovered.append(chunk_with_nans(rng, m=60, bad_rows=(0,)))
        assert recovered.rejected_points == 1
        assert len(recovered.quarantined) == 1
        recovered.close()

    def test_old_manifest_defaults_to_strict(self, tmp_path, rng):
        import json

        stream = DurableSummarizer(
            tmp_path,
            dim=2,
            window_size=400,
            points_per_bubble=20,
            seed=9,
            fsync=False,
            on_bad_point="skip",
        )
        stream.append(rng.normal(size=(60, 2)))
        stream.close()
        # Rewrite the manifest as an older version of the code would
        # have written it: no on_bad_point key at all.
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["on_bad_point"]
        manifest_path.write_text(json.dumps(manifest))

        recovered = DurableSummarizer.recover(tmp_path, fsync=False)
        assert recovered.on_bad_point == "strict"
        with pytest.raises(InvalidPointError):
            recovered.append(chunk_with_nans(rng, m=60, bad_rows=(0,)))
        recovered.close()

    def test_empty_after_screening_chunk_keeps_seq_contiguous(
        self, tmp_path, rng
    ):
        stream = DurableSummarizer(
            tmp_path,
            dim=2,
            window_size=400,
            points_per_bubble=20,
            seed=9,
            fsync=False,
            checkpoint_every=100,
            on_bad_point="skip",
        )
        stream.append(rng.normal(size=(60, 2)))
        all_bad = np.full((10, 2), np.nan)
        stream.append(all_bad)  # fully rejected: an empty batch
        stream.append(rng.normal(size=(60, 2)))
        assert stream.batches_applied == 3
        records = stream.checkpoints.wal.replay()
        assert [r.seq for r in records] == [0, 1, 2]
        assert records[1].batch.insertions.shape == (0, 2)
        stream._manager.close()

        recovered = DurableSummarizer.recover(tmp_path, fsync=False)
        assert recovered.batches_applied == 3
        assert recovered.size == 120
        recovered.close()

    def test_durable_audit_delegates(self, tmp_path, rng):
        stream = DurableSummarizer(
            tmp_path,
            dim=2,
            window_size=400,
            points_per_bubble=20,
            seed=9,
            fsync=False,
        )
        for _ in range(4):
            stream.append(rng.normal(size=(60, 2)))
        assert stream.audit().healthy
        stream.close()
