"""Unit tests for the Euclidean distance kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (
    cross_pairwise,
    euclidean,
    nearest_index,
    pairwise,
    point_to_points,
    squared_euclidean,
)


class TestEuclidean:
    def test_pythagorean_triple(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_identity(self):
        p = np.array([1.5, -2.5, 3.0])
        assert euclidean(p, p) == 0.0

    def test_symmetry(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([-4.0, 0.5, 2.0])
        assert euclidean(a, b) == euclidean(b, a)

    def test_one_dimensional(self):
        assert euclidean(np.array([2.0]), np.array([-3.0])) == 5.0

    def test_squared_matches_square_of_distance(self):
        a = np.array([1.0, 1.0])
        b = np.array([4.0, 5.0])
        assert squared_euclidean(a, b) == pytest.approx(euclidean(a, b) ** 2)


class TestPointToPoints:
    def test_matches_scalar_kernel(self):
        rng = np.random.default_rng(0)
        point = rng.normal(size=3)
        points = rng.normal(size=(20, 3))
        batch = point_to_points(point, points)
        expected = [euclidean(point, row) for row in points]
        assert batch == pytest.approx(expected)

    def test_empty_matrix(self):
        result = point_to_points(np.array([1.0, 2.0]), np.empty((0, 2)))
        assert result.shape == (0,)


class TestPairwise:
    def test_matches_scalar_kernel(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(10, 4))
        matrix = pairwise(points)
        for i in range(10):
            for j in range(10):
                assert matrix[i, j] == pytest.approx(
                    euclidean(points[i], points[j]), abs=1e-9
                )

    def test_zero_diagonal(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(8, 3)) * 1000.0
        assert (np.diag(pairwise(points)) == 0.0).all()

    def test_symmetric(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(15, 2))
        matrix = pairwise(points)
        assert matrix == pytest.approx(matrix.T)

    def test_no_negative_entries_for_near_duplicates(self):
        # Cancellation in x·x + y·y - 2·x·y can go slightly negative.
        base = np.full((5, 3), 1e8)
        base[1] += 1e-4
        matrix = pairwise(base)
        assert (matrix >= 0.0).all()


class TestCrossPairwise:
    def test_shape_and_values(self):
        rng = np.random.default_rng(4)
        left = rng.normal(size=(6, 3))
        right = rng.normal(size=(4, 3))
        matrix = cross_pairwise(left, right)
        assert matrix.shape == (6, 4)
        for i in range(6):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(
                    euclidean(left[i], right[j]), abs=1e-9
                )


class TestNearestIndex:
    def test_finds_closest(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0], [1.0, 1.0]])
        idx, dist = nearest_index(np.array([1.2, 1.1]), points)
        assert idx == 2
        assert dist == pytest.approx(euclidean(np.array([1.2, 1.1]), points[2]))

    def test_ties_return_first(self):
        points = np.array([[1.0, 0.0], [-1.0, 0.0]])
        idx, _ = nearest_index(np.array([0.0, 0.0]), points)
        assert idx == 0
