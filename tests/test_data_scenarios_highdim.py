"""Scenario behaviour across the paper's dimensionalities (2/5/10/20)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SCENARIO_KINDS, make_scenario
from repro.data.stream import apply_raw
from repro.database import PointStore

DIMS = (5, 10, 20)


@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("kind", SCENARIO_KINDS)
class TestScenariosAcrossDimensions:
    def test_initial_shape_and_labels(self, kind, dim):
        scenario = make_scenario(kind, dim=dim, initial_size=400, seed=0)
        points, labels = scenario.initial()
        assert points.shape == (400, dim)
        assert labels.shape == (400,)
        assert (labels >= -1).all()

    def test_three_batches_preserve_size(self, kind, dim):
        scenario = make_scenario(kind, dim=dim, initial_size=400, seed=1)
        store = PointStore(dim=dim)
        scenario.populate(store)
        for _ in range(3):
            batch = scenario.make_batch(store, 0.1)
            assert batch.insertions.shape[1] == dim
            apply_raw(store, batch)
        assert store.size == 400


@pytest.mark.parametrize("dim", DIMS)
class TestHighDimensionalSeparation:
    def test_clusters_remain_well_separated(self, dim):
        scenario = make_scenario("random", dim=dim, initial_size=600, seed=2)
        centers = [c.center for c in scenario.mixture.clusters]
        stds = [c.std for c in scenario.mixture.clusters]
        for i in range(len(centers)):
            for j in range(i + 1, len(centers)):
                gap = float(np.linalg.norm(centers[i] - centers[j]))
                assert gap >= 10.0 * max(stds[i], stds[j])

    def test_full_pipeline_in_high_dim(self, dim):
        """Construction + one batch + scoring works at every paper dim."""
        from repro import (
            BubbleBuilder,
            BubbleConfig,
            IncrementalMaintainer,
            MaintenanceConfig,
        )
        from repro.experiments import ExperimentConfig, score_summary

        scenario = make_scenario("complex", dim=dim, initial_size=1_200, seed=3)
        store = PointStore(dim=dim)
        scenario.populate(store)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=24, seed=3)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=3)
        )
        maintainer.apply_batch(scenario.make_batch(store, 0.1))
        config = ExperimentConfig(
            dim=dim, min_pts=20, min_cluster_size=0.05
        )
        fscore, compact = score_summary(bubbles, store, config)
        assert fscore > 0.75
        assert np.isfinite(compact)


class TestExamplesImportable:
    """Import smoke test: every example module parses and exposes main()."""

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "customer_segmentation",
            "fraud_monitoring",
            "high_dimensional_stream",
            "stream_window",
            "summary_methods",
        ],
    )
    def test_example_has_main(self, name):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).parent.parent / "examples" / f"{name}.py"
        )
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
