"""Unit tests for the synchronized merge/split operations (Figure 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BubbleBuilder, BubbleConfig, PointStore
from repro.core import SplitStrategy, merge_bubble, rebuild_pair, split_bubble
from repro.geometry import DistanceCounter


@pytest.fixture
def setup(rng):
    """A store with three blobs and a 6-bubble summary."""
    points = np.vstack(
        [
            rng.normal([0, 0], 0.3, size=(100, 2)),
            rng.normal([10, 0], 0.3, size=(100, 2)),
            rng.normal([0, 10], 0.3, size=(100, 2)),
        ]
    )
    store = PointStore(dim=2)
    store.insert(points)
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=6, seed=0)).build(store)
    return store, bubbles


class TestMerge:
    def test_donor_is_emptied(self, setup):
        store, bubbles = setup
        donor = bubbles.non_empty_ids()[0]
        counter = DistanceCounter()
        moved = merge_bubble(bubbles, store, donor, counter)
        assert bubbles[donor].is_empty()
        assert moved > 0
        assert bubbles.membership_invariant_ok(store.size)

    def test_points_go_to_nearest_other_bubble(self, setup):
        store, bubbles = setup
        donor = bubbles.non_empty_ids()[0]
        member_ids = bubbles[donor].member_ids()
        points = store.points_of(member_ids)
        # Assignment targets are judged at their pre-merge representatives
        # (absorbing the released points moves them afterwards).
        reps = bubbles.reps()
        counter = DistanceCounter()
        merge_bubble(bubbles, store, donor, counter)
        other = [b.bubble_id for b in bubbles if b.bubble_id != donor]
        for pid, point in zip(member_ids, points):
            dists = np.linalg.norm(reps[other] - point, axis=1)
            expected = other[int(np.argmin(dists))]
            assert store.owner(int(pid)) == expected

    def test_empty_donor_is_noop(self, setup):
        store, bubbles = setup
        empty_ids = [
            b.bubble_id for b in bubbles if b.is_empty()
        ]
        donor = empty_ids[0] if empty_ids else None
        if donor is None:
            donor_bubble = bubbles[bubbles.non_empty_ids()[0]]
            counter = DistanceCounter()
            merge_bubble(bubbles, store, donor_bubble.bubble_id, counter)
            donor = donor_bubble.bubble_id
        counter = DistanceCounter()
        assert merge_bubble(bubbles, store, donor, counter) == 0
        assert counter.computed == 0

    def test_counter_receives_cost(self, setup):
        store, bubbles = setup
        donor = bubbles.non_empty_ids()[0]
        counter = DistanceCounter()
        merge_bubble(bubbles, store, donor, counter)
        assert counter.computed > 0


class TestSplit:
    def test_requires_empty_donor(self, setup):
        store, bubbles = setup
        ids = bubbles.non_empty_ids()
        with pytest.raises(ValueError):
            split_bubble(
                bubbles, store, ids[0], ids[1],
                DistanceCounter(), np.random.default_rng(0),
            )

    def test_self_split_rejected(self, setup):
        store, bubbles = setup
        over = bubbles.non_empty_ids()[0]
        with pytest.raises(ValueError):
            split_bubble(
                bubbles, store, over, over,
                DistanceCounter(), np.random.default_rng(0),
            )

    def test_split_partitions_the_over_filled_bubble(self, setup):
        store, bubbles = setup
        counter = DistanceCounter()
        ids = sorted(
            bubbles.non_empty_ids(), key=lambda i: bubbles[i].n, reverse=True
        )
        over, donor = ids[0], ids[-1]
        before = bubbles[over].members
        merge_bubble(bubbles, store, donor, counter)
        absorbed = bubbles[over].members  # merge may have added points
        split_bubble(
            bubbles, store, over, donor, counter, np.random.default_rng(1)
        )
        after = bubbles[over].members | bubbles[donor].members
        assert after == absorbed
        assert not bubbles[over].members & bubbles[donor].members
        assert bubbles.membership_invariant_ok(store.size)
        assert len(before) > 0

    def test_split_assigns_to_closer_seed(self, setup):
        store, bubbles = setup
        counter = DistanceCounter()
        ids = sorted(
            bubbles.non_empty_ids(), key=lambda i: bubbles[i].n, reverse=True
        )
        over, donor = ids[0], ids[-1]
        merge_bubble(bubbles, store, donor, counter)
        split_bubble(
            bubbles, store, over, donor, counter, np.random.default_rng(2)
        )
        seed_over = bubbles[over].seed
        seed_donor = bubbles[donor].seed
        for pid in bubbles[donor].members:
            point = store.point(pid)
            assert np.linalg.norm(point - seed_donor) <= np.linalg.norm(
                point - seed_over
            ) + 1e-9

    def test_farthest_strategy_separates_two_blobs(self, rng):
        # One bubble containing two far-apart blobs must split cleanly.
        points = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(50, 2)),
                rng.normal([100, 0], 0.2, size=(50, 2)),
            ]
        )
        store = PointStore(dim=2)
        store.insert(points)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=2, seed=0)).build(
            store
        )
        # Force everything into bubble holding both blobs if not already.
        sizes = bubbles.counts()
        if sizes.min() > 0 and sizes.max() < 100:
            pytest.skip("builder already separated the blobs")
        over = int(np.argmax(sizes))
        donor = 1 - over
        counter = DistanceCounter()
        rebuild_pair(
            bubbles, store, over, donor, counter,
            np.random.default_rng(3), strategy=SplitStrategy.FARTHEST,
        )
        counts = bubbles.counts()
        assert counts.min() == 50 and counts.max() == 50
        reps = bubbles.reps()
        xs = sorted(float(r[0]) for r in reps)
        assert xs[0] == pytest.approx(0.0, abs=1.0)
        assert xs[1] == pytest.approx(100.0, abs=1.0)


class TestRebuildPair:
    def test_preserves_partition(self, setup):
        store, bubbles = setup
        ids = sorted(
            bubbles.non_empty_ids(), key=lambda i: bubbles[i].n, reverse=True
        )
        rebuild_pair(
            bubbles, store, ids[0], ids[-1],
            DistanceCounter(), np.random.default_rng(4),
        )
        assert bubbles.membership_invariant_ok(store.size)
        assert bubbles.total_points == store.size
