"""The crash matrix: kill a child at every declared failpoint, recover,
and prove the result identical to an uninterrupted run.

Each case spawns a subprocess that arms one fault via the
``REPRO_FAILPOINTS`` environment variable and streams deterministic
chunks into a :class:`DurableSummarizer`. The parent asserts the child
died with the canonical injected-crash exit code, runs a second child to
recover and finish the stream, then compares the final durable state
bit-for-bit against a golden uninterrupted run — and audits it.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro import DurableSummarizer
from repro.faults import CRASH_EXIT_CODE, known_failpoints

pytestmark = pytest.mark.slow

ROOT = pathlib.Path(__file__).resolve().parents[1]
TOTAL_CHUNKS = 14

# One crash directive per declared failpoint. ``after`` values are tuned
# so the crash lands mid-stream (checkpoints happen every 4 batches; the
# manifest is written exactly once, at creation).
CRASH_SPECS = {
    "wal.append.start": "crash@9",
    "wal.append.flushed": "crash@9",
    "wal.compact.rewritten": "crash@1",
    "wal.compact.replaced": "crash@1",
    "checkpoint.snapshot_written": "crash@1",
    "checkpoint.done": "crash@1",
    "manifest.tmp_written": "crash",
    "snapshot.tmp_written": "crash@1",
    "snapshot.replaced": "crash@1",
}

# Torn-write faults on every IO domain: persist half the bytes, fsync
# them (the power-cut signature), then die.
TORN_SPECS = {
    "io.wal.write": "torn:0.5:crash@9",
    "io.snapshot.write": "torn:0.5:crash@3",
    "io.manifest.write": "torn:0.5:crash",
}

# The child: create-or-recover a durable summarizer and stream
# deterministic chunks (chunk i is a pure function of i) to a total.
CHILD = """
import sys
import numpy as np
from repro import DurableSummarizer
from repro.faults import install_from_env
from repro.persistence import recovery_exists

wal_dir, total = sys.argv[1], int(sys.argv[2])
install_from_env()

def chunk(i):
    return np.random.default_rng(1000 + i).normal(size=(60, 2))

if recovery_exists(wal_dir):
    stream = DurableSummarizer.recover(wal_dir, fsync=False)
else:
    stream = DurableSummarizer(
        wal_dir, dim=2, window_size=400, points_per_bubble=20, seed=5,
        checkpoint_every=4, fsync=False)
for i in range(stream.batches_applied, total):
    stream.append(chunk(i))
stream.close()
"""


def run_child(wal_dir, total=TOTAL_CHUNKS, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    if faults is None:
        env.pop("REPRO_FAILPOINTS", None)
    else:
        env["REPRO_FAILPOINTS"] = faults
    return subprocess.run(
        [sys.executable, "-c", CHILD, str(wal_dir), str(total)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def final_summarizer(wal_dir):
    return DurableSummarizer.recover(wal_dir, fsync=False)


def assert_identical(a, b):
    """Bit-identical summaries, stores, retired sets and RNG states."""
    assert a.batches_applied == b.batches_applied
    assert len(a.summary) == len(b.summary)
    for bubble_a, bubble_b in zip(a.summary, b.summary):
        assert bubble_a.n == bubble_b.n
        assert np.array_equal(bubble_a.seed, bubble_b.seed)
        assert np.array_equal(
            np.asarray(bubble_a.stats.linear_sum),
            np.asarray(bubble_b.stats.linear_sum),
        )
        assert bubble_a.stats.square_sum == bubble_b.stats.square_sum
        assert bubble_a.members == bubble_b.members
    ids_a, ids_b = a.store.ids(), b.store.ids()
    assert np.array_equal(ids_a, ids_b)
    assert np.array_equal(
        a.store.points_of(ids_a), b.store.points_of(ids_b)
    )
    assert np.array_equal(
        a.store.owners_of(ids_a), b.store.owners_of(ids_b)
    )
    assert a.maintainer.retired_ids == b.maintainer.retired_ids
    assert a.maintainer.rng_state == b.maintainer.rng_state


@pytest.fixture(scope="module")
def golden_dir(tmp_path_factory):
    """The uninterrupted reference run, in its own subprocess."""
    wal_dir = tmp_path_factory.mktemp("golden") / "state"
    result = run_child(wal_dir)
    assert result.returncode == 0, result.stderr
    return wal_dir


def test_matrix_covers_every_declared_failpoint():
    # Importing repro (above) pulls in every fire site; a failpoint
    # declared anywhere must have a crash directive here, or the matrix
    # silently loses coverage. Service-boundary failpoints (shard.*,
    # fleet.*, dlq.*) belong to the fleet chaos matrix in
    # test_service_chaos_matrix.py, which carries its own guard.
    core = {
        name
        for name in known_failpoints()
        if not name.startswith(("shard.", "fleet.", "dlq."))
    }
    assert set(CRASH_SPECS) == core


@pytest.mark.parametrize("name", sorted(CRASH_SPECS))
def test_crash_at_failpoint_recovers_identically(
    name, golden_dir, tmp_path
):
    wal_dir = tmp_path / "state"
    crashed = run_child(wal_dir, faults=f"{name}={CRASH_SPECS[name]}")
    assert crashed.returncode == CRASH_EXIT_CODE, (
        f"fault at {name} did not fire: rc={crashed.returncode}, "
        f"stderr={crashed.stderr}"
    )

    resumed = run_child(wal_dir)
    assert resumed.returncode == 0, resumed.stderr

    golden = final_summarizer(golden_dir)
    recovered = final_summarizer(wal_dir)
    try:
        assert_identical(recovered, golden)
        report = recovered.audit()
        assert report.ok and report.healthy
    finally:
        golden._manager.close()
        recovered._manager.close()


@pytest.mark.parametrize("domain", sorted(TORN_SPECS))
def test_torn_write_recovers_identically(domain, golden_dir, tmp_path):
    wal_dir = tmp_path / "state"
    crashed = run_child(wal_dir, faults=f"{domain}={TORN_SPECS[domain]}")
    assert crashed.returncode == CRASH_EXIT_CODE, (
        f"torn fault at {domain} did not fire: rc={crashed.returncode}, "
        f"stderr={crashed.stderr}"
    )

    resumed = run_child(wal_dir)
    assert resumed.returncode == 0, resumed.stderr

    golden = final_summarizer(golden_dir)
    recovered = final_summarizer(wal_dir)
    try:
        assert_identical(recovered, golden)
        report = recovered.audit()
        assert report.ok and report.healthy
    finally:
        golden._manager.close()
        recovered._manager.close()


def test_double_crash_still_recovers(golden_dir, tmp_path):
    """Two consecutive crashes (a crash loop) must not compound damage."""
    wal_dir = tmp_path / "state"
    first = run_child(wal_dir, faults="wal.append.flushed=crash@5")
    assert first.returncode == CRASH_EXIT_CODE
    second = run_child(wal_dir, faults="io.wal.write=torn:0.5:crash@7")
    assert second.returncode == CRASH_EXIT_CODE

    resumed = run_child(wal_dir)
    assert resumed.returncode == 0, resumed.stderr

    golden = final_summarizer(golden_dir)
    recovered = final_summarizer(wal_dir)
    try:
        assert_identical(recovered, golden)
        assert recovered.audit().healthy
    finally:
        golden._manager.close()
        recovered._manager.close()
