"""Unit tests for the point-to-seed assigners (Section 3 / Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NaiveAssigner,
    TriangleInequalityAssigner,
    make_assigner,
)
from repro.geometry import DistanceCounter


@pytest.fixture
def seeds(rng) -> np.ndarray:
    return rng.normal(size=(25, 3)) * 10.0


class TestNaiveAssigner:
    def test_assign_finds_nearest(self, seeds, rng):
        assigner = NaiveAssigner(seeds)
        for _ in range(20):
            point = rng.normal(size=3) * 10.0
            expected = int(
                np.argmin(np.linalg.norm(seeds - point, axis=1))
            )
            assert assigner.assign(point) == expected

    def test_assign_counts_all_seeds(self, seeds):
        counter = DistanceCounter()
        assigner = NaiveAssigner(seeds, counter)
        assigner.assign(np.zeros(3))
        assert counter.computed == len(seeds)
        assert counter.pruned == 0

    def test_assign_many_matches_assign(self, seeds, rng):
        points = rng.normal(size=(50, 3)) * 10.0
        bulk = NaiveAssigner(seeds).assign_many(points)
        single = [NaiveAssigner(seeds).assign(p) for p in points]
        assert bulk.tolist() == single

    def test_assign_many_counting(self, seeds):
        counter = DistanceCounter()
        assigner = NaiveAssigner(seeds, counter)
        assigner.assign_many(np.zeros((10, 3)))
        assert counter.computed == 10 * len(seeds)

    def test_assign_many_empty(self, seeds):
        result = NaiveAssigner(seeds).assign_many(np.empty((0, 3)))
        assert result.shape == (0,)

    def test_rejects_empty_locations(self):
        with pytest.raises(ValueError):
            NaiveAssigner(np.empty((0, 2)))

    def test_assign_many_parity_duplicate_and_equidistant_seeds(self):
        # Norm-trick drift regression: with duplicate seeds and points
        # exactly equidistant between seeds, an expanded-norm batch path
        # can produce tiny negative squared distances or break argmin
        # tie-breaks. The batch kernel must pick the same (first) index
        # as the scalar path for every row.
        seeds = np.array(
            [
                [0.0, 0.0],
                [2.0, 0.0],
                [2.0, 0.0],  # duplicate of seed 1
                [0.0, 0.0],  # duplicate of seed 0
                [1.0, 3.0],
            ]
        )
        points = np.array(
            [
                [1.0, 0.0],  # equidistant between seeds 0/3 and 1/2
                [2.0, 0.0],  # exactly on the duplicated seed pair 1/2
                [0.0, 0.0],  # exactly on the duplicated seed pair 0/3
                [1.0, 1.5],  # equidistant between 0, 1 and their twins
            ]
        )
        assigner = NaiveAssigner(seeds)
        bulk = assigner.assign_many(points)
        for i, point in enumerate(points):
            assert bulk[i] == assigner.assign(point), f"row {i}"

    def test_assign_many_parity_far_from_origin(self):
        # The expanded norm trick loses the most precision when points sit
        # far from the origin with tiny separations; exact blockwise
        # distances must keep batch == scalar there too.
        offset = np.array([1e8, -1e8, 1e8])
        seeds = offset + np.array(
            [[0.0, 0.0, 0.0], [1e-3, 0.0, 0.0], [0.0, 1e-3, 0.0]]
        )
        rng = np.random.default_rng(7)
        points = offset + rng.normal(scale=1e-3, size=(64, 3))
        assigner = NaiveAssigner(seeds)
        bulk = assigner.assign_many(points)
        for i, point in enumerate(points):
            assert bulk[i] == assigner.assign(point), f"row {i}"


class TestAssignManyValidation:
    """assign_many must fail fast on malformed input, naming (m, d)."""

    @pytest.mark.parametrize("use_ti", [False, True])
    def test_rejects_1d_input(self, seeds, use_ti):
        assigner = make_assigner(seeds, use_triangle_inequality=use_ti)
        with pytest.raises(ValueError, match=r"\(m, 3\)"):
            assigner.assign_many(np.zeros(3))

    @pytest.mark.parametrize("use_ti", [False, True])
    def test_rejects_wrong_dim(self, seeds, use_ti):
        assigner = make_assigner(seeds, use_triangle_inequality=use_ti)
        with pytest.raises(ValueError, match=r"\(m, 3\)"):
            assigner.assign_many(np.zeros((5, 4)))

    @pytest.mark.parametrize("use_ti", [False, True])
    def test_rejects_3d_input(self, seeds, use_ti):
        assigner = make_assigner(seeds, use_triangle_inequality=use_ti)
        with pytest.raises(ValueError, match=r"\(m, 3\)"):
            assigner.assign_many(np.zeros((2, 2, 3)))

    def test_rejects_before_accounting(self, seeds):
        # A shape error must not leave partial accounting behind.
        counter = DistanceCounter()
        assigner = NaiveAssigner(seeds, counter)
        with pytest.raises(ValueError):
            assigner.assign_many(np.zeros((5, 4)))
        assert counter.computed == 0
        assert assigner.assign_computed == 0


class TestTriangleInequalityAssigner:
    def test_always_agrees_with_naive(self, seeds, rng):
        pruning = TriangleInequalityAssigner(
            seeds, rng=np.random.default_rng(0)
        )
        naive = NaiveAssigner(seeds)
        for _ in range(200):
            point = rng.normal(size=3) * 12.0
            assert pruning.assign(point) == naive.assign(point)

    def test_agreement_on_clustered_data(self, rng):
        # Clustered seeds are where pruning is most aggressive.
        seeds = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(10, 2)),
                rng.normal([50, 50], 0.2, size=(10, 2)),
            ]
        )
        pruning = TriangleInequalityAssigner(
            seeds, rng=np.random.default_rng(1)
        )
        naive = NaiveAssigner(seeds)
        points = np.vstack(
            [
                rng.normal([0, 0], 1.0, size=(100, 2)),
                rng.normal([50, 50], 1.0, size=(100, 2)),
            ]
        )
        assert pruning.assign_many(points).tolist() == naive.assign_many(
            points
        ).tolist()

    def test_accounting_is_complete(self, seeds):
        # computed + pruned must equal B for every assignment: every seed
        # is either probed or discharged by Lemma 1.
        counter = DistanceCounter()
        assigner = TriangleInequalityAssigner(
            seeds, counter, rng=np.random.default_rng(2)
        )
        base = counter.snapshot()
        assigner.assign(np.zeros(3))
        delta = counter.snapshot() - base
        assert delta.computed + delta.pruned == len(seeds)
        assert assigner.assign_computed + assigner.assign_pruned == len(seeds)

    def test_prunes_on_well_separated_seeds(self, rng):
        seeds = np.vstack(
            [
                rng.normal([0, 0], 0.1, size=(20, 2)),
                rng.normal([100, 100], 0.1, size=(20, 2)),
            ]
        )
        assigner = TriangleInequalityAssigner(
            seeds, rng=np.random.default_rng(3)
        )
        points = rng.normal([0, 0], 0.5, size=(100, 2))
        assigner.assign_many(points)
        # Points near the first blob should discharge the entire second
        # blob without distance computations most of the time.
        assert assigner.pruned_fraction > 0.3

    def test_setup_cost_recorded(self, seeds):
        counter = DistanceCounter()
        assigner = TriangleInequalityAssigner(seeds, counter)
        b = len(seeds)
        assert assigner.setup_computed == b * (b - 1) // 2
        assert counter.computed == assigner.setup_computed

    def test_setup_cost_can_be_excluded(self, seeds):
        counter = DistanceCounter()
        TriangleInequalityAssigner(seeds, counter, count_setup=False)
        assert counter.computed == 0

    def test_setup_contract_both_modes(self, seeds):
        # The contract: setup_computed always reports B·(B-1)/2 — the
        # matrix is always built — while count_setup only controls
        # whether that cost also lands in the shared counter.
        b = len(seeds)
        expected = b * (b - 1) // 2

        counted = DistanceCounter()
        a1 = TriangleInequalityAssigner(
            seeds, counted, rng=np.random.default_rng(4), count_setup=True
        )
        assert a1.setup_computed == expected
        assert counted.computed == expected
        assert counted.pruned == 0

        uncounted = DistanceCounter()
        a2 = TriangleInequalityAssigner(
            seeds, uncounted, rng=np.random.default_rng(4), count_setup=False
        )
        assert a2.setup_computed == expected  # attribute unaffected
        assert uncounted.computed == 0
        assert uncounted.pruned == 0

        # After assigning, the two counters differ by exactly the setup
        # cost (identical RNGs -> identical assignment accounting).
        points = np.random.default_rng(11).normal(size=(20, 3)) * 10.0
        a1.assign_many(points)
        a2.assign_many(points)
        assert counted.computed - uncounted.computed == expected
        assert counted.pruned == uncounted.pruned

    def test_single_seed(self):
        assigner = TriangleInequalityAssigner(np.zeros((1, 2)))
        assert assigner.assign(np.array([5.0, 5.0])) == 0

    def test_deterministic_given_rng(self, seeds):
        a = TriangleInequalityAssigner(seeds, rng=np.random.default_rng(9))
        b = TriangleInequalityAssigner(seeds, rng=np.random.default_rng(9))
        points = np.random.default_rng(10).normal(size=(30, 3))
        assert a.assign_many(points).tolist() == b.assign_many(points).tolist()


class TestMakeAssigner:
    def test_selects_pruning_by_default(self, seeds):
        assert isinstance(make_assigner(seeds), TriangleInequalityAssigner)

    def test_naive_when_disabled(self, seeds):
        assigner = make_assigner(seeds, use_triangle_inequality=False)
        assert isinstance(assigner, NaiveAssigner)

    def test_single_location_shortcircuits(self):
        assigner = make_assigner(np.zeros((1, 2)))
        assert isinstance(assigner, NaiveAssigner)

    def test_shared_counter_is_used(self, seeds):
        counter = DistanceCounter()
        assigner = make_assigner(seeds, counter=counter)
        assert assigner.counter is counter
