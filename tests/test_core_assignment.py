"""Unit tests for the point-to-seed assigners (Section 3 / Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NaiveAssigner,
    TriangleInequalityAssigner,
    make_assigner,
)
from repro.geometry import DistanceCounter


@pytest.fixture
def seeds(rng) -> np.ndarray:
    return rng.normal(size=(25, 3)) * 10.0


class TestNaiveAssigner:
    def test_assign_finds_nearest(self, seeds, rng):
        assigner = NaiveAssigner(seeds)
        for _ in range(20):
            point = rng.normal(size=3) * 10.0
            expected = int(
                np.argmin(np.linalg.norm(seeds - point, axis=1))
            )
            assert assigner.assign(point) == expected

    def test_assign_counts_all_seeds(self, seeds):
        counter = DistanceCounter()
        assigner = NaiveAssigner(seeds, counter)
        assigner.assign(np.zeros(3))
        assert counter.computed == len(seeds)
        assert counter.pruned == 0

    def test_assign_many_matches_assign(self, seeds, rng):
        points = rng.normal(size=(50, 3)) * 10.0
        bulk = NaiveAssigner(seeds).assign_many(points)
        single = [NaiveAssigner(seeds).assign(p) for p in points]
        assert bulk.tolist() == single

    def test_assign_many_counting(self, seeds):
        counter = DistanceCounter()
        assigner = NaiveAssigner(seeds, counter)
        assigner.assign_many(np.zeros((10, 3)))
        assert counter.computed == 10 * len(seeds)

    def test_assign_many_empty(self, seeds):
        result = NaiveAssigner(seeds).assign_many(np.empty((0, 3)))
        assert result.shape == (0,)

    def test_rejects_empty_locations(self):
        with pytest.raises(ValueError):
            NaiveAssigner(np.empty((0, 2)))


class TestTriangleInequalityAssigner:
    def test_always_agrees_with_naive(self, seeds, rng):
        pruning = TriangleInequalityAssigner(
            seeds, rng=np.random.default_rng(0)
        )
        naive = NaiveAssigner(seeds)
        for _ in range(200):
            point = rng.normal(size=3) * 12.0
            assert pruning.assign(point) == naive.assign(point)

    def test_agreement_on_clustered_data(self, rng):
        # Clustered seeds are where pruning is most aggressive.
        seeds = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(10, 2)),
                rng.normal([50, 50], 0.2, size=(10, 2)),
            ]
        )
        pruning = TriangleInequalityAssigner(
            seeds, rng=np.random.default_rng(1)
        )
        naive = NaiveAssigner(seeds)
        points = np.vstack(
            [
                rng.normal([0, 0], 1.0, size=(100, 2)),
                rng.normal([50, 50], 1.0, size=(100, 2)),
            ]
        )
        assert pruning.assign_many(points).tolist() == naive.assign_many(
            points
        ).tolist()

    def test_accounting_is_complete(self, seeds):
        # computed + pruned must equal B for every assignment: every seed
        # is either probed or discharged by Lemma 1.
        counter = DistanceCounter()
        assigner = TriangleInequalityAssigner(
            seeds, counter, rng=np.random.default_rng(2)
        )
        base = counter.snapshot()
        assigner.assign(np.zeros(3))
        delta = counter.snapshot() - base
        assert delta.computed + delta.pruned == len(seeds)
        assert assigner.assign_computed + assigner.assign_pruned == len(seeds)

    def test_prunes_on_well_separated_seeds(self, rng):
        seeds = np.vstack(
            [
                rng.normal([0, 0], 0.1, size=(20, 2)),
                rng.normal([100, 100], 0.1, size=(20, 2)),
            ]
        )
        assigner = TriangleInequalityAssigner(
            seeds, rng=np.random.default_rng(3)
        )
        points = rng.normal([0, 0], 0.5, size=(100, 2))
        assigner.assign_many(points)
        # Points near the first blob should discharge the entire second
        # blob without distance computations most of the time.
        assert assigner.pruned_fraction > 0.3

    def test_setup_cost_recorded(self, seeds):
        counter = DistanceCounter()
        assigner = TriangleInequalityAssigner(seeds, counter)
        b = len(seeds)
        assert assigner.setup_computed == b * (b - 1) // 2
        assert counter.computed == assigner.setup_computed

    def test_setup_cost_can_be_excluded(self, seeds):
        counter = DistanceCounter()
        TriangleInequalityAssigner(seeds, counter, count_setup=False)
        assert counter.computed == 0

    def test_single_seed(self):
        assigner = TriangleInequalityAssigner(np.zeros((1, 2)))
        assert assigner.assign(np.array([5.0, 5.0])) == 0

    def test_deterministic_given_rng(self, seeds):
        a = TriangleInequalityAssigner(seeds, rng=np.random.default_rng(9))
        b = TriangleInequalityAssigner(seeds, rng=np.random.default_rng(9))
        points = np.random.default_rng(10).normal(size=(30, 3))
        assert a.assign_many(points).tolist() == b.assign_many(points).tolist()


class TestMakeAssigner:
    def test_selects_pruning_by_default(self, seeds):
        assert isinstance(make_assigner(seeds), TriangleInequalityAssigner)

    def test_naive_when_disabled(self, seeds):
        assigner = make_assigner(seeds, use_triangle_inequality=False)
        assert isinstance(assigner, NaiveAssigner)

    def test_single_location_shortcircuits(self):
        assigner = make_assigner(np.zeros((1, 2)))
        assert isinstance(assigner, NaiveAssigner)

    def test_shared_counter_is_used(self, seeds):
        counter = DistanceCounter()
        assigner = make_assigner(seeds, counter=counter)
        assert assigner.counter is counter
