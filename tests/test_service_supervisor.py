"""Shard supervision: breakers, restart budget, backoff, retry boundary."""

from __future__ import annotations

import errno

import pytest

from repro.exceptions import InvalidConfigError, ServiceError
from repro.faults.retry import RetryPolicy
from repro.service import (
    CircuitBreaker,
    FleetConfig,
    FleetManager,
    PointEvent,
    ShardSupervisor,
    read_dead_letters,
)
from repro.service.deadletter import deadletter_path
from repro.streaming import DurableSummarizer

SYNC = dict(
    window_size=400,
    points_per_bubble=20,
    checkpoint_every=8,
    fsync=False,
    workers=0,
    queue_points=64,
    batch_points=4,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def ev(tenant: str, i: int) -> PointEvent:
    return PointEvent(tenant=tenant, point=(float(i), 0.5), label=i)


def boom(self, points, labels=None):
    raise RuntimeError("poisoned batch")


def assert_accounting(row: dict) -> None:
    """The exact identity every shard must satisfy at all times."""
    assert (
        row["applied_points"]
        + row["pending_points"]
        + row["shed_points"]
        + row["failed_points"]
        + row["dead_lettered_points"]
        == row["submitted_points"]
    ), row


class TestCircuitBreaker:
    def test_starts_closed_below_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert not breaker.blocks()

    def test_threshold_in_window_opens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=2, window_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.record_failure() == "open"
        assert breaker.blocks()

    def test_failures_outside_window_pruned(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=2, window_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(20.0)  # first failure ages out
        assert breaker.record_failure() == "closed"

    def test_cooldown_half_opens_then_quiet_window_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=1,
            window_seconds=10.0,
            cooldown_seconds=5.0,
            clock=clock,
        )
        breaker.record_failure()
        assert breaker.blocks()
        clock.advance(5.0)
        assert not breaker.blocks()
        assert breaker.state == "half_open"
        clock.advance(10.0)  # a full quiet window while half-open
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=1,
            window_seconds=100.0,
            cooldown_seconds=5.0,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.record_failure() == "open"
        assert breaker.blocks()  # fresh cooldown

    def test_bad_shapes_rejected(self):
        with pytest.raises(InvalidConfigError):
            CircuitBreaker(threshold=0)
        with pytest.raises(InvalidConfigError):
            CircuitBreaker(window_seconds=0.0)


class TestSupervisedRestart:
    def test_restart_heals_poisoned_tenant(self, tmp_path, monkeypatch):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            supervisor = ShardSupervisor(max_restarts=3)
            fleet.attach_supervisor(supervisor)
            # Materialize the shard, then poison only its summarizer
            # instance: the restarted replacement recovers healthy.
            assert fleet.submit(ev("t", 0))
            summarizer = fleet.shard("t").summarizer
            monkeypatch.setattr(
                summarizer, "append", boom.__get__(summarizer)
            )
            for i in range(1, 4):  # fourth point trips the flush
                fleet.submit(ev("t", i))
            # The supervisor already swapped in a recovered shard.
            assert fleet.shard("t").state == "running"
            for i in range(4, 8):
                assert fleet.submit(ev("t", i))
            rollup = fleet.rollup()
        row = rollup["tenants"]["t"]
        assert row["state"] == "running"
        assert row["dead_lettered_points"] == 4  # the poisoned batch
        assert_accounting(row)
        supervision = rollup["fleet"]["supervision"]
        assert supervision["restarts"] == 1
        assert supervision["tenants"]["t"]["breaker"] == "closed"
        letters = read_dead_letters(
            deadletter_path(tmp_path / "f" / "tenants" / "t")
        )
        assert len(letters) == 4
        assert {letter.reason for letter in letters} == {"append_failed"}
        # Post-restart batch was applied by the recovered summarizer.
        assert fleet.shard("t").summarizer.size == 4

    def test_restart_carries_queued_points(self, tmp_path, monkeypatch):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            assert fleet.submit(ev("t", 0))
            summarizer = fleet.shard("t").summarizer
            monkeypatch.setattr(
                summarizer, "append", boom.__get__(summarizer)
            )
            for i in range(1, 4):
                fleet.submit(ev("t", i))
            old = fleet.shard("t")
            assert old.state == "failed"
            # Simulate residue a threaded worker would have left queued.
            old.adopt_items(
                [((9.0, 9.0), 9, 0.0), ((8.0, 8.0), 8, 0.0)]
            )
            supervisor = ShardSupervisor(max_restarts=1)
            fleet.attach_supervisor(supervisor)
            assert supervisor.handle_failure("t")
            new = fleet.shard("t")
            assert new is not old
            assert new.pending == 2
        # Drain (via __exit__) flushed the carried-over residue.
        assert fleet.shard("t").summarizer.size == 2

    def test_restart_budget_is_bounded(self, tmp_path, monkeypatch):
        # Poison the *class*: every recovered summarizer re-fails too.
        monkeypatch.setattr(DurableSummarizer, "append", boom)
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            supervisor = ShardSupervisor(
                max_restarts=1, breaker_threshold=100
            )
            fleet.attach_supervisor(supervisor)
            for i in range(8):  # two poisoned batches
                fleet.submit(ev("t", i))
            assert fleet.shard("t").state == "failed"
            stats = supervisor.stats()
            assert stats["restarts"] == 1  # budget spent, second skipped
            rollup = fleet.rollup()
        assert_accounting(rollup["tenants"]["t"])

    def test_backoff_between_restarts_uses_policy_schedule(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(DurableSummarizer, "append", boom)
        sleeps: list[float] = []
        policy = RetryPolicy(
            attempts=1, base_delay=0.01, multiplier=2.0, sleep=sleeps.append
        )
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            supervisor = ShardSupervisor(
                max_restarts=3, policy=policy, breaker_threshold=100
            )
            fleet.attach_supervisor(supervisor)
            for i in range(12):  # three poisoned batches, three restarts
                fleet.submit(ev("t", i))
            assert supervisor.stats()["restarts"] == 3
        # First restart is immediate; the next two back off 10ms, 20ms.
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_unbound_supervisor_refuses(self):
        with pytest.raises(ServiceError, match="not attached"):
            ShardSupervisor().handle_failure("t")


class TestBreakerIntegration:
    def test_poisoned_tenant_degrades_to_durable_shed(
        self, tmp_path, monkeypatch
    ):
        healthy_append = DurableSummarizer.append
        monkeypatch.setattr(DurableSummarizer, "append", boom)
        clock = FakeClock()
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            supervisor = ShardSupervisor(
                max_restarts=10,
                breaker_threshold=2,
                breaker_window_seconds=1000.0,
                breaker_cooldown_seconds=10.0,
                clock=clock,
            )
            fleet.attach_supervisor(supervisor)
            for i in range(4):  # batch 1 fails -> restart (breaker: 1)
                fleet.submit(ev("t", i))
            for i in range(4, 8):  # batch 2 fails -> breaker opens
                fleet.submit(ev("t", i))
            assert fleet.shard("t").state == "failed"
            assert supervisor.breaker_blocks("t")
            # Open breaker: events are shed straight to the DLQ.
            assert not fleet.submit(ev("t", 100))
            assert fleet.shard("t").breaker_rejected_points == 1

            # Heal the root cause, wait out the cooldown: the half-open
            # probe restarts the shard and traffic flows again.
            monkeypatch.setattr(
                DurableSummarizer, "append", healthy_append
            )
            clock.advance(10.0)
            for i in range(4):
                assert fleet.submit(ev("t", i))
            assert fleet.shard("t").state == "running"
            assert fleet.shard("t").summarizer.size == 4
            clock.advance(1000.0)  # quiet window closes the breaker
            rollup = fleet.rollup()
        row = rollup["tenants"]["t"]
        assert_accounting(row)
        supervision = rollup["fleet"]["supervision"]
        assert supervision["tenants"]["t"]["breaker"] == "closed"
        assert supervision["restarts"] == 2  # initial + half-open probe
        letters = read_dead_letters(
            deadletter_path(tmp_path / "f" / "tenants" / "t")
        )
        reasons = sorted(letter.reason for letter in letters)
        assert reasons.count("append_failed") == 8
        assert reasons.count("breaker_open") == 1


class TestRetryBoundary:
    """Satellite: RetryPolicy semantics at the recovery service boundary."""

    def _failed_fleet(self, tmp_path, monkeypatch):
        fleet = FleetManager(tmp_path / "f", FleetConfig(**SYNC))
        fleet.submit(ev("t", 0))
        summarizer = fleet.shard("t").summarizer
        monkeypatch.setattr(
            summarizer, "append", boom.__get__(summarizer)
        )
        for i in range(1, 4):
            fleet.submit(ev("t", i))
        assert fleet.shard("t").state == "failed"
        return fleet

    def test_enospc_fails_fast(self, tmp_path, monkeypatch):
        fleet = self._failed_fleet(tmp_path, monkeypatch)
        calls = []

        def full_disk(path, **kwargs):
            calls.append(path)
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(DurableSummarizer, "recover", full_disk)
        sleeps: list[float] = []
        supervisor = ShardSupervisor(
            policy=RetryPolicy(attempts=3, sleep=sleeps.append)
        )
        fleet.attach_supervisor(supervisor)
        assert not supervisor.handle_failure("t")
        assert len(calls) == 1  # not retried
        assert sleeps == []  # and never slept
        assert fleet.shard("t").state == "failed"
        stats = supervisor.stats()
        assert stats["restart_failures"] == 1
        assert "No space left" in stats["tenants"]["t"]["last_error"]

    def test_eio_retried_with_backoff(self, tmp_path, monkeypatch):
        fleet = self._failed_fleet(tmp_path, monkeypatch)
        real_recover = DurableSummarizer.recover.__func__
        calls = []

        def flaky(path, **kwargs):
            calls.append(path)
            if len(calls) <= 2:
                raise OSError(errno.EIO, "Input/output error")
            return real_recover(DurableSummarizer, path, **kwargs)

        monkeypatch.setattr(DurableSummarizer, "recover", flaky)
        sleeps: list[float] = []
        supervisor = ShardSupervisor(
            policy=RetryPolicy(
                attempts=3,
                base_delay=0.001,
                multiplier=2.0,
                sleep=sleeps.append,
            )
        )
        fleet.attach_supervisor(supervisor)
        assert supervisor.handle_failure("t")
        assert len(calls) == 3  # two EIO hiccups, then success
        assert sleeps == [pytest.approx(0.001), pytest.approx(0.002)]
        assert fleet.shard("t").state == "running"
        fleet.drain()

    def test_injected_sleep_makes_runs_deterministic(
        self, tmp_path, monkeypatch
    ):
        traces: list[list[float]] = []
        for run in range(2):
            with monkeypatch.context() as patch:
                fleet = self._failed_fleet(tmp_path / str(run), patch)
                real_recover = DurableSummarizer.recover.__func__
                calls = []

                def flaky(path, **kwargs):
                    calls.append(path)
                    if len(calls) == 1:
                        raise OSError(errno.EAGAIN, "try again")
                    return real_recover(DurableSummarizer, path, **kwargs)

                patch.setattr(DurableSummarizer, "recover", flaky)
                sleeps: list[float] = []
                supervisor = ShardSupervisor(
                    policy=RetryPolicy(attempts=2, sleep=sleeps.append)
                )
                fleet.attach_supervisor(supervisor)
                assert supervisor.handle_failure("t")
                fleet.drain()
                traces.append(sleeps)
        assert traces[0] == traces[1] != []
