"""Soundness and construction tests for :class:`SeedIndex`.

The index's only correctness obligation is the *gate bound*: for every
query point, every seed outside the membership mask must sit at exact
Euclidean distance >= the row's gate radius. The assignment engine's
spatial collapse leans on that bound alone (membership is an
optimisation hint), so these tests check it brute-force against
:func:`numpy.linalg.norm` on adversarial seed layouts — duplicates,
degenerate extent, high dimension — for both backends.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.seed_index as seed_index_module
from repro.core import SeedIndex, default_candidate_count
from repro.core.seed_index import kdtree_available

BACKENDS = ["grid"] + (["kdtree"] if kdtree_available() else [])


def _workload(num_seeds, num_points, dim, seed=0, scale=10.0):
    rng = np.random.default_rng(seed)
    seeds = rng.uniform(0, scale, size=(num_seeds, dim))
    points = rng.uniform(-1, scale + 1, size=(num_points, dim))
    return seeds, points


def _check_gate_sound(index, seeds, points):
    """Every non-member seed is at true distance >= the row gate."""
    member, gate = index.candidates(points)
    assert member.shape == (points.shape[0], seeds.shape[0])
    assert gate.shape == (points.shape[0],)
    dists = np.linalg.norm(
        points[:, None, :] - seeds[None, :, :], axis=2
    )
    for row in range(points.shape[0]):
        non_members = dists[row][~member[row]]
        if non_members.size:
            assert non_members.min() >= gate[row]
        # At least k seeds are members (ties can admit more).
        assert member[row].sum() >= min(index.k, seeds.shape[0])
    return member, gate


class TestDefaultCandidateCount:
    def test_tiny_seed_counts_take_everything(self):
        assert default_candidate_count(1) == 1
        assert default_candidate_count(2) == 2

    def test_logarithmic_growth_with_floor(self):
        assert default_candidate_count(12) >= 4  # floor of 4
        k300 = default_candidate_count(300)
        k1000 = default_candidate_count(1000)
        assert 4 <= k300 <= k1000 <= 1000
        # O(log B): far below linear even at 1000 seeds.
        assert k1000 <= 2 * np.log2(1000) + 3

    def test_never_exceeds_seed_count(self):
        for num in (3, 4, 5, 10):
            assert default_candidate_count(num) <= num


class TestConstruction:
    def test_auto_prefers_kdtree_when_scipy_present(self):
        seeds, _ = _workload(20, 1, 2)
        index = SeedIndex(seeds)
        expected = "kdtree" if kdtree_available() else "grid"
        assert index.backend == expected
        assert index.num_seeds == 20
        assert index.dim == 2

    def test_auto_falls_back_to_grid_without_scipy(self, monkeypatch):
        monkeypatch.setattr(seed_index_module, "_cKDTree", None)
        seeds, _ = _workload(20, 1, 2)
        assert not kdtree_available()
        assert SeedIndex(seeds).backend == "grid"

    def test_kdtree_without_scipy_raises(self, monkeypatch):
        monkeypatch.setattr(seed_index_module, "_cKDTree", None)
        seeds, _ = _workload(20, 1, 2)
        with pytest.raises(RuntimeError, match="requires scipy"):
            SeedIndex(seeds, backend="kdtree")

    def test_unknown_backend_rejected(self):
        seeds, _ = _workload(20, 1, 2)
        with pytest.raises(ValueError, match="unknown SeedIndex backend"):
            SeedIndex(seeds, backend="ball-tree")

    def test_empty_or_misshapen_seeds_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SeedIndex(np.zeros((0, 2)))
        with pytest.raises(ValueError, match="non-empty"):
            SeedIndex(np.zeros(5))

    def test_bad_k_rejected(self):
        seeds, _ = _workload(20, 1, 2)
        with pytest.raises(ValueError, match="k must be >= 1"):
            SeedIndex(seeds, k=0)

    def test_k_clamped_to_seed_count(self):
        seeds, _ = _workload(5, 1, 2)
        assert SeedIndex(seeds, k=50).k == 5

    def test_seeds_copied_defensively(self):
        seeds, points = _workload(20, 10, 2)
        index = SeedIndex(seeds, backend="grid")
        before = index.candidates(points)
        seeds += 100.0  # mutating the caller's matrix changes nothing
        after = index.candidates(points)
        assert np.array_equal(before[0], after[0])
        assert np.array_equal(before[1], after[1])


class TestCandidateSoundness:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "num_seeds,num_points,dim,scale",
        [
            (30, 60, 2, 10.0),
            (100, 40, 3, 100.0),
            (50, 40, 1, 5.0),  # 1-d data
            (64, 30, 128, 10.0),  # high dimension
            (200, 50, 4, 0.5),  # dense overlap
        ],
    )
    def test_gate_bound_holds(self, backend, num_seeds, num_points, dim, scale):
        seeds, points = _workload(num_seeds, num_points, dim, scale=scale)
        index = SeedIndex(seeds, backend=backend)
        _check_gate_sound(index, seeds, points)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_seeds(self, backend):
        rng = np.random.default_rng(3)
        base = rng.uniform(0, 10, size=(10, 2))
        seeds = np.vstack([base, base, base])  # every seed three times
        points = rng.uniform(0, 10, size=(25, 2))
        index = SeedIndex(seeds, backend=backend, k=5)
        _check_gate_sound(index, seeds, points)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_k_geq_seed_count_disables_skipping(self, backend):
        seeds, points = _workload(6, 12, 2)
        index = SeedIndex(seeds, backend=backend, k=6)
        member, gate = index.candidates(points)
        assert member.all()
        assert (gate == 0.0).all()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_query_block(self, backend):
        seeds, _ = _workload(20, 0, 3)
        index = SeedIndex(seeds, backend=backend)
        member, gate = index.candidates(np.zeros((0, 3)))
        assert member.shape == (0, 20)
        assert gate.shape == (0,)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_k_equals_one(self, backend):
        seeds, points = _workload(40, 30, 2)
        index = SeedIndex(seeds, backend=backend, k=1)
        _check_gate_sound(index, seeds, points)

    def test_degenerate_extent_grid(self):
        # All seeds identical: the grid has no geometry and must fall
        # back to the everything-is-a-member answer.
        seeds = np.ones((8, 3)) * 2.5
        points = np.random.default_rng(0).normal(size=(10, 3))
        index = SeedIndex(seeds, backend="grid", k=2)
        member, gate = index.candidates(points)
        assert member.all()
        assert (gate == 0.0).all()

    def test_grid_points_far_outside_seed_box(self):
        # The halo clamp must keep the bound valid for distant queries.
        seeds = np.random.default_rng(1).uniform(0, 1, size=(50, 2))
        points = np.array(
            [[1e6, 1e6], [-1e6, 0.5], [0.5, -1e6], [1e6, -1e6]]
        )
        index = SeedIndex(seeds, backend="grid")
        _check_gate_sound(index, seeds, points)

    def test_dim_mismatch_rejected(self):
        seeds, _ = _workload(20, 1, 3)
        index = SeedIndex(seeds, backend="grid")
        with pytest.raises(ValueError, match=r"\(m, 3\)"):
            index.candidates(np.zeros((4, 2)))

    def test_queries_counter(self):
        seeds, points = _workload(20, 15, 2)
        index = SeedIndex(seeds, backend="grid")
        assert index.queries == 0
        index.candidates(points)
        index.candidates(points[:5])
        assert index.queries == 20
