"""Shard queueing, backpressure policies, micro-batching, failure."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.exceptions import InvalidConfigError, ServiceError
from repro.observability import render_text
from repro.service import Shard, histogram_quantile
from repro.streaming import DurableSummarizer


def make_shard(tmp_path, **kwargs):
    summarizer = DurableSummarizer(
        tmp_path / "shard", dim=2, window_size=500,
        points_per_bubble=20, seed=0, fsync=False,
    )
    return Shard("t0", summarizer, **kwargs)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_points": 0},
            {"batch_points": 0},
            {"queue_points": 8, "batch_points": 9},
            {"backpressure": "drop"},
        ],
    )
    def test_bad_config_rejected(self, tmp_path, kwargs):
        with pytest.raises(InvalidConfigError):
            make_shard(tmp_path, **kwargs)


class TestFlush:
    def test_micro_batching(self, tmp_path):
        shard = make_shard(tmp_path, queue_points=64, batch_points=16)
        for i in range(40):
            assert shard.submit((float(i), 0.0), label=i)
        assert shard.pending == 40
        assert shard.flush_once() == 16
        assert shard.flush_once() == 16
        assert shard.flush_once() == 8
        assert shard.flush_once() == 0
        assert shard.applied_points == 40
        assert shard.applied_batches == 3
        assert shard.summarizer.size == 40
        shard.close()

    def test_flush_preserves_order_and_labels(self, tmp_path):
        shard = make_shard(tmp_path, queue_points=64, batch_points=64)
        for i in range(10):
            shard.submit((float(i), float(-i)), label=i)
        shard.drain_flush()
        _, _, labels = shard.summarizer.store.snapshot()
        assert sorted(labels.tolist()) == list(range(10))
        shard.close()

    def test_stats_row(self, tmp_path):
        shard = make_shard(tmp_path)
        shard.submit((1.0, 2.0))
        shard.flush_once()
        row = shard.stats()
        assert row["state"] == "running"
        assert row["applied_points"] == 1
        assert row["pending_points"] == 0
        assert row["batches_durable"] == 1
        assert row["error"] is None
        assert row["ingest_p95_seconds"] is not None
        shard.close()
        assert shard.stats()["state"] == "stopped"


class TestBackpressure:
    def test_shed_drops_and_counts(self, tmp_path):
        shard = make_shard(
            tmp_path, queue_points=4, batch_points=4, backpressure="shed"
        )
        accepted = sum(shard.submit((float(i), 0.0)) for i in range(10))
        assert accepted == 4
        assert shard.shed_points == 6
        assert shard.pending == 4
        shard.drain_flush()
        assert shard.summarizer.size == 4  # shed points never durable
        shard.close()

    def test_block_waits_for_flusher(self, tmp_path):
        shard = make_shard(tmp_path, queue_points=4, batch_points=4)
        for i in range(4):
            shard.submit((float(i), 0.0))

        def flusher():
            time.sleep(0.05)
            while shard.pending:
                shard.flush_once()

        thread = threading.Thread(target=flusher)
        thread.start()
        assert shard.submit((9.0, 9.0))  # must wait for the flusher
        thread.join()
        assert shard.blocked_submissions == 1
        assert shard.blocked_seconds > 0
        shard.drain_flush()
        assert shard.summarizer.size == 5
        shard.close()

    def test_blocked_submitter_released_by_drain(self, tmp_path):
        shard = make_shard(tmp_path, queue_points=2, batch_points=2)
        shard.submit((0.0, 0.0))
        shard.submit((1.0, 1.0))
        errors = []

        def submitter():
            try:
                shard.submit((2.0, 2.0))
            except ServiceError as exc:
                errors.append(exc)

        thread = threading.Thread(target=submitter)
        thread.start()
        time.sleep(0.05)
        shard.begin_drain()
        thread.join(timeout=2.0)
        assert not thread.is_alive(), "drain left a submitter blocked"
        assert len(errors) == 1
        shard.drain_flush()
        shard.close()


class TestFailure:
    def test_append_failure_poisons_shard(self, tmp_path, monkeypatch):
        shard = make_shard(tmp_path)
        shard.submit((1.0, 1.0))

        def boom(points, labels=None):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(shard.summarizer, "append", boom)
        with pytest.raises(ServiceError, match="disk on fire"):
            shard.flush_once()
        assert shard.state == "failed"
        assert shard.error is not None
        assert shard.pending == 0
        with pytest.raises(ServiceError, match="failed"):
            shard.submit((2.0, 2.0))
        # close() after failure is a no-op (already released handles)
        shard.close()
        assert shard.state == "failed"


class TestDrainClose:
    def test_drain_then_close_is_idempotent(self, tmp_path):
        shard = make_shard(tmp_path)
        shard.submit((1.0, 2.0))
        shard.begin_drain()
        with pytest.raises(ServiceError, match="draining"):
            shard.submit((3.0, 4.0))
        assert shard.drain_flush() == 1
        shard.close()
        shard.close()
        assert shard.state == "stopped"
        assert shard.flush_once() == 0

    def test_close_flushes_partial_timeseries_window(self, tmp_path):
        """A window mid-fill at close must be flushed, not dropped:
        every applied batch shows up in exactly one retained window."""
        from repro.observability import Observability, TimeseriesRecorder

        obs = Observability(timeseries=TimeseriesRecorder(interval=4))
        summarizer = DurableSummarizer(
            tmp_path / "shard", dim=2, window_size=500,
            points_per_bubble=20, seed=0, fsync=False, obs=obs,
        )
        shard = Shard("t0", summarizer, queue_points=64, batch_points=8)
        for i in range(48):  # 6 batches: one full window + 2 leftover
            shard.submit((float(i % 5), 0.5), label=i)
        shard.drain_flush()
        shard.close()
        recorder = obs.timeseries
        assert len(recorder) == 2
        assert recorder.samples[-1].end_batch == 6

    def test_close_closes_trace_sink(self, tmp_path):
        from repro.observability import (
            EventTracer,
            Observability,
            SpanTracer,
        )

        sink = tmp_path / "trace.jsonl"
        obs = Observability(tracer=EventTracer(sink=sink), spans=SpanTracer())
        summarizer = DurableSummarizer(
            tmp_path / "shard", dim=2, window_size=500,
            points_per_bubble=20, seed=0, fsync=False, obs=obs,
        )
        shard = Shard(
            "t0", summarizer, queue_points=64, batch_points=8, obs=obs
        )
        for i in range(16):
            shard.submit((float(i % 5), 0.5), label=i)
        shard.drain_flush()
        shard.close()
        assert obs.tracer._sink is None  # sink closed and released
        assert sink.exists() and sink.stat().st_size > 0


class TestHistogramQuantile:
    def test_bound_granular(self, tmp_path):
        shard = make_shard(tmp_path)
        histogram = shard._h_batch  # buckets 1, 2, 4, ...
        for _ in range(95):
            histogram.observe(1)
        for _ in range(5):
            histogram.observe(3)
        assert histogram_quantile(histogram, 0.95) == 1.0
        assert histogram_quantile(histogram, 0.99) == 4.0
        shard.close(checkpoint=False)

    def test_empty_histogram(self, tmp_path):
        shard = make_shard(tmp_path)
        assert histogram_quantile(shard._h_ingest, 0.95) is None
        assert shard.ingest_p95_seconds() is None
        shard.close(checkpoint=False)

    def test_overflow_bucket(self, tmp_path):
        shard = make_shard(tmp_path)
        shard._h_batch.observe(10_000)  # beyond the top bound
        assert histogram_quantile(shard._h_batch, 0.95) is None
        shard.close(checkpoint=False)


def test_metrics_registered_per_shard(tmp_path):
    shard = make_shard(tmp_path)
    shard.submit((1.0, 1.0))
    shard.flush_once()
    rendered = render_text(shard.obs.metrics.snapshot())
    assert "repro_service_enqueued_points_total" in rendered
    assert "repro_service_applied_points_total" in rendered
    assert "repro_service_ingest_seconds" in rendered
    assert shard._m_enqueued.value == 1
    assert shard._m_applied.value == 1
    shard.close()


def test_isolated_observability(tmp_path):
    a = make_shard(tmp_path / "a")
    b = make_shard(tmp_path / "b")
    a.submit((1.0, 1.0))
    a.flush_once()
    assert b.obs.metrics is not a.obs.metrics
    assert b._m_applied.value == 0
    assert a._m_applied.value == 1
    a.close()
    b.close(checkpoint=False)


def test_batch_matrix_dtype(tmp_path):
    # integers submitted as labels/coords still form a float64 batch
    shard = make_shard(tmp_path, batch_points=4)
    shard.submit((1, 2), label=np.int64(3))
    shard.flush_once()
    assert shard.summarizer.size == 1
    shard.close()


class TestClusterNow:
    def fill(self, shard, points=900, seed=0):
        rng = np.random.default_rng(seed)
        pts = np.concatenate(
            [
                rng.normal((0.0, 0.0), 0.7, size=(points // 2, 2)),
                rng.normal((6.0, 6.0), 0.7, size=(points - points // 2, 2)),
            ]
        )
        for p in pts:
            shard.submit((float(p[0]), float(p[1])))
            if shard.pending >= 200:
                shard.drain_flush()
        shard.drain_flush()

    def test_requires_bootstrap(self, tmp_path):
        from repro.exceptions import NotFittedError

        shard = make_shard(tmp_path)
        with pytest.raises(NotFittedError):
            shard.cluster_now()
        shard.close(checkpoint=False)

    def test_cold_hit_repair_progression(self, tmp_path):
        shard = make_shard(tmp_path)
        self.fill(shard)
        fit = shard.cluster_now(min_pts=10)
        assert fit.source == "cold"
        assert fit.quality == 1.0
        assert fit.num_bubbles > 0
        assert shard.cluster_now().source == "hit"
        for i in range(30):
            shard.submit((float(i % 3) * 0.1, 0.0))
        shard.drain_flush()
        fit3 = shard.cluster_now(deadline_seconds=5.0)
        assert fit3.source in ("repair", "rebuild", "anytime")
        assert fit3.quality == 1.0
        shard.close()

    def test_stats_include_clustering_rollup(self, tmp_path):
        shard = make_shard(tmp_path)
        assert shard.stats()["clustering"] is None
        self.fill(shard)
        shard.cluster_now(min_pts=10)
        row = shard.stats()["clustering"]
        assert row["fits"] == 1
        assert row["last_source"] == "cold"
        assert row["last_leaves"] >= 1
        shard.close()

    def test_cluster_metrics_land_in_shard_registry(self, tmp_path):
        shard = make_shard(tmp_path)
        self.fill(shard)
        shard.cluster_now(min_pts=10)
        shard.cluster_now(min_pts=10)
        snap = shard.obs.metrics.snapshot()
        assert snap.value("repro_cluster_fits_total") == 2
        assert snap.value("repro_cluster_cache_hits_total") == 1
        shard.close()
