"""Oracle test: OPTICS against an independent brute-force implementation.

The production engine uses a lazy-deletion heap and vectorised updates;
this reference implementation follows the textbook pseudocode with an
O(n²) linear scan per step and no shared code. Exact agreement of the
orderings and reachability values (up to tie-breaking, controlled by the
test data) is strong evidence against heap-management bugs — the class of
defect most likely to slip through behavioural tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import PointOptics


def reference_optics(
    points: np.ndarray, min_pts: int, eps: float = np.inf
) -> tuple[list[int], list[float]]:
    """Textbook OPTICS: linear-scan seed list, no heap, no vectorisation."""
    num = len(points)

    def dist(i: int, j: int) -> float:
        return float(np.linalg.norm(points[i] - points[j]))

    def core_distance(i: int) -> float:
        dists = sorted(dist(i, j) for j in range(num))
        within = [d for d in dists if d <= eps]
        if len(within) < min_pts:
            return np.inf
        return within[min_pts - 1]

    processed = [False] * num
    reachability = [np.inf] * num
    ordering: list[int] = []
    order_reach: list[float] = []
    push_counter = 0

    def update_seeds(center: int, seeds: dict[int, tuple[float, int]]) -> None:
        # Reachability ties are COMMON (any neighbour within the center's
        # core distance gets reachability == that core distance), so the
        # reference replicates the engine's tie-break exactly: among equal
        # reachabilities, the earliest successful improvement push wins
        # (ascending object index within one expansion).
        nonlocal push_counter
        core = core_distance(center)
        if not np.isfinite(core):
            return
        for other in range(num):
            if processed[other]:
                continue
            d = dist(center, other)
            if d > eps:
                continue
            new_reach = max(core, d)
            if new_reach < reachability[other]:
                reachability[other] = new_reach
                push_counter += 1
                seeds[other] = (new_reach, push_counter)

    for start in range(num):
        if processed[start]:
            continue
        processed[start] = True
        ordering.append(start)
        order_reach.append(np.inf)
        seeds: dict[int, tuple[float, int]] = {}
        update_seeds(start, seeds)
        while seeds:
            nxt = min(seeds, key=lambda k: seeds[k])
            seeds.pop(nxt)
            processed[nxt] = True
            ordering.append(nxt)
            order_reach.append(reachability[nxt])
            update_seeds(nxt, seeds)
    return ordering, order_reach


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("min_pts", [2, 4, 7])
def test_engine_matches_reference(seed, min_pts):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(40, 2)) * 7.0
    plot = PointOptics(min_pts=min_pts).fit(points)
    ref_order, ref_reach = reference_optics(points, min_pts)
    assert plot.ordering.tolist() == ref_order
    finite_ours = np.asarray(plot.reachability)
    finite_ref = np.asarray(ref_reach)
    both_finite = np.isfinite(finite_ours) & np.isfinite(finite_ref)
    assert (np.isfinite(finite_ours) == np.isfinite(finite_ref)).all()
    assert finite_ours[both_finite] == pytest.approx(
        finite_ref[both_finite], rel=1e-9
    )


def test_engine_matches_reference_with_finite_eps():
    rng = np.random.default_rng(9)
    points = np.vstack(
        [
            rng.normal([0, 0], 0.5, size=(20, 2)),
            rng.normal([30, 0], 0.5, size=(20, 2)),
        ]
    )
    plot = PointOptics(min_pts=3, eps=2.0).fit(points)
    ref_order, ref_reach = reference_optics(points, 3, eps=2.0)
    assert plot.ordering.tolist() == ref_order
    ours = np.asarray(plot.reachability)
    ref = np.asarray(ref_reach)
    assert (np.isfinite(ours) == np.isfinite(ref)).all()
    mask = np.isfinite(ours)
    assert ours[mask] == pytest.approx(ref[mask], rel=1e-9)
