"""The incremental clustering subsystem: cache, repair, anytime, lineage.

The load-bearing claim under test is *exact equivalence*: every cache
outcome — hit, repair, rebuild — must produce state bitwise equal to a
cold fit of the current bubbles (ordering, reachability bars, core
distances, the distance matrix, and the full push trace). The repair
path replays verified prefixes of the previous walk, so any tie broken
differently from the classical loop shows up here as a hard failure.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering.bubble_optics import BubbleOptics
from repro.clustering.engine import OpticsWalk
from repro.clustering.incremental import (
    ClusterCache,
    ClusterLineage,
    IncrementalClusterer,
)
from repro.core.builder import BubbleBuilder, BubbleConfig
from repro.database.store import PointStore
from repro.geometry.counting import DistanceCounter


def build_bubbles(
    num_bubbles: int,
    dim: int,
    points: int,
    seed: int = 3,
    data_seed: int = 42,
):
    rng = np.random.default_rng(data_seed)
    third = points // 3
    pts = np.concatenate(
        [
            rng.normal(np.zeros(dim), 1.0, size=(third, dim)),
            rng.normal(np.full(dim, 6.0), 0.8, size=(third, dim)),
            rng.normal(
                np.concatenate(([-5.0], np.zeros(dim - 1))),
                1.2,
                size=(points - 2 * third, dim),
            ),
        ]
    )
    store = PointStore(dim=dim)
    store.insert(pts, labels=[0] * len(pts))
    return BubbleBuilder(
        BubbleConfig(num_bubbles=num_bubbles, seed=seed)
    ).build(store)


def assert_states_equal(state, fresh_state):
    """Bitwise equality of everything a cold fit derives."""
    assert np.array_equal(state.plot.ordering, fresh_state.plot.ordering)
    assert np.array_equal(
        state.plot.reachability, fresh_state.plot.reachability
    )
    assert np.array_equal(
        state.plot.core_distances, fresh_state.plot.core_distances
    )
    assert np.array_equal(state.cores, fresh_state.cores)
    assert np.array_equal(state.dist, fresh_state.dist)
    assert len(state.trace) == len(fresh_state.trace)
    for (t_a, v_a), (t_b, v_b) in zip(state.trace, fresh_state.trace):
        assert np.array_equal(t_a, t_b)
        assert np.array_equal(v_a, v_b)


def apply_move(bubbles, bid: int, move: int, rng, next_pid: list[int]):
    """One mutation: absorb near, release, or absorb far (a drifter)."""
    b = bubbles[int(bid)]
    dim = b.rep.shape[0]
    if move == 0 or b.n <= 2:
        b.absorb(next_pid[0], b.rep + rng.normal(0, 0.3, size=dim))
        next_pid[0] += 1
    elif move == 1:
        victim = next(iter(b.members))
        b.release(victim, b.rep + rng.normal(0, 0.2, size=dim))
    else:
        b.absorb(next_pid[0], b.rep + rng.normal(0, 1.8, size=dim))
        next_pid[0] += 1


MIN_PTS = 12


class TestCacheSources:
    def test_cold_then_hit_is_same_object(self):
        bubbles = build_bubbles(24, 3, 900)
        cache = ClusterCache(min_pts=MIN_PTS)
        state, src = cache.refresh(bubbles)
        assert src == "cold"
        state2, src2 = cache.refresh(bubbles)
        assert src2 == "hit"
        assert state2 is state
        assert cache.hits == 1 and cache.cold_fits == 1

    def test_cold_matches_bubble_optics_reference(self):
        bubbles = build_bubbles(24, 3, 900)
        state, _ = ClusterCache(min_pts=MIN_PTS).refresh(bubbles)
        ref = BubbleOptics(min_pts=MIN_PTS).fit(bubbles)
        assert np.array_equal(state.plot.ordering, ref.plot.ordering)
        assert np.array_equal(
            state.plot.reachability, ref.plot.reachability
        )
        assert np.array_equal(
            state.plot.core_distances, ref.plot.core_distances
        )

    def test_hit_computes_zero_distances(self):
        bubbles = build_bubbles(24, 3, 900)
        counter = DistanceCounter()
        cache = ClusterCache(min_pts=MIN_PTS, counter=counter)
        cache.refresh(bubbles)
        before = counter.snapshot().computed
        cache.refresh(bubbles)
        assert counter.snapshot().computed == before

    def test_repair_computes_fewer_distances_than_cold(self):
        bubbles = build_bubbles(40, 3, 1500)
        counter = DistanceCounter()
        cache = ClusterCache(min_pts=MIN_PTS, counter=counter)
        cache.refresh(bubbles)
        cold_cost = counter.snapshot().computed
        rng = np.random.default_rng(0)
        next_pid = [10_000_000]
        apply_move(bubbles, 5, 0, rng, next_pid)
        before = counter.snapshot().computed
        _, src = cache.refresh(bubbles)
        assert src == "repair"
        repair_cost = counter.snapshot().computed - before
        assert 0 < repair_cost < cold_cost

    def test_invalidate_forces_cold(self):
        bubbles = build_bubbles(24, 3, 900)
        cache = ClusterCache(min_pts=MIN_PTS)
        cache.refresh(bubbles)
        cache.invalidate()
        _, src = cache.refresh(bubbles)
        assert src == "cold"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ClusterCache(min_pts=0)
        with pytest.raises(ValueError):
            ClusterCache(eps=0.0)
        with pytest.raises(ValueError):
            IncrementalClusterer(min_size=0)


class TestRepairEquivalence:
    """repair/rebuild ≡ cold, bitwise, across mutation schedules."""

    def run_schedule(self, bubbles, schedule, rng):
        cache = ClusterCache(min_pts=MIN_PTS)
        cache.refresh(bubbles)
        next_pid = [10_000_000]
        for moves in schedule:
            for bid, move in moves:
                apply_move(bubbles, bid % len(bubbles), move, rng, next_pid)
            state, src = cache.refresh(bubbles)
            fresh_state, _ = ClusterCache(min_pts=MIN_PTS).refresh(bubbles)
            assert_states_equal(state, fresh_state)
        return cache

    def test_absorb_only_schedule(self):
        bubbles = build_bubbles(32, 3, 1200)
        rng = np.random.default_rng(1)
        schedule = [[(i, 0) for i in rng.integers(0, 32, size=3)]
                    for _ in range(6)]
        cache = self.run_schedule(bubbles, schedule, rng)
        assert cache.repairs == len(schedule)

    def test_release_only_schedule(self):
        bubbles = build_bubbles(32, 3, 1200)
        rng = np.random.default_rng(2)
        schedule = [[(i, 1) for i in rng.integers(0, 32, size=3)]
                    for _ in range(6)]
        self.run_schedule(bubbles, schedule, rng)

    def test_mixed_schedule_with_drifters(self):
        bubbles = build_bubbles(32, 3, 1200)
        rng = np.random.default_rng(3)
        schedule = [
            [
                (int(i), int(m))
                for i, m in zip(
                    rng.integers(0, 32, size=4), rng.integers(0, 3, size=4)
                )
            ]
            for _ in range(8)
        ]
        self.run_schedule(bubbles, schedule, rng)

    def test_repair_replays_most_of_the_ordering(self):
        bubbles = build_bubbles(40, 3, 1500)
        cache = ClusterCache(min_pts=MIN_PTS)
        cache.refresh(bubbles)
        rng = np.random.default_rng(4)
        next_pid = [10_000_000]
        apply_move(bubbles, 7, 0, rng, next_pid)
        _, src = cache.refresh(bubbles)
        assert src == "repair"
        splice = cache.last_splice
        assert splice is not None
        assert splice.total == 40
        assert splice.spliced_fraction > 0.5

    def test_idset_change_rebuild_equivalence(self):
        bubbles = build_bubbles(24, 3, 900)
        cache = ClusterCache(min_pts=MIN_PTS)
        cache.refresh(bubbles)
        # Empty one bubble out entirely: the id set shrinks, so the
        # cache must take the rebuild path (reusing surviving entries).
        rng = np.random.default_rng(5)
        donor = bubbles[3]
        for pid in list(donor.members):
            donor.release(pid, donor.rep + rng.normal(0, 0.1, size=3))
        assert donor.n == 0
        state, src = cache.refresh(bubbles)
        assert src == "rebuild"
        assert 3 not in set(int(i) for i in state.bubble_ids)
        fresh_state, _ = ClusterCache(min_pts=MIN_PTS).refresh(bubbles)
        assert_states_equal(state, fresh_state)

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        data_seed=st.integers(0, 2**16),
        schedule=st.lists(
            st.lists(
                st.tuples(st.integers(0, 23), st.integers(0, 2)),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_random_chained_schedules(self, data_seed, schedule):
        bubbles = build_bubbles(24, 3, 800, data_seed=data_seed)
        rng = np.random.default_rng(data_seed)
        self.run_schedule(bubbles, schedule, rng)


class TestDegenerates:
    def test_empty_bubble_set_fit(self):
        store = PointStore(dim=2)
        store.insert(np.zeros((1, 2)), labels=[0])
        bubbles = BubbleBuilder(
            BubbleConfig(num_bubbles=1, seed=0)
        ).build(store)
        b = bubbles[0]
        b.release(next(iter(b.members)), np.zeros(2))
        clusterer = IncrementalClusterer(min_pts=MIN_PTS)
        fit = clusterer.fit(bubbles)
        assert fit.source == "empty"
        assert fit.num_bubbles == 0
        assert fit.quality == 1.0
        assert all(
            leaf.end <= leaf.start for leaf in fit.tree.leaves()
        )

    def test_single_bubble_single_leaf(self):
        store = PointStore(dim=2)
        store.insert(np.random.default_rng(0).normal(size=(50, 2)),
                     labels=[0] * 50)
        bubbles = BubbleBuilder(
            BubbleConfig(num_bubbles=1, seed=0)
        ).build(store)
        fit = IncrementalClusterer(min_pts=MIN_PTS).fit(bubbles)
        assert fit.num_bubbles == 1
        assert len(fit.tree.leaves()) == 1
        assert np.isfinite(fit.plot.core_distances).all() or True
        expanded = fit.expanded()
        assert np.isfinite(expanded.reachability[1:]).all()

    def test_duplicate_points_stay_finite(self):
        store = PointStore(dim=2)
        pts = np.zeros((120, 2))
        store.insert(pts, labels=[0] * 120)
        bubbles = BubbleBuilder(
            BubbleConfig(num_bubbles=4, seed=0)
        ).build(store)
        fit = IncrementalClusterer(min_pts=5).fit(bubbles)
        reach = fit.plot.reachability
        assert not np.isnan(reach).any()
        # Only component starts may be infinite.
        finite = reach[np.isfinite(reach)]
        assert (finite >= 0.0).all()
        expanded = fit.expanded()
        assert not np.isnan(expanded.reachability).any()


class FakeClock:
    """Deterministic monotonic clock: advances ``step`` per read."""

    def __init__(self, step: float) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


class TestAnytime:
    def make_clusterer(self, step: float) -> IncrementalClusterer:
        return IncrementalClusterer(
            min_pts=MIN_PTS, clock=FakeClock(step)
        )

    def test_no_deadline_is_direct(self):
        bubbles = build_bubbles(90, 3, 2700)
        fit = self.make_clusterer(0.001).fit(bubbles)
        assert fit.source == "cold"
        assert fit.stages == ()
        assert fit.quality == 1.0

    def test_deadline_with_budget_reaches_full_quality(self):
        bubbles = build_bubbles(90, 3, 2700)
        fit = self.make_clusterer(1e-6).fit(
            bubbles, deadline_seconds=10.0
        )
        assert fit.quality == 1.0
        assert len(fit.stages) == 2  # 64 then 90 bubbles
        assert fit.source == "anytime"
        qualities = [s.quality for s in fit.stages]
        assert qualities == sorted(qualities)  # monotone refinement

    def test_tight_deadline_still_returns_a_valid_tree(self):
        bubbles = build_bubbles(90, 3, 2700)
        # Every clock read advances a full second: the deadline is blown
        # immediately, but the first stage must never yield to it.
        fit = self.make_clusterer(1.0).fit(bubbles, deadline_seconds=0.5)
        assert len(fit.stages) == 1
        assert fit.stages[0].size == 64
        assert 0.0 < fit.quality < 1.0
        assert fit.source == "anytime"
        assert fit.num_bubbles == 64
        assert len(fit.tree.leaves()) >= 1
        # The subset keeps the heaviest bubbles, so coverage is high.
        assert fit.quality > 0.5

    def test_anytime_is_deterministic_under_a_fake_clock(self):
        fits = []
        for _ in range(2):
            bubbles = build_bubbles(90, 3, 2700)
            fit = self.make_clusterer(1.0).fit(
                bubbles, deadline_seconds=0.5
            )
            fits.append(fit)
        a, b = fits
        assert np.array_equal(a.bubble_ids, b.bubble_ids)
        assert np.array_equal(a.plot.ordering, b.plot.ordering)
        assert np.array_equal(a.plot.reachability, b.plot.reachability)
        assert a.quality == b.quality
        assert [s.size for s in a.stages] == [s.size for s in b.stages]

    def test_small_sets_fit_in_one_stage(self):
        bubbles = build_bubbles(24, 3, 900)
        fit = self.make_clusterer(1e-6).fit(
            bubbles, deadline_seconds=10.0
        )
        # num <= FIRST_STAGE_BUBBLES: single full stage, full quality.
        assert fit.quality == 1.0
        assert len(fit.stages) == 1

    def test_deadline_on_cached_idset_repairs_instead(self):
        bubbles = build_bubbles(40, 3, 1500)
        clusterer = IncrementalClusterer(
            min_pts=MIN_PTS, clock=FakeClock(1e-6)
        )
        clusterer.fit(bubbles)
        rng = np.random.default_rng(6)
        next_pid = [10_000_000]
        apply_move(bubbles, 11, 0, rng, next_pid)
        fit = clusterer.fit(bubbles, deadline_seconds=10.0)
        # A repairable cache beats staged re-walking.
        assert fit.source == "repair"
        assert fit.quality == 1.0


class TestClustererWiring:
    def test_fit_sources_and_stats_rollup(self):
        bubbles = build_bubbles(32, 3, 1200)
        clusterer = IncrementalClusterer(min_pts=MIN_PTS)
        assert clusterer.fit(bubbles).source == "cold"
        assert clusterer.fit(bubbles).source == "hit"
        rng = np.random.default_rng(7)
        next_pid = [10_000_000]
        apply_move(bubbles, 3, 0, rng, next_pid)
        assert clusterer.fit(bubbles).source == "repair"
        stats = clusterer.stats()
        assert stats["fits"] == 3
        assert stats["cache_hits"] == 1
        assert stats["repairs"] == 1
        assert stats["rebuilds"] == 1
        assert stats["last_source"] == "repair"
        assert stats["last_quality"] == 1.0
        assert stats["last_leaves"] >= 1
        assert 0.0 < stats["last_spliced_fraction"] <= 1.0

    def test_repair_equivalence_survives_maintainer_batches(self):
        """End-to-end: maintainer-applied batches, then repair ≡ cold."""
        from repro import (
            IncrementalMaintainer,
            MaintenanceConfig,
            UpdateBatch,
        )

        rng = np.random.default_rng(8)
        store = PointStore(dim=3)
        store.insert(
            rng.normal(3.0, 2.5, size=(1200, 3)), labels=[0] * 1200
        )
        bubbles = BubbleBuilder(
            BubbleConfig(num_bubbles=32, seed=3)
        ).build(store)
        maintainer = IncrementalMaintainer(
            bubbles, store, config=MaintenanceConfig()
        )
        clusterer = IncrementalClusterer(min_pts=MIN_PTS)
        clusterer.attach(maintainer)
        try:
            clusterer.fit(bubbles)
            for _ in range(3):
                maintainer.apply_batch(
                    UpdateBatch(
                        insertions=rng.normal(3.0, 2.0, size=(40, 3)),
                        insertion_labels=tuple([0] * 40),
                    )
                )
                fit = clusterer.fit(bubbles)
                fresh, _ = ClusterCache(min_pts=MIN_PTS).refresh(bubbles)
                assert np.array_equal(
                    fit.plot.ordering, fresh.plot.ordering
                )
                assert np.array_equal(
                    fit.plot.reachability, fresh.plot.reachability
                )
                assert fit.quality == 1.0
        finally:
            clusterer.detach(maintainer)

    def test_expanded_plot_attributes_points_to_bubbles(self):
        bubbles = build_bubbles(24, 3, 900)
        fit = IncrementalClusterer(min_pts=MIN_PTS).fit(bubbles)
        expanded = fit.expanded()
        assert expanded.reachability.shape[0] == int(fit.counts.sum())
        assert set(np.unique(expanded.source)) <= set(
            int(i) for i in fit.bubble_ids
        )


class TestLineage:
    def leaf_fit(self, bubbles, clusterer):
        fit = clusterer.fit(bubbles)
        assert fit.quality == 1.0
        return fit

    def test_first_fit_births_every_leaf(self):
        bubbles = build_bubbles(32, 3, 1200)
        clusterer = IncrementalClusterer(min_pts=MIN_PTS)
        fit = self.leaf_fit(bubbles, clusterer)
        lineage = clusterer.lineage
        born = [e for e in lineage.events if e.kind == "born"]
        assert len(born) == len(
            [
                leaf
                for leaf in fit.tree.leaves()
                if leaf.end > leaf.start
            ]
        )
        assert lineage.live_clusters == len(born)

    def test_unchanged_refit_is_silent(self):
        bubbles = build_bubbles(32, 3, 1200)
        clusterer = IncrementalClusterer(min_pts=MIN_PTS)
        self.leaf_fit(bubbles, clusterer)
        events_before = len(clusterer.lineage.events)
        self.leaf_fit(bubbles, clusterer)  # cache hit, same membership
        assert len(clusterer.lineage.events) == events_before

    def test_drift_and_death_are_recorded(self):
        lineage = ClusterLineage()

        class _Leaf:
            def __init__(self, start, end):
                self.start, self.end = start, end

        class _Tree:
            def __init__(self, leaves):
                self._leaves = leaves

            def leaves(self):
                return self._leaves

        def fake_fit(bubble_ids, counts, leaves):
            from repro.clustering.incremental import ClusterFit
            from repro.clustering.reachability import ReachabilityPlot

            num = len(bubble_ids)
            plot = ReachabilityPlot(
                ordering=np.arange(num),
                reachability=np.full(num, 1.0),
                core_distances=np.full(num, 1.0),
            )
            return ClusterFit(
                version=0,
                bubble_ids=np.asarray(bubble_ids),
                counts=np.asarray(counts),
                virtual_reachability=np.full(num, 1.0),
                plot=plot,
                tree=_Tree(leaves),
                source="cold",
                quality=1.0,
            )

        # Two leaves: {10, 11} and {12, 13}.
        events = lineage.observe(
            fake_fit(
                [10, 11, 12, 13],
                [5, 5, 5, 5],
                [_Leaf(0, 2), _Leaf(2, 4)],
            )
        )
        assert [e.kind for e in events] == ["born", "born"]
        # Leaf one gains bubble 14; leaf two dies.
        events = lineage.observe(
            fake_fit([10, 11, 14], [5, 5, 5], [_Leaf(0, 3)])
        )
        kinds = sorted(e.kind for e in events)
        assert kinds == ["died", "drifted"]
        drift = next(e for e in events if e.kind == "drifted")
        assert drift.gained_bubbles == (14,)
        assert lineage.live_clusters == 1


class TestEngineRepairContract:
    """The engine pieces the repair leans on."""

    @staticmethod
    def make_walk(dist, record_trace=False, min_pts_count=2):
        def distances_from(i):
            return dist[i]

        def core_distance(i, d):
            return float(np.partition(d, min_pts_count)[min_pts_count])

        return OpticsWalk(
            dist.shape[0],
            distances_from,
            core_distance,
            record_trace=record_trace,
        )

    def test_peek_pop_predicts_step(self):
        rng = np.random.default_rng(9)
        pts = rng.normal(size=(12, 2))
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        walk = self.make_walk(dist)
        assert walk.peek_pop() == -1  # nothing pushed yet
        first = walk.step()
        assert first == 0  # component opens at the lowest id
        while not walk.done():
            peeked = walk.peek_pop()
            stepped = walk.step()
            if peeked >= 0:
                assert stepped == peeked

    def test_splice_segment_on_tracing_walk_needs_batches(self):
        dist = np.array(
            [[0.0, 1.0, 2.0], [1.0, 0.0, 1.5], [2.0, 1.5, 0.0]]
        )
        walk = self.make_walk(dist, record_trace=True, min_pts_count=1)
        with pytest.raises(ValueError, match="push batch per replayed"):
            walk.splice_segment(
                np.array([0]),
                np.array([np.inf]),
                np.array([1.0]),
                np.empty(0, dtype=np.int64),
                np.empty(0),
                batches=None,
            )

    def test_splice_replay_matches_live_walk(self):
        rng = np.random.default_rng(10)
        pts = rng.normal(size=(15, 2))
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        live = self.make_walk(dist, record_trace=True)
        plot = live.run()
        assert live.trace is not None
        replay = self.make_walk(dist)
        for pos, obj in enumerate(plot.ordering):
            targets, values = live.trace[pos]
            replay.splice(
                int(obj),
                float(plot.reachability[pos]),
                float(plot.core_distances[obj]),
                targets,
                values,
            )
        replayed = replay.plot()
        assert np.array_equal(replayed.ordering, plot.ordering)
        assert np.array_equal(replayed.reachability, plot.reachability)
        assert np.array_equal(
            replay.counter_by_obj, live.counter_by_obj
        )


class TestObservabilityWiring:
    def test_spans_and_metrics_cover_the_new_ops(self):
        import pathlib

        from repro.observability import Observability
        from repro.observability.spans import SpanTracer

        obs = Observability(spans=SpanTracer())
        bubbles = build_bubbles(90, 3, 2700)
        clusterer = IncrementalClusterer(
            min_pts=MIN_PTS, obs=obs, clock=FakeClock(1e-6)
        )
        clusterer.fit(bubbles, deadline_seconds=10.0)  # anytime stages
        rng = np.random.default_rng(11)
        next_pid = [10_000_000]
        apply_move(bubbles, 4, 0, rng, next_pid)
        clusterer.fit(bubbles)  # repair
        counts = obs.spans.counts()
        assert counts["cluster_fit"] == 2
        assert counts["cluster_stage"] >= 2
        assert counts["cluster_repair"] == 1
        snap = obs.metrics.snapshot()
        assert snap.value("repro_cluster_fits_total") == 2
        assert snap.value("repro_cluster_repairs_total") == 1
        assert snap.value("repro_cluster_anytime_stages_total") >= 2
        # Every op this subsystem emits must be documented (the same
        # drift guard the rest of the taxonomy lives under).
        docs = (
            pathlib.Path(__file__).parent.parent
            / "docs"
            / "OBSERVABILITY.md"
        ).read_text()
        for op in counts:
            assert f"`{op}`" in docs, f"span op {op} not documented"
