"""Parity tests for the spatial-index and parallel assignment paths.

Three contracts are pinned here:

1. **Spatial parity** — ``use_seed_index=True`` (either backend) returns
   bit-identical indices and an identical RNG end-state to the plain
   batch kernel, never computes *more* exact distances, and preserves
   the conservation law ``computed + pruned == m * B``.
2. **Worker determinism** — ``workers=0`` is the bit-reproducible serial
   reference; any ``workers >= 1`` consumes exactly one 64-bit draw from
   the main RNG and produces output independent of the worker count,
   with assigned-seed distances identical to the serial answer.
3. **Cache keying** — :class:`AssignerCache` keys on the new flags, so
   flipping either rebuilds the assigner while repeated calls reuse the
   lazily built index until the bubble-set version moves.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.core import AssignerCache, BubbleSet, TriangleInequalityAssigner
from repro.core.seed_index import kdtree_available
from repro.geometry import DistanceCounter

BACKENDS = ["grid"] + (["kdtree"] if kdtree_available() else [])


def _workload(num_points, num_seeds, dim, seed=0, scale=10.0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, scale, size=(max(4, num_seeds // 4), dim))
    points = rng.normal(
        centers[rng.integers(0, len(centers), size=num_points)], 1.0
    )
    seeds = rng.uniform(0, scale, size=(num_seeds, dim))
    return points, seeds


def _assigner(seeds, seed=0, **kwargs):
    return TriangleInequalityAssigner(
        seeds,
        DistanceCounter(),
        rng=np.random.default_rng(seed),
        count_setup=False,
        **kwargs,
    )


def _assert_spatial_parity(points, seeds, seed=0, **spatial_kwargs):
    """Spatial assign_many is bit-identical and never computes more."""
    plain = _assigner(seeds, seed=seed)
    spatial = _assigner(seeds, seed=seed, use_seed_index=True, **spatial_kwargs)
    plain_idx = plain.assign_many(points)
    spatial_idx = spatial.assign_many(points)
    assert np.array_equal(plain_idx, spatial_idx)
    assert (
        plain._rng.bit_generator.state == spatial._rng.bit_generator.state
    )
    assert spatial.assign_computed <= plain.assign_computed
    total = points.shape[0] * seeds.shape[0]
    assert plain.assign_computed + plain.assign_pruned == total
    assert spatial.assign_computed + spatial.assign_pruned == total
    # Index skips are a subset of the pruned total.
    assert 0 <= spatial.assign_index_pruned <= spatial.assign_pruned
    return plain, spatial


class TestSpatialParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "num_points,num_seeds,dim,scale",
        [
            (1, 2, 2, 1.0),  # single point, minimal seed count
            (40, 1, 3, 1.0),  # B=1 short-circuits before the index
            (50, 25, 3, 10.0),  # generic
            (200, 40, 2, 0.3),  # dense overlap: little pruning
            (128, 16, 8, 50.0),  # well-separated: heavy pruning
            (96, 24, 128, 10.0),  # high dimension
            (1030, 10, 2, 10.0),  # crosses the default block boundary
        ],
    )
    def test_bit_identical_to_batch(
        self, backend, num_points, num_seeds, dim, scale
    ):
        points, seeds = _workload(num_points, num_seeds, dim, scale=scale)
        _assert_spatial_parity(points, seeds, index_backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_seeds(self, backend):
        rng = np.random.default_rng(5)
        base = rng.uniform(0, 10, size=(8, 2))
        seeds = np.vstack([base, base])
        points = rng.uniform(0, 10, size=(120, 2))
        _assert_spatial_parity(points, seeds, index_backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_batch(self, backend):
        points, seeds = _workload(0, 12, 3)
        plain, spatial = _assert_spatial_parity(
            points, seeds, index_backend=backend
        )
        assert plain.assign_computed == spatial.assign_computed == 0
        # An empty batch never consults (or builds) the index.
        assert spatial.seed_index is None

    def test_spatial_matches_scalar_loop(self):
        points, seeds = _workload(80, 20, 3)
        scalar = _assigner(seeds)
        spatial = _assigner(seeds, use_seed_index=True)
        scalar_idx = np.array(
            [scalar.assign(p) for p in points], dtype=np.int64
        )
        assert np.array_equal(scalar_idx, spatial.assign_many(points))
        assert (
            scalar._rng.bit_generator.state
            == spatial._rng.bit_generator.state
        )
        assert spatial.assign_computed <= scalar.assign_computed

    def test_index_built_lazily_and_reused(self):
        points, seeds = _workload(64, 16, 2)
        spatial = _assigner(seeds, use_seed_index=True)
        assert spatial.seed_index is None
        spatial.assign_many(points)
        index = spatial.seed_index
        assert index is not None
        queries = index.queries
        spatial.assign_many(points)
        assert spatial.seed_index is index
        assert index.queries == 2 * queries

    @given(
        num_points=st.integers(min_value=0, max_value=120),
        num_seeds=st.integers(min_value=2, max_value=40),
        dim=st.integers(min_value=1, max_value=8),
        data_seed=st.integers(min_value=0, max_value=2**31),
        scale=st.sampled_from([0.3, 1.0, 10.0, 100.0]),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_parity_property(
        self, num_points, num_seeds, dim, data_seed, scale
    ):
        points, seeds = _workload(
            num_points, num_seeds, dim, seed=data_seed, scale=scale
        )
        for backend in BACKENDS:
            _assert_spatial_parity(
                points, seeds, seed=data_seed, index_backend=backend
            )


class TestWorkerDeterminism:
    def test_workers_zero_is_the_serial_reference(self):
        points, seeds = _workload(150, 20, 3)
        serial = _assigner(seeds)
        w0 = _assigner(seeds, workers=0)
        assert np.array_equal(
            serial.assign_many(points), w0.assign_many(points)
        )
        assert (
            serial._rng.bit_generator.state == w0._rng.bit_generator.state
        )

    @pytest.mark.parametrize("use_seed_index", [False, True])
    def test_worker_count_never_changes_the_answer(self, use_seed_index):
        points, seeds = _workload(300, 25, 3)
        results = {}
        for workers in (1, 2, 4):
            assigner = _assigner(
                seeds, workers=workers, use_seed_index=use_seed_index
            )
            results[workers] = (
                assigner.assign_many(points),
                assigner._rng.bit_generator.state,
                assigner.assign_computed,
                assigner.assign_pruned,
            )
        for workers in (2, 4):
            assert np.array_equal(results[1][0], results[workers][0])
            assert results[1][1:] == results[workers][1:]

    def test_parallel_consumes_exactly_one_draw(self):
        points, seeds = _workload(200, 15, 2)
        assigner = _assigner(seeds, workers=4)
        assigner.assign_many(points)
        # Replay: one uint64 draw is the entire main-stream footprint.
        witness = np.random.default_rng(0)
        witness.integers(0, 2**64, dtype=np.uint64)
        assert (
            assigner._rng.bit_generator.state
            == witness.bit_generator.state
        )

    def test_parallel_empty_batch_consumes_no_rng(self):
        _, seeds = _workload(1, 15, 2)
        assigner = _assigner(seeds, workers=4)
        assigner.assign_many(np.zeros((0, 2)))
        assert (
            assigner._rng.bit_generator.state
            == np.random.default_rng(0).bit_generator.state
        )

    def test_parallel_assigned_distances_match_serial(self):
        # Substream permutations may break distance ties differently,
        # but the assigned seed is always a true nearest seed — the
        # realised distances agree exactly with the serial reference.
        points, seeds = _workload(400, 30, 2, scale=2.0)
        serial_idx = _assigner(seeds).assign_many(points)
        par_idx = _assigner(
            seeds, workers=2, use_seed_index=True
        ).assign_many(points)
        serial_d = np.linalg.norm(points - seeds[serial_idx], axis=1)
        par_d = np.linalg.norm(points - seeds[par_idx], axis=1)
        assert np.array_equal(serial_d, par_d)


class TestCacheKeying:
    def _bubble_set(self, rng, num_bubbles=12):
        bubbles = BubbleSet(dim=2)
        for seed in rng.normal(size=(num_bubbles, 2)) * 5:
            bubbles.add_bubble(seed)
        return bubbles, DistanceCounter()

    def test_flags_are_part_of_the_key(self, rng):
        bubbles, counter = self._bubble_set(rng)
        cache = AssignerCache()
        plain = cache.get(bubbles, counter)
        spatial = cache.get(bubbles, counter, use_seed_index=True)
        assert plain is not spatial
        # Same flags, unchanged bubbles: a hit (single-slot cache).
        assert cache.get(bubbles, counter, use_seed_index=True) is spatial
        parallel = cache.get(bubbles, counter, workers=2)
        assert parallel is not spatial
        assert cache.get(bubbles, counter, workers=2) is parallel

    def test_cache_hit_reuses_the_lazily_built_index(self, rng):
        bubbles, counter = self._bubble_set(rng)
        cache = AssignerCache()
        assigner = cache.get(bubbles, counter, use_seed_index=True)
        points = rng.normal(size=(50, 2)) * 5
        assigner.assign_many(points)
        index = assigner.seed_index
        assert index is not None
        again = cache.get(bubbles, counter, use_seed_index=True)
        assert again is assigner
        assert again.seed_index is index

    def test_version_bump_rebuilds_assigner_and_index(self, rng):
        bubbles, counter = self._bubble_set(rng)
        cache = AssignerCache()
        assigner = cache.get(bubbles, counter, use_seed_index=True)
        assigner.assign_many(rng.normal(size=(20, 2)) * 5)
        next(iter(bubbles)).absorb(0, np.array([0.5, 0.5]))
        fresh = cache.get(bubbles, counter, use_seed_index=True)
        assert fresh is not assigner
        assert fresh.seed_index is None  # rebuilt lazily on next batch


class TestMaintainerSpatialEquivalence:
    """End-to-end: a spatial maintainer walks the same trajectory."""

    def _run(self, use_seed_index, assign_workers=0):
        rng = np.random.default_rng(7)
        points = np.vstack(
            [
                rng.normal([0, 0], 0.5, size=(300, 2)),
                rng.normal([20, 20], 0.5, size=(300, 2)),
            ]
        )
        store = PointStore(dim=2)
        store.insert(points, np.zeros(600, dtype=np.int64))
        counter = DistanceCounter()
        bubbles = BubbleBuilder(
            BubbleConfig(num_bubbles=15, seed=0), counter
        ).build(store)
        maintainer = IncrementalMaintainer(
            bubbles,
            store,
            MaintenanceConfig(
                seed=0,
                use_seed_index=use_seed_index,
                assign_workers=assign_workers,
            ),
            counter=counter,
        )
        for batch_seed in (1, 2):
            batch_rng = np.random.default_rng(batch_seed)
            inserts = batch_rng.normal([10, 10], 3.0, size=(40, 2))
            maintainer.apply_batch(
                UpdateBatch(
                    deletions=(),
                    insertions=inserts,
                    insertion_labels=(0,) * len(inserts),
                )
            )
        owners = [int(store.owner(i)) for i in store.ids()]
        stats = [(b.n, float(b.extent)) for b in bubbles]
        return owners, stats, counter.computed

    def test_spatial_maintainer_matches_plain(self):
        plain_owners, plain_stats, plain_computed = self._run(False)
        spat_owners, spat_stats, spat_computed = self._run(True)
        assert spat_owners == plain_owners
        assert spat_stats == plain_stats
        assert spat_computed <= plain_computed
