"""Unit tests for update batches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.database import UpdateBatch


class TestUpdateBatch:
    def test_counts(self):
        batch = UpdateBatch(
            deletions=(1, 2, 3),
            insertions=np.zeros((2, 2)),
            insertion_labels=(0, 0),
        )
        assert batch.num_deletions == 3
        assert batch.num_insertions == 2
        assert batch.num_updates == 5
        assert not batch.is_empty()

    def test_empty_factory(self):
        batch = UpdateBatch.empty(dim=4)
        assert batch.is_empty()
        assert batch.insertions.shape == (0, 4)

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UpdateBatch(
                insertions=np.zeros((2, 2)),
                insertion_labels=(0,),
            )

    def test_non_matrix_insertions_rejected(self):
        with pytest.raises(ValueError):
            UpdateBatch(insertions=np.zeros(3), insertion_labels=(0, 0, 0))

    def test_default_is_empty(self):
        batch = UpdateBatch()
        assert batch.is_empty()

    def test_insertions_coerced_to_float(self):
        batch = UpdateBatch(
            insertions=np.array([[1, 2]], dtype=np.int64),
            insertion_labels=(0,),
        )
        assert batch.insertions.dtype == np.float64
