"""Unit tests for the dynamic point store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.database import PointStore
from repro.exceptions import DimensionMismatchError, UnknownPointError


class TestInsert:
    def test_ids_are_sequential(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((3, 2)))
        assert ids == [0, 1, 2]
        more = store.insert(np.ones((2, 2)))
        assert more == [3, 4]

    def test_size_tracks_alive_points(self):
        store = PointStore(dim=2)
        store.insert(np.zeros((5, 2)))
        assert store.size == 5
        assert len(store) == 5

    def test_default_labels_are_noise(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((2, 2)))
        assert store.label(ids[0]) == -1

    def test_single_point_promoted_to_row(self):
        store = PointStore(dim=3)
        ids = store.insert(np.array([1.0, 2.0, 3.0]))
        assert ids == [0]
        assert store.point(0) == pytest.approx([1.0, 2.0, 3.0])

    def test_dimension_mismatch(self):
        store = PointStore(dim=2)
        with pytest.raises(DimensionMismatchError):
            store.insert(np.zeros((3, 4)))

    def test_label_count_mismatch(self):
        store = PointStore(dim=2)
        with pytest.raises(ValueError):
            store.insert(np.zeros((3, 2)), labels=[1, 2])

    def test_growth_beyond_initial_capacity(self):
        store = PointStore(dim=2)
        store.insert(np.zeros((5000, 2)))
        assert store.size == 5000
        assert store.point(4999) == pytest.approx([0.0, 0.0])

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            PointStore(dim=0)


class TestDelete:
    def test_delete_removes_from_size_and_ids(self):
        store = PointStore(dim=2)
        ids = store.insert(np.arange(10.0).reshape(5, 2))
        store.delete([ids[1], ids[3]])
        assert store.size == 3
        assert set(store.ids().tolist()) == {0, 2, 4}

    def test_delete_unknown_raises(self):
        store = PointStore(dim=2)
        store.insert(np.zeros((2, 2)))
        with pytest.raises(UnknownPointError):
            store.delete([5])

    def test_double_delete_raises(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((2, 2)))
        store.delete([ids[0]])
        with pytest.raises(UnknownPointError):
            store.delete([ids[0]])

    def test_delete_empty_is_noop(self):
        store = PointStore(dim=2)
        store.insert(np.zeros((2, 2)))
        store.delete([])
        assert store.size == 2

    def test_ids_never_reused(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((3, 2)))
        store.delete(ids)
        fresh = store.insert(np.ones((1, 2)))
        assert fresh == [3]

    def test_contains(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((2, 2)))
        assert ids[0] in store
        store.delete([ids[0]])
        assert ids[0] not in store
        assert "x" not in store


class TestOwnership:
    def test_owner_roundtrip(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((2, 2)))
        assert store.owner(ids[0]) is None
        store.set_owner(ids[0], 7)
        assert store.owner(ids[0]) == 7

    def test_set_owners_bulk(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((3, 2)))
        store.set_owners(ids, [1, 2, 3])
        assert [store.owner(i) for i in ids] == [1, 2, 3]

    def test_set_owners_misaligned(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            store.set_owners(ids, [1, 2])

    def test_clear_owners(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((2, 2)))
        store.set_owners(ids, [0, 1])
        store.clear_owners()
        assert store.owner(ids[0]) is None

    def test_deleted_point_loses_owner(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((1, 2)))
        store.set_owner(ids[0], 3)
        store.delete(ids)
        with pytest.raises(UnknownPointError):
            store.owner(ids[0])


class TestLookup:
    def test_snapshot_contents(self):
        store = PointStore(dim=2)
        points = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        ids = store.insert(points, labels=[0, 1, -1])
        store.delete([ids[1]])
        snap_ids, snap_points, snap_labels = store.snapshot()
        assert snap_ids.tolist() == [0, 2]
        assert snap_points == pytest.approx(points[[0, 2]])
        assert snap_labels.tolist() == [0, -1]

    def test_points_of_dead_raises(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((2, 2)))
        store.delete([ids[0]])
        with pytest.raises(UnknownPointError):
            store.points_of([ids[0]])

    def test_ids_with_label(self):
        store = PointStore(dim=2)
        store.insert(np.zeros((4, 2)), labels=[0, 1, 0, -1])
        assert store.ids_with_label(0).tolist() == [0, 2]
        assert store.ids_with_label(99).tolist() == []

    def test_iter_alive(self):
        store = PointStore(dim=2)
        ids = store.insert(np.arange(6.0).reshape(3, 2))
        store.delete([ids[1]])
        seen = {pid: tuple(p) for pid, p in store.iter_alive()}
        assert set(seen) == {0, 2}

    def test_point_view_is_readonly(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((1, 2)))
        view = store.point(ids[0])
        with pytest.raises(ValueError):
            view[0] = 1.0

    def test_labels_of(self):
        store = PointStore(dim=2)
        ids = store.insert(np.zeros((3, 2)), labels=[5, 6, 7])
        assert store.labels_of(ids[::-1]).tolist() == [7, 6, 5]
