"""Tests of the figure experiments' *shape claims* at small scale.

Each test asserts the qualitative property the corresponding paper figure
demonstrates — these are the reproduction's contract, checked in CI at
reduced size (the benchmarks regenerate them at full size). The module is
marked ``slow`` — the default CI leg deselects it; the coverage leg runs
everything.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import (
    ExperimentConfig,
    construction_pruning,
    run_figure7,
    run_figure9,
    run_figure10,
    run_figure11,
)

QUICK = ExperimentConfig(
    scenario="complex",
    dim=2,
    initial_size=2500,
    num_bubbles=50,
    num_batches=4,
    min_pts=25,
    seed=0,
)


class TestFigure7Claim:
    def test_beta_measure_attracts_more_bubbles_to_new_clusters(self):
        config = ExperimentConfig(
            scenario="figure7",
            dim=2,
            initial_size=3000,
            num_bubbles=50,
            update_fraction=0.1,
            num_batches=10,
            seed=0,
        )
        result = run_figure7(config)
        # The paper's claim: the β measure repositions bubbles onto the
        # appearing clusters; the extent measure leaves them starved.
        assert result.beta_bubbles_on_new > result.extent_bubbles_on_new
        assert result.beta_fscore >= result.extent_fscore - 0.02


class TestFigure9Claim:
    def test_rebuilt_fraction_is_small(self):
        points = run_figure9(
            QUICK, update_fractions=(0.04, 0.10), repetitions=2
        )
        for point in points:
            # "the majority of the data bubbles can adapt": rebuilt
            # fraction stays far below one.
            assert point.rebuilt_fraction.mean < 0.25


class TestFigure10Claim:
    def test_pruning_in_band_and_construction_anchor(self):
        points = run_figure10(
            QUICK, update_fractions=(0.04, 0.10), repetitions=2
        )
        for point in points:
            assert 0.5 < point.pruned_fraction.mean < 0.95
        anchor = construction_pruning(QUICK, repetitions=2)
        assert 0.6 < anchor.mean < 0.95


class TestFigure11Claim:
    def test_saving_factor_large_and_decreasing(self):
        points = run_figure11(
            QUICK, update_fractions=(0.02, 0.10), repetitions=2
        )
        small_updates, large_updates = points[0], points[1]
        assert small_updates.saving_factor.mean > large_updates.saving_factor.mean
        assert large_updates.saving_factor.mean > 5.0
