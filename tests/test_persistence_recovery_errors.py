"""Degraded-mode recovery: quarantine, torn tails, missing generations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CorruptStateError, DurableSummarizer
from repro.observability import EventTracer, Observability
from repro.persistence import CheckpointManager, recover_state

DIM = 2
WINDOW = 400
PPB = 20


def run_stream(wal_dir, num_chunks, checkpoint_every=4, obs=None):
    stream = DurableSummarizer(
        wal_dir,
        dim=DIM,
        window_size=WINDOW,
        points_per_bubble=PPB,
        seed=11,
        checkpoint_every=checkpoint_every,
        fsync=False,
        obs=obs,
    )
    generator = np.random.default_rng(42)
    for _ in range(num_chunks):
        stream.append(generator.normal(size=(60, DIM)))
    return stream


class TestEmptyWal:
    def test_manifest_only_directory_recovers_fresh(self, tmp_path):
        # Crash immediately after creation: manifest + empty WAL, no
        # snapshot, no records.
        stream = run_stream(tmp_path, num_chunks=0)
        stream._manager.close()  # no goodbye checkpoint

        recovered = DurableSummarizer.recover(tmp_path, fsync=False)
        assert recovered.batches_applied == 0
        assert recovered.size == 0
        recovered.close()

    def test_recover_state_reports_empty_tail(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=0)
        stream._manager.close()
        manager = CheckpointManager(tmp_path, fsync=False)
        recovered = recover_state(manager)
        assert recovered.state is None
        assert recovered.tail == ()
        assert recovered.last_seq == 0
        manager.close()


class TestTornFirstRecord:
    def test_torn_only_record_is_truncated_with_warning(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=1, checkpoint_every=100)
        stream._manager.close()
        wal_path = tmp_path / "wal.log"
        data = wal_path.read_bytes()
        assert len(data) > 8  # magic + one record
        # Tear the one-and-only record in half, as a crash mid-append
        # would have.
        wal_path.write_bytes(data[: 8 + (len(data) - 8) // 2])

        obs = Observability(tracer=EventTracer())
        manager = CheckpointManager(tmp_path, fsync=False, obs=obs)
        recovered = recover_state(manager)
        assert recovered.state is None
        assert recovered.tail == ()
        # The repair was traced, and the file now holds only the magic.
        assert obs.tracer.counts().get("wal_torn_tail") == 1
        assert wal_path.read_bytes() == data[:8]
        manager.close()

    def test_recovery_continues_after_torn_first_record(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=1, checkpoint_every=100)
        stream._manager.close()
        wal_path = tmp_path / "wal.log"
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[: 8 + (len(data) - 8) // 2])

        recovered = DurableSummarizer.recover(tmp_path, fsync=False)
        assert recovered.batches_applied == 0
        recovered.append(np.random.default_rng(1).normal(size=(60, DIM)))
        assert recovered.batches_applied == 1
        recovered.close()


class TestMissingSnapshotGeneration:
    def test_all_snapshots_gone_raises_corrupt_state(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=10, checkpoint_every=4)
        stream.close()
        # The WAL has been compacted past batch 0; deleting every
        # snapshot leaves an unrecoverable gap.
        removed = 0
        for snapshot in tmp_path.glob("snapshot-*.npz"):
            snapshot.unlink()
            removed += 1
        assert removed >= 1

        with pytest.raises(CorruptStateError) as excinfo:
            DurableSummarizer.recover(tmp_path, fsync=False)
        message = str(excinfo.value)
        assert "unrecoverable" in message
        assert "*.corrupt" in message  # actionable: where to look

    def test_all_snapshots_corrupt_raises_corrupt_state(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=10, checkpoint_every=4)
        stream.close()
        snapshots = sorted(tmp_path.glob("snapshot-*.npz"))
        assert snapshots
        for snapshot in snapshots:
            snapshot.write_bytes(b"not a zip archive")

        with pytest.raises(CorruptStateError):
            DurableSummarizer.recover(tmp_path, fsync=False)
        # Every damaged generation was quarantined, none deleted.
        assert not list(tmp_path.glob("snapshot-*.npz"))
        assert len(list(tmp_path.glob("*.corrupt"))) == len(snapshots)


class TestQuarantineFallback:
    def test_corrupt_newest_falls_back_to_older_generation(self, tmp_path):
        obs = Observability(tracer=EventTracer())
        stream = run_stream(tmp_path, num_chunks=8, checkpoint_every=4)
        stream.close()
        snapshots = sorted(tmp_path.glob("snapshot-*.npz"))
        assert len(snapshots) >= 2
        newest = snapshots[-1]
        original = newest.read_bytes()
        newest.write_bytes(original[: len(original) // 2])  # torn at rest

        manager = CheckpointManager(tmp_path, fsync=False, obs=obs)
        recovered = recover_state(manager)
        # Fallback: the older generation loaded, and the WAL tail (kept
        # since the oldest retained snapshot) replays forward from it.
        assert recovered.state is not None
        assert recovered.state.batches_applied < 8
        assert recovered.last_seq == 8
        manager.close()

        quarantined = newest.with_name(newest.name + ".corrupt")
        assert quarantined.exists()  # preserved for forensics
        assert quarantined.read_bytes() == original[: len(original) // 2]
        assert not newest.exists()
        assert obs.tracer.counts().get("snapshot_quarantined") == 1
        counter = obs.metrics.get("repro_snapshots_quarantined_total")
        assert counter is not None and counter.value == 1

    def test_full_recovery_through_the_fallback(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=8, checkpoint_every=4)
        expected_size = stream.size
        stream.close()
        newest = sorted(tmp_path.glob("snapshot-*.npz"))[-1]
        newest.write_bytes(newest.read_bytes()[:100])

        recovered = DurableSummarizer.recover(tmp_path, fsync=False)
        assert recovered.batches_applied == 8
        assert recovered.size == expected_size
        assert recovered.audit().healthy
        recovered.close()


class TestStaleTmpSweep:
    def test_stale_tmp_removed_at_startup(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=4)
        stream.close()
        # A crash mid-atomic-write leaves .tmp siblings behind.
        (tmp_path / "snapshot-000000000099.npz.tmp").write_bytes(b"half")
        (tmp_path / "manifest.json.tmp").write_bytes(b"{")

        obs = Observability(tracer=EventTracer())
        manager = CheckpointManager(tmp_path, fsync=False, obs=obs)
        assert not list(tmp_path.glob("*.tmp"))
        assert obs.tracer.counts().get("stale_tmp_removed") == 2
        counter = obs.metrics.get("repro_stale_tmp_removed_total")
        assert counter is not None and counter.value == 2
        manager.close()

    def test_quarantined_snapshots_survive_the_sweep(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=4)
        stream.close()
        corrupt = tmp_path / "snapshot-000000000004.npz.corrupt"
        corrupt.write_bytes(b"forensic evidence")

        manager = CheckpointManager(tmp_path, fsync=False)
        assert corrupt.exists()
        # And the quarantined file is never offered as a snapshot again.
        assert corrupt not in manager.snapshot_paths()
        manager.close()

    def test_recovery_is_unaffected_by_stale_tmp(self, tmp_path):
        stream = run_stream(tmp_path, num_chunks=8)
        expected_size = stream.size
        stream.close()
        (tmp_path / "wal.log.tmp").write_bytes(b"partial compaction")

        recovered = DurableSummarizer.recover(tmp_path, fsync=False)
        assert recovered.size == expected_size
        assert not list(tmp_path.glob("*.tmp"))
        recovered.close()


class TestInternallyInconsistentSnapshot:
    def test_recover_reports_corrupt_state_cleanly(self, tmp_path):
        # A snapshot can decode fine yet violate internal invariants
        # (a buggy writer, or tampering the checksum cannot detect).
        # Recovery must surface that as CorruptStateError, not a raw
        # ValueError from deep inside state restoration.
        stream = run_stream(tmp_path, num_chunks=8)
        victim = stream.summary.non_empty_ids()[0]
        # Bump n without adding a member: n != len(members) on restore.
        stream.summary[victim].stats.insert(np.zeros(DIM))
        stream.close()  # the goodbye checkpoint persists the damage

        with pytest.raises(CorruptStateError, match="inconsistent"):
            DurableSummarizer.recover(tmp_path, fsync=False)
