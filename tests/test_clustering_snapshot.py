"""Unit tests for the high-level clustering snapshot façade."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BubbleBuilder, BubbleConfig, PointStore
from repro.clustering import ClusteringSnapshot


@pytest.fixture
def world(rng):
    points = np.vstack(
        [
            rng.normal([0, 0], 0.4, size=(800, 2)),
            rng.normal([20, 0], 0.4, size=(800, 2)),
            rng.normal([10, 17], 0.4, size=(800, 2)),
        ]
    )
    truth = np.repeat([0, 1, 2], 800)
    store = PointStore(dim=2)
    store.insert(points, truth)
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=36, seed=0)).build(store)
    return store, bubbles, truth


class TestBuild:
    def test_finds_the_clusters(self, world):
        store, bubbles, _ = world
        snapshot = ClusteringSnapshot.build(bubbles, min_pts=40)
        assert snapshot.num_clusters == 3
        sizes = snapshot.cluster_sizes()
        assert sizes.sum() == store.size
        assert (sizes > 600).all()

    def test_bubble_labels_cover_non_empty_bubbles(self, world):
        _, bubbles, _ = world
        snapshot = ClusteringSnapshot.build(bubbles, min_pts=40)
        assert set(snapshot.bubble_labels) == set(bubbles.non_empty_ids())


class TestPointLabels:
    def test_agree_with_truth(self, world):
        store, bubbles, truth = world
        snapshot = ClusteringSnapshot.build(bubbles, min_pts=40)
        predicted = snapshot.point_labels(store)
        from repro.evaluation import adjusted_rand_index

        assert adjusted_rand_index(truth, predicted) > 0.95

    def test_unowned_points_are_noise(self, world):
        store, bubbles, _ = world
        snapshot = ClusteringSnapshot.build(bubbles, min_pts=40)
        store.insert(np.array([[50.0, 50.0]]))  # never summarized
        labels = snapshot.point_labels(store)
        assert labels[-1] == -1


class TestPredict:
    def test_new_points_classified_by_region(self, world):
        _, bubbles, _ = world
        snapshot = ClusteringSnapshot.build(bubbles, min_pts=40)
        probes = np.array([[0.0, 0.5], [20.0, -0.5], [10.0, 17.5]])
        labels = snapshot.predict(probes)
        assert len(set(labels.tolist())) == 3

    def test_prediction_matches_database_labelling(self, world):
        store, bubbles, _ = world
        snapshot = ClusteringSnapshot.build(bubbles, min_pts=40)
        ids, points, _ = store.snapshot()
        db_labels = snapshot.point_labels(store)
        predicted = snapshot.predict(points)
        agreement = (db_labels == predicted).mean()
        assert agreement > 0.97  # boundary points may flip

    def test_single_point_input(self, world):
        _, bubbles, _ = world
        snapshot = ClusteringSnapshot.build(bubbles, min_pts=40)
        labels = snapshot.predict(np.array([0.0, 0.0]))
        assert labels.shape == (1,)


class TestRender:
    def test_contains_plot_and_tree(self, world):
        _, bubbles, _ = world
        snapshot = ClusteringSnapshot.build(bubbles, min_pts=40)
        text = snapshot.render(width=60, height=6)
        assert "max finite reachability" in text
        assert "n=2400" in text
