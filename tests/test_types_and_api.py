"""Tests for the shared type helpers and the public API surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.types import NOISE_LABEL, as_point, as_point_matrix


class TestAsPointMatrix:
    def test_list_of_lists(self):
        matrix = as_point_matrix([[1, 2], [3, 4]])
        assert matrix.dtype == np.float64
        assert matrix.shape == (2, 2)

    def test_vector_promoted_to_row(self):
        assert as_point_matrix([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_dim_validated(self):
        with pytest.raises(ValueError):
            as_point_matrix([[1.0, 2.0]], dim=3)

    def test_three_dimensional_rejected(self):
        with pytest.raises(ValueError):
            as_point_matrix(np.zeros((2, 2, 2)))

    def test_contiguity(self):
        strided = np.zeros((4, 6))[:, ::2]
        assert as_point_matrix(strided).flags["C_CONTIGUOUS"]


class TestAsPoint:
    def test_coercion(self):
        point = as_point([1, 2])
        assert point.dtype == np.float64
        assert point.shape == (2,)

    def test_matrix_rejected(self):
        with pytest.raises(ValueError):
            as_point([[1.0, 2.0]])

    def test_dim_validated(self):
        with pytest.raises(ValueError):
            as_point([1.0, 2.0], dim=3)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.clustering
        import repro.core
        import repro.data
        import repro.evaluation
        import repro.experiments

        for module in (
            repro.core,
            repro.clustering,
            repro.data,
            repro.evaluation,
            repro.experiments,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_noise_label_constant(self):
        assert NOISE_LABEL == -1

    def test_exception_hierarchy(self):
        from repro import (
            DimensionMismatchError,
            EmptyBubbleError,
            InvalidConfigError,
            NotFittedError,
            ReproError,
            UnknownPointError,
        )

        for exc in (
            DimensionMismatchError,
            EmptyBubbleError,
            InvalidConfigError,
            NotFittedError,
            UnknownPointError,
        ):
            assert issubclass(exc, ReproError)
            assert issubclass(exc, Exception)

    def test_birch_and_streaming_available(self):
        from repro import SlidingWindowSummarizer  # noqa: F401
        from repro.birch import CFTree  # noqa: F401
        from repro.clustering import WeightedKMeans  # noqa: F401
        from repro.core import AdaptiveMaintainer  # noqa: F401
