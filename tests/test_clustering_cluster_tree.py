"""Unit tests for the cluster tree structures."""

from __future__ import annotations

from repro.clustering import ClusterNode, ClusterTree


def make_tree() -> ClusterTree:
    root = ClusterNode(start=0, end=100)
    left = ClusterNode(start=0, end=40, split_value=5.0)
    right = ClusterNode(start=40, end=100, split_value=5.0)
    leaf_a = ClusterNode(start=0, end=20, split_value=2.0)
    leaf_b = ClusterNode(start=20, end=40, split_value=2.0)
    left.children = [leaf_a, leaf_b]
    root.children = [left, right]
    return ClusterTree(root=root)


class TestClusterNode:
    def test_size(self):
        assert ClusterNode(start=5, end=17).size == 12

    def test_is_leaf(self):
        tree = make_tree()
        assert not tree.root.is_leaf()
        assert tree.root.children[1].is_leaf()

    def test_contains(self):
        node = ClusterNode(start=10, end=20)
        assert 10 in node
        assert 19 in node
        assert 20 not in node
        assert "x" not in node

    def test_iter_nodes_preorder(self):
        tree = make_tree()
        spans = [node.span() for node in tree.root.iter_nodes()]
        assert spans == [(0, 100), (0, 40), (0, 20), (20, 40), (40, 100)]


class TestClusterTree:
    def test_leaves(self):
        leaves = [leaf.span() for leaf in make_tree().leaves()]
        assert leaves == [(0, 20), (20, 40), (40, 100)]

    def test_nodes_count(self):
        assert len(make_tree().nodes()) == 5

    def test_clusters_excludes_root(self):
        clusters = [node.span() for node in make_tree().clusters()]
        assert (0, 100) not in clusters
        assert len(clusters) == 4

    def test_single_node_tree_cluster_is_root(self):
        tree = ClusterTree(root=ClusterNode(start=0, end=10))
        assert [n.span() for n in tree.clusters()] == [(0, 10)]

    def test_depth(self):
        assert make_tree().depth == 3
        assert ClusterTree(root=ClusterNode(0, 5)).depth == 1
