"""Crash-recovery tests: kill at any point, recover, match the
uninterrupted run bit-for-bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DurableSummarizer,
    PersistenceError,
    SlidingWindowSummarizer,
    WalCorruptionError,
)
from repro.persistence import CheckpointManager, recover_state

DIM = 2
WINDOW = 800
PPB = 40
SEED = 7
NUM_CHUNKS = 18
CHECKPOINT_EVERY = 5


@pytest.fixture(scope="module")
def chunks():
    generator = np.random.default_rng(99)
    return [generator.normal(size=(120, DIM)) for _ in range(NUM_CHUNKS)]


@pytest.fixture(scope="module")
def uninterrupted(chunks):
    """The reference: one process, no crash, no persistence."""
    stream = SlidingWindowSummarizer(
        dim=DIM, window_size=WINDOW, points_per_bubble=PPB, seed=SEED
    )
    for chunk in chunks:
        stream.append(chunk)
    return stream


def assert_summaries_identical(a, b):
    """Bit-identical (n, LS, SS), seeds, memberships and store content."""
    assert len(a.summary) == len(b.summary)
    for bubble_a, bubble_b in zip(a.summary, b.summary):
        assert bubble_a.n == bubble_b.n
        assert np.array_equal(bubble_a.seed, bubble_b.seed)
        assert np.array_equal(
            np.asarray(bubble_a.stats.linear_sum),
            np.asarray(bubble_b.stats.linear_sum),
        )
        assert bubble_a.stats.square_sum == bubble_b.stats.square_sum
        assert bubble_a.members == bubble_b.members
    ids_a, ids_b = a.store.ids(), b.store.ids()
    assert np.array_equal(ids_a, ids_b)
    assert np.array_equal(a.store.points_of(ids_a), b.store.points_of(ids_b))
    assert np.array_equal(a.store.owners_of(ids_a), b.store.owners_of(ids_b))
    assert a.maintainer.retired_ids == b.maintainer.retired_ids
    assert a.maintainer.rng_state == b.maintainer.rng_state


def run_with_crash(tmp_path, chunks, crash_after):
    """Apply ``crash_after`` chunks, crash, recover, apply the rest."""
    state_dir = tmp_path / "state"
    stream = DurableSummarizer(
        state_dir,
        dim=DIM,
        window_size=WINDOW,
        points_per_bubble=PPB,
        seed=SEED,
        checkpoint_every=CHECKPOINT_EVERY,
        fsync=False,
    )
    for chunk in chunks[:crash_after]:
        stream.append(chunk)
    # Simulated crash: release the file handles WITHOUT the goodbye
    # checkpoint a clean close() would write.
    stream.checkpoints.close()
    del stream

    recovered = DurableSummarizer.recover(state_dir, fsync=False)
    for chunk in chunks[crash_after:]:
        recovered.append(chunk)
    return recovered


class TestKillAndRecover:
    @pytest.mark.parametrize(
        "crash_after",
        # Before bootstrap (k=1), at the bootstrap batch, right before /
        # at / right after a checkpoint boundary, and at the very end.
        [1, 2, 4, 5, 6, 9, 14, 17, 18],
    )
    def test_recovery_matches_uninterrupted_run(
        self, tmp_path, chunks, uninterrupted, crash_after
    ):
        recovered = run_with_crash(tmp_path, chunks, crash_after)
        assert recovered.batches_applied == NUM_CHUNKS
        assert_summaries_identical(uninterrupted, recovered)
        recovered.close()

    def test_double_crash(self, tmp_path, chunks, uninterrupted):
        """Crash, recover, crash again, recover again."""
        state_dir = tmp_path / "state"
        stream = DurableSummarizer(
            state_dir,
            dim=DIM,
            window_size=WINDOW,
            points_per_bubble=PPB,
            seed=SEED,
            checkpoint_every=CHECKPOINT_EVERY,
            fsync=False,
        )
        for chunk in chunks[:7]:
            stream.append(chunk)
        stream.checkpoints.close()

        stream = DurableSummarizer.recover(state_dir, fsync=False)
        for chunk in chunks[7:12]:
            stream.append(chunk)
        stream.checkpoints.close()

        stream = DurableSummarizer.recover(state_dir, fsync=False)
        for chunk in chunks[12:]:
            stream.append(chunk)
        assert_summaries_identical(uninterrupted, stream)
        stream.close()

    def test_torn_final_record_recovers_prefix(self, tmp_path, chunks):
        """A crash mid-append loses only the unacknowledged batch."""
        state_dir = tmp_path / "state"
        stream = DurableSummarizer(
            state_dir,
            dim=DIM,
            window_size=WINDOW,
            points_per_bubble=PPB,
            seed=SEED,
            checkpoint_every=100,  # keep everything in the WAL
            fsync=False,
        )
        for chunk in chunks[:8]:
            stream.append(chunk)
        stream.checkpoints.close()
        wal_path = state_dir / "wal.log"
        wal_path.write_bytes(wal_path.read_bytes()[:-20])  # tear batch 7

        recovered = DurableSummarizer.recover(state_dir, fsync=False)
        assert recovered.batches_applied == 7
        recovered.close()

    def test_corrupt_mid_log_fails_loudly(self, tmp_path, chunks):
        state_dir = tmp_path / "state"
        stream = DurableSummarizer(
            state_dir,
            dim=DIM,
            window_size=WINDOW,
            points_per_bubble=PPB,
            seed=SEED,
            checkpoint_every=100,
            fsync=False,
        )
        for chunk in chunks[:6]:
            stream.append(chunk)
        stream.checkpoints.close()
        wal_path = state_dir / "wal.log"
        data = bytearray(wal_path.read_bytes())
        data[40] ^= 0xFF  # inside record 0's payload — far from the tail
        wal_path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            DurableSummarizer.recover(state_dir, fsync=False)

    def test_damaged_newest_snapshot_falls_back(
        self, tmp_path, chunks, uninterrupted
    ):
        """Recovery degrades to an older snapshot + a longer replay.

        The WAL is compacted to the oldest *retained* snapshot at each
        checkpoint (not the newest), which is precisely what makes this
        fallback able to replay forward.
        """
        state_dir = tmp_path / "state"
        stream = DurableSummarizer(
            state_dir,
            dim=DIM,
            window_size=WINDOW,
            points_per_bubble=PPB,
            seed=SEED,
            checkpoint_every=4,
            keep_snapshots=3,
            fsync=False,
        )
        for chunk in chunks[:9]:
            stream.append(chunk)
        stream.checkpoints.close()
        manager = CheckpointManager(state_dir, fsync=False)
        newest = manager.snapshot_paths()[0]
        manager.close()
        newest.write_bytes(b"bitrot")
        recovered = DurableSummarizer.recover(state_dir, fsync=False)
        assert recovered.batches_applied == 9
        for chunk in chunks[9:]:
            recovered.append(chunk)
        assert_summaries_identical(uninterrupted, recovered)
        recovered.close()

    def test_empty_directory_fails_loudly(self, tmp_path):
        with pytest.raises(PersistenceError):
            DurableSummarizer.recover(tmp_path / "nothing-here")

    def test_recover_state_reports_tail(self, tmp_path, chunks):
        state_dir = tmp_path / "state"
        stream = DurableSummarizer(
            state_dir,
            dim=DIM,
            window_size=WINDOW,
            points_per_bubble=PPB,
            seed=SEED,
            checkpoint_every=5,
            fsync=False,
        )
        for chunk in chunks[:8]:
            stream.append(chunk)
        stream.checkpoints.close()
        manager = CheckpointManager(
            state_dir, interval=5, keep=2, fsync=False
        )
        recovered = recover_state(manager)
        assert recovered.snapshot_batches == 5
        assert [r.seq for r in recovered.tail] == [5, 6, 7]
        assert recovered.last_seq == 8
        manager.close()
