"""Trace reconstruction: parsing, generations, critical paths, CLI."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    SpanRecord,
    TraceSet,
    critical_path,
    load_fleet_traces,
    render_trace_report,
)
from repro.observability.tracequery import read_span_records
from repro.service import (
    FleetConfig,
    FleetManager,
    PointEvent,
    serve_events,
)

SYNC = dict(
    window_size=400,
    points_per_bubble=20,
    checkpoint_every=8,
    fsync=False,
    workers=0,
    queue_points=64,
    batch_points=16,
    trace=True,
)


def ev(tenant: str, i: int) -> PointEvent:
    return PointEvent(tenant=tenant, point=(float(i % 7), 0.5), label=i)


def span_line(
    span: int,
    op: str,
    parent: int | None = None,
    trace: str | None = None,
    **fields,
) -> str:
    doc = {
        "schema": 1,
        "seq": span,
        "ts": float(span),
        "kind": "span_start",
        "span": span,
        "parent": parent,
        "op": op,
    }
    if trace is not None:
        doc["trace"] = trace
    doc.update(fields)
    return json.dumps(doc)


def end_line(span: int, op: str, seconds: float, error: bool = False) -> str:
    doc = {
        "schema": 1,
        "kind": "span_end",
        "span": span,
        "op": op,
        "seconds": seconds,
    }
    if error:
        doc["error"] = True
    return json.dumps(doc)


class TestReadSpanRecords:
    def test_pairs_and_parents(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                [
                    span_line(0, "root", trace="t:abc:000001", points=5),
                    span_line(1, "child", parent=0),
                    end_line(1, "child", 0.25),
                    end_line(0, "root", 1.0),
                ]
            )
            + "\n"
        )
        records, skipped = read_span_records(path, "t")
        assert skipped == 0
        root, child = records
        assert root.trace == "t:abc:000001"
        assert root.fields == {"points": 5}
        assert child.parent_id == 0
        assert root.children == [child]
        assert child.trace is None  # only what the line carried
        assert root.seconds == 1.0 and child.seconds == 0.25

    def test_non_span_and_garbage_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"kind": "wal_append", "bytes": 10}),
                    "not json at all",
                    span_line(0, "root"),
                    end_line(99, "ghost", 0.1),  # unmatched end
                    end_line(0, "root", 0.5),
                ]
            )
            + "\n"
        )
        records, skipped = read_span_records(path, "t")
        assert len(records) == 1
        assert skipped == 2  # the garbage line + the unmatched end

    def test_span_id_reuse_starts_new_generation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                [
                    span_line(0, "root", trace="t:aaa:000001"),
                    end_line(0, "root", 1.0),
                    # Fleet resumed: a fresh tracer reuses span id 0.
                    span_line(0, "root", trace="t:bbb:000001"),
                    span_line(1, "child", parent=0),
                    end_line(1, "child", 0.1),
                    end_line(0, "root", 0.4),
                ]
            )
            + "\n"
        )
        records, _ = read_span_records(path, "t")
        assert [r.generation for r in records] == [0, 1, 1]
        first, second, child = records
        assert first.children == []  # never linked across runs
        assert second.children == [child]

    def test_torn_tail_leaves_span_unclosed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            span_line(0, "root", trace="t:abc:000001") + "\n"
        )
        records, skipped = read_span_records(path, "t")
        assert skipped == 0
        assert not records[0].closed


class TestCriticalPath:
    def build(self, durations: dict[int, float], edges) -> SpanRecord:
        nodes = {
            i: SpanRecord(
                tenant="t",
                generation=0,
                span_id=i,
                parent_id=None,
                op=f"op{i}",
                trace="t:abc:000001" if i == 0 else None,
                start_ts=0.0,
                seconds=seconds,
            )
            for i, seconds in durations.items()
        }
        for parent, child in edges:
            nodes[child].parent_id = parent
            nodes[parent].children.append(nodes[child])
        return nodes[0]

    def test_self_times_telescope_to_root(self):
        root = self.build(
            {0: 1.0, 1: 0.6, 2: 0.3, 3: 0.5, 4: 0.2},
            [(0, 1), (0, 3), (1, 2), (1, 4)],
        )
        path = critical_path(root)
        assert [step["op"] for step in path] == ["op0", "op1", "op2"]
        assert sum(step["self_seconds"] for step in path) == pytest.approx(
            root.seconds
        )
        assert path[-1]["self_seconds"] == pytest.approx(0.3)

    def test_unclosed_children_are_skipped(self):
        root = self.build({0: 1.0, 1: 0.9, 2: 0.2}, [(0, 1), (0, 2)])
        root.children[0].seconds = None  # crashed mid-span
        path = critical_path(root)
        assert [step["op"] for step in path] == ["op0", "op2"]

    def test_clock_skew_never_goes_negative(self):
        # A child measured longer than its parent (timer granularity):
        # self time clamps at zero instead of going negative.
        root = self.build({0: 0.5, 1: 0.6}, [(0, 1)])
        path = critical_path(root)
        assert path[0]["self_seconds"] == 0.0


class TestFleetTraces:
    def run_fleet(self, tmp_path, n=200):
        fleet = FleetManager(tmp_path / "f", FleetConfig(**SYNC))
        serve_events(
            fleet,
            [ev(f"tenant-{i % 3}", i) for i in range(n)],
        )
        return load_fleet_traces(tmp_path / "f")

    def test_traces_reconstruct_across_shards(self, tmp_path):
        traces = self.run_fleet(tmp_path)
        assert traces.files == 3
        assert traces.unclosed == 0
        assert traces.skipped_lines == 0
        # Every trace root is an ingest_batch span with a minted id.
        for trace_id, root in traces.traces.items():
            assert root.op == "ingest_batch"
            tenant, epoch, seq = trace_id.split(":")
            assert tenant == root.tenant
            assert len(epoch) == 6 and int(seq) >= 1
        # Ids are unique fleet-wide by construction.
        assert len(traces.traces) == sum(
            1 for record in traces.spans if record.op == "ingest_batch"
        )

    def test_descendants_inherit_the_trace_id(self, tmp_path):
        traces = self.run_fleet(tmp_path)
        # Every span nested under an ingest_batch root carries its
        # trace id; only spans opened outside any trace context (the
        # close-time checkpoint) may go without one.
        inherited = 0
        for record in traces.spans:
            if record.parent_id is not None:
                assert record.trace is not None, record.op
                inherited += 1
            elif record.op == "ingest_batch":
                assert record.trace is not None
            else:
                assert record.op == "checkpoint"
        assert inherited > 0

    def test_critical_path_sums_to_batch_wall_clock(self, tmp_path):
        """The acceptance check: critical-path self-times telescope to
        the root ingest_batch span's measured batch duration."""
        traces = self.run_fleet(tmp_path)
        checked = 0
        for root in traces.traces.values():
            if not root.closed:
                continue
            path = critical_path(root)
            assert sum(
                step["self_seconds"] for step in path
            ) == pytest.approx(root.seconds, rel=1e-9)
            checked += 1
        assert checked >= 10

    def test_op_stats_cover_nested_ops(self, tmp_path):
        traces = self.run_fleet(tmp_path)
        stats = {row["op"]: row for row in traces.op_stats()}
        assert {"ingest_batch", "stream_append", "wal_append"} <= set(
            stats
        )
        row = stats["ingest_batch"]
        assert row["count"] == len(traces.traces)
        assert 0 < row["p50_seconds"] <= row["p95_seconds"]

    def test_slowest_traces_sorted(self, tmp_path):
        traces = self.run_fleet(tmp_path)
        slowest = traces.slowest_traces(5)
        durations = [root.seconds for root in slowest]
        assert durations == sorted(durations, reverse=True)

    def test_report_renders(self, tmp_path):
        traces = self.run_fleet(tmp_path)
        report = render_trace_report(traces, top=2)
        assert "per-op latency" in report
        assert "critical path, top 2" in report
        assert "exemplar trace ids:" in report

    def test_empty_fleet_dir_renders_hint(self, tmp_path):
        (tmp_path / "f" / "tenants").mkdir(parents=True)
        report = render_trace_report(load_fleet_traces(tmp_path / "f"))
        assert "no spans found" in report

    def test_resume_appends_new_generation(self, tmp_path):
        self.run_fleet(tmp_path, n=120)
        fleet = FleetManager.recover(
            tmp_path / "f", config=FleetConfig(**SYNC)
        )
        serve_events(
            fleet, [ev(f"tenant-{i % 3}", i) for i in range(120)]
        )
        traces = load_fleet_traces(tmp_path / "f")
        generations = {
            record.generation
            for record in traces.spans
            if record.tenant == "tenant-0"
        }
        assert generations == {0, 1}
        assert traces.unclosed == 0

    def test_trace_off_writes_no_files(self, tmp_path):
        config = FleetConfig(**dict(SYNC, trace=False))
        fleet = FleetManager(tmp_path / "f", config)
        serve_events(fleet, [ev("t", i) for i in range(40)])
        traces = load_fleet_traces(tmp_path / "f")
        assert traces.files == 0
        assert traces.spans == []


class TestTraceSetEdges:
    def test_duplicate_trace_id_first_wins(self):
        a = SpanRecord(
            tenant="t",
            generation=0,
            span_id=0,
            parent_id=None,
            op="ingest_batch",
            trace="t:abc:000001",
            start_ts=0.0,
            seconds=1.0,
        )
        b = SpanRecord(
            tenant="t",
            generation=1,
            span_id=0,
            parent_id=None,
            op="ingest_batch",
            trace="t:abc:000001",
            start_ts=5.0,
            seconds=2.0,
        )
        traces = TraceSet([a, b])
        assert traces.traces["t:abc:000001"] is a

    def test_unclosed_roots_excluded_from_slowest(self):
        a = SpanRecord(
            tenant="t",
            generation=0,
            span_id=0,
            parent_id=None,
            op="ingest_batch",
            trace="t:abc:000001",
            start_ts=0.0,
        )
        traces = TraceSet([a])
        assert traces.unclosed == 1
        assert traces.slowest_traces() == []
