"""Unit tests for reachability-plot cluster extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    clusters_at_threshold,
    extract_candidates,
    extract_cluster_tree,
    labels_from_spans,
    local_maxima,
    majority_bubble_labels,
)
from repro.clustering.reachability import ExpandedPlot

INF = np.inf


class TestClustersAtThreshold:
    def test_two_valleys(self):
        reach = np.array([INF, 0.1, 0.1, 0.1, 5.0, 0.1, 0.1, 0.1])
        spans = clusters_at_threshold(reach, 1.0, min_size=2)
        assert spans == [(0, 4), (4, 8)]

    def test_high_bar_starts_its_group(self):
        # The entry carrying the separation bar belongs to the following
        # group (its bar is its distance backwards).
        reach = np.array([INF, 0.1, 3.0, 0.1])
        spans = clusters_at_threshold(reach, 1.0, min_size=1)
        assert spans == [(0, 2), (2, 4)]

    def test_min_size_filters_noise_runs(self):
        reach = np.array([INF, 0.1, 0.1, 9.0, 9.0, 9.0, 0.1, 0.1])
        spans = clusters_at_threshold(reach, 1.0, min_size=2)
        # Positions 3 and 4 form singleton groups and are dropped; the
        # group starting at 5 has size 3.
        assert spans == [(0, 3), (5, 8)]

    def test_all_below_threshold_single_cluster(self):
        reach = np.array([INF, 0.1, 0.2, 0.1])
        assert clusters_at_threshold(reach, 1.0) == [(0, 4)]

    def test_empty_plot(self):
        assert clusters_at_threshold(np.empty(0), 1.0) == []


class TestLocalMaxima:
    def test_simple_peak(self):
        reach = np.array([INF, 1.0, 5.0, 1.0])
        assert local_maxima(reach) == [2]

    def test_position_zero_excluded(self):
        reach = np.array([INF, 1.0, 1.0, 1.0])
        assert 0 not in local_maxima(reach)

    def test_plateau_contributes_once(self):
        reach = np.array([INF, 1.0, 5.0, 5.0, 5.0, 1.0])
        maxima = local_maxima(reach)
        assert maxima == [4]  # last entry of the plateau

    def test_last_position_can_be_maximum(self):
        reach = np.array([INF, 1.0, 2.0, 6.0])
        assert 3 in local_maxima(reach)

    def test_monotone_plot_has_boundary_max_only(self):
        reach = np.array([INF, 1.0, 2.0, 3.0, 4.0])
        assert local_maxima(reach) == [4]


class TestExtractClusterTree:
    def test_splits_two_valleys(self):
        reach = np.concatenate(
            [[INF], np.full(9, 0.1), [5.0], np.full(9, 0.1)]
        )
        tree = extract_cluster_tree(reach, min_size=5)
        leaves = sorted(leaf.span() for leaf in tree.leaves())
        assert leaves == [(0, 10), (10, 20)]
        assert tree.root.span() == (0, 20)
        assert tree.depth == 2

    def test_nested_structure(self):
        # Big separation at 20, small separations inside the first half.
        reach = np.concatenate(
            [
                [INF], np.full(9, 0.1),
                [1.0], np.full(9, 0.1),
                [8.0], np.full(19, 0.1),
            ]
        )
        tree = extract_cluster_tree(reach, min_size=5, significance=0.75)
        assert sorted(leaf.span() for leaf in tree.leaves()) == [
            (0, 10),
            (10, 20),
            (20, 40),
        ]
        # The top split separates [0,20) from [20,40).
        top_spans = sorted(child.span() for child in tree.root.children)
        assert top_spans == [(0, 20), (20, 40)]

    def test_insignificant_bump_not_split(self):
        # A bar barely above the region's average is not a cluster split.
        reach = np.concatenate(
            [[INF], np.full(9, 1.0), [1.2], np.full(9, 1.0)]
        )
        tree = extract_cluster_tree(reach, min_size=3, significance=0.75)
        assert tree.root.is_leaf()

    def test_min_size_respected(self):
        reach = np.concatenate([[INF], np.full(3, 0.1), [9.0], np.full(20, 0.1)])
        tree = extract_cluster_tree(reach, min_size=5)
        # The left side would have size 4 < 5: no split at position 4.
        assert tree.root.is_leaf()

    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError):
            extract_cluster_tree(np.empty(0))

    def test_significance_validated(self):
        with pytest.raises(ValueError):
            extract_cluster_tree(np.array([INF, 1.0]), significance=0.0)


class TestExtractCandidates:
    def test_includes_multiple_resolutions(self):
        reach = np.concatenate(
            [
                [INF], np.full(9, 0.1),
                [1.0], np.full(9, 0.1),
                [8.0], np.full(19, 0.1),
            ]
        )
        spans = extract_candidates(reach, min_size=5, num_levels=16)
        assert (0, 10) in spans      # finest resolution
        assert (10, 20) in spans
        assert (0, 20) in spans      # the merged pair at a coarser cut
        assert (20, 40) in spans

    def test_deduplicates(self):
        reach = np.array([INF] + [0.1] * 9)
        spans = extract_candidates(reach, min_size=2, num_levels=32)
        assert spans == [(0, 10)]

    def test_all_infinite_plot(self):
        spans = extract_candidates(np.array([INF, INF, INF]), min_size=1)
        assert spans == []


class TestLabelsFromSpans:
    def test_assigns_and_leaves_noise(self):
        labels = labels_from_spans(6, [(0, 2), (4, 6)])
        assert labels.tolist() == [0, 0, -1, -1, 1, 1]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            labels_from_spans(5, [(0, 3), (2, 5)])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            labels_from_spans(3, [(0, 4)])
        with pytest.raises(ValueError):
            labels_from_spans(3, [(2, 2)])


class TestMajorityBubbleLabels:
    def test_majority_vote(self):
        expanded = ExpandedPlot(
            reachability=np.zeros(6),
            source=np.array([7, 7, 7, 8, 8, 8]),
        )
        mapping = majority_bubble_labels(expanded, [(0, 3), (3, 6)])
        assert mapping == {7: 0, 8: 1}

    def test_straddling_bubble_goes_to_majority(self):
        expanded = ExpandedPlot(
            reachability=np.zeros(5),
            source=np.array([7, 7, 8, 8, 8]),
        )
        # Span boundary cuts bubble 8? No: spans are (0,3) and (3,5); the
        # first span holds entries [7,7,8], second [8,8]. Bubble 8 has two
        # of three entries in the second span.
        mapping = majority_bubble_labels(expanded, [(0, 3), (3, 5)])
        assert mapping[7] == 0
        assert mapping[8] == 1

    def test_uncovered_bubble_is_noise(self):
        expanded = ExpandedPlot(
            reachability=np.zeros(4),
            source=np.array([1, 1, 2, 2]),
        )
        mapping = majority_bubble_labels(expanded, [(0, 2)])
        assert mapping == {1: 0, 2: -1}
