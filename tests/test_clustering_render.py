"""Unit tests for the ASCII reachability renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import PointOptics, render_reachability

INF = np.inf


class TestRenderReachability:
    def test_dimensions(self):
        reach = np.array([INF, 0.5, 0.2, 0.9, 0.1])
        text = render_reachability(reach, width=5, height=4)
        lines = text.splitlines()
        assert len(lines) == 4 + 2  # bars + rule + annotation
        assert all(len(line) == 5 for line in lines[:5])

    def test_tallest_finite_bar_reaches_top(self):
        reach = np.array([INF, 0.1, 1.0, 0.1])
        text = render_reachability(reach, width=4, height=6)
        top_row = text.splitlines()[0]
        assert "#" in top_row

    def test_infinite_bars_hit_ceiling(self):
        # The inf bar and the finite maximum reach the top; a small finite
        # bar does not.
        reach = np.array([INF, 0.1, 0.5])
        top_row = render_reachability(reach, width=3, height=5).splitlines()[0]
        assert top_row[0] == "#"
        assert top_row[1] == " "
        assert top_row[2] == "#"

    def test_separator_survives_downsampling(self):
        # 1000 low entries with a single tall separator: max-pooling must
        # keep it visible at width 50.
        reach = np.full(1000, 0.1)
        reach[0] = INF
        reach[500] = 10.0
        text = render_reachability(reach, width=50, height=8)
        top_row = text.splitlines()[0]
        assert top_row.count("#") >= 2  # the inf opener and the separator

    def test_annotation_mentions_max(self):
        reach = np.array([INF, 0.25])
        assert "0.25" in render_reachability(reach, width=2, height=3)

    def test_custom_bar_character(self):
        reach = np.array([INF, 0.5])
        text = render_reachability(reach, width=2, height=3, bar="*")
        assert "*" in text and "#" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_reachability(np.empty(0))
        with pytest.raises(ValueError):
            render_reachability(np.array([1.0]), width=0)
        with pytest.raises(ValueError):
            render_reachability(np.array([1.0]), height=0)

    def test_all_infinite_plot(self):
        text = render_reachability(np.array([INF, INF]), width=2, height=3)
        assert text.splitlines()[0] == "##"

    def test_end_to_end_with_optics(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(50, 2)),
                rng.normal([10, 0], 0.2, size=(50, 2)),
            ]
        )
        plot = PointOptics(min_pts=5).fit(points)
        text = render_reachability(plot.reachability, width=60, height=10)
        # Two valleys separated by one tall column: the top row has very
        # few filled cells.
        top_row = text.splitlines()[0]
        assert 1 <= top_row.count("#") <= 4
