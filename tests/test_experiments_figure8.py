"""Unit tests for the Figure 8 snapshot experiment."""

from __future__ import annotations

from repro.experiments import (
    ExperimentConfig,
    render_figure8,
    run_figure8,
)

QUICK = ExperimentConfig(
    scenario="complex",
    dim=2,
    initial_size=1_500,
    num_bubbles=30,
    update_fraction=0.1,
    num_batches=4,
    min_pts=15,
    seed=0,
)


class TestFigure8:
    def test_snapshots_at_checkpoints(self):
        snapshots = run_figure8(QUICK, checkpoints=(0, 2, 4))
        assert [s.batch_index for s in snapshots] == [0, 2, 4]
        for snap in snapshots:
            assert "max finite reachability" in snap.plot_text
        assert snapshots[0].num_rebuilt == 0

    def test_initial_checkpoint_optional(self):
        snapshots = run_figure8(QUICK, checkpoints=(1, 3))
        assert [s.batch_index for s in snapshots] == [1, 3]

    def test_render_concatenates(self):
        snapshots = run_figure8(QUICK, checkpoints=(0, 2))
        text = render_figure8(snapshots)
        assert "Figure 8" in text
        assert "after 0 update batch(es)" in text
        assert "after 2 update batch(es)" in text

    def test_plots_differ_over_time(self):
        snapshots = run_figure8(QUICK, checkpoints=(0, 4))
        assert snapshots[0].plot_text != snapshots[1].plot_text
