"""Unit tests for the β quality measure and Chebyshev classification."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    BetaQuality,
    BubbleClass,
    BubbleSet,
    chebyshev_k,
    classify_values,
)
from repro.exceptions import InvalidConfigError


class TestChebyshevK:
    def test_paper_default(self):
        # p = 0.9 → k = 1/sqrt(0.1) = sqrt(10)
        assert chebyshev_k(0.9) == pytest.approx(math.sqrt(10.0))

    def test_eighty_percent(self):
        assert chebyshev_k(0.8) == pytest.approx(math.sqrt(5.0))

    def test_monotone_in_probability(self):
        ks = [chebyshev_k(p) for p in (0.5, 0.7, 0.9, 0.99)]
        assert ks == sorted(ks)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_out_of_range(self, bad):
        with pytest.raises(InvalidConfigError):
            chebyshev_k(bad)


class TestClassifyValues:
    def test_uniform_values_all_good(self):
        report = classify_values(np.full(10, 0.1), probability=0.9)
        assert all(c is BubbleClass.GOOD for c in report.classes)
        assert report.std == 0.0

    def test_high_outlier_flagged_over_filled(self):
        values = np.array([0.01] * 50 + [0.5])
        report = classify_values(values, probability=0.9)
        assert report.classes[-1] is BubbleClass.OVER_FILLED
        assert report.over_filled_ids == (50,)

    def test_low_outlier_flagged_under_filled(self):
        # Tight mass near 1.0 with one value at 0 and enough samples that
        # the lower boundary stays positive.
        values = np.array([1.0, 1.001, 0.999] * 40 + [0.0])
        report = classify_values(values, probability=0.9)
        assert report.classes[-1] is BubbleClass.UNDER_FILLED

    def test_boundaries_formula(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        report = classify_values(values, probability=0.9)
        k = chebyshev_k(0.9)
        assert report.lower == pytest.approx(values.mean() - k * values.std())
        assert report.upper == pytest.approx(values.mean() + k * values.std())
        assert report.k == pytest.approx(k)

    def test_id_partitions_are_disjoint_and_complete(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([rng.normal(1.0, 0.01, 100), [5.0, -3.0]])
        report = classify_values(values, probability=0.9)
        ids = (
            set(report.good_ids)
            | set(report.under_filled_ids)
            | set(report.over_filled_ids)
        )
        assert ids == set(range(len(values)))
        assert not set(report.good_ids) & set(report.over_filled_ids)

    def test_class_of(self):
        report = classify_values(np.array([0.1, 0.1, 9.9]), probability=0.9)
        assert report.class_of(0) is report.classes[0]

    def test_empty_values(self):
        report = classify_values(np.empty(0), probability=0.9)
        assert report.classes == ()


class TestBetaQuality:
    def test_beta_is_count_over_database_size(self):
        bubbles = BubbleSet(dim=2)
        for i in range(4):
            bubbles.add_bubble(np.zeros(2))
        for pid in range(8):
            bubbles[pid % 2].absorb(pid, np.zeros(2))
        report = BetaQuality(0.9).classify(bubbles, database_size=8)
        assert report.values == pytest.approx([0.5, 0.5, 0.0, 0.0])

    def test_over_filled_bubble_detected(self):
        bubbles = BubbleSet(dim=2)
        for i in range(20):
            bubbles.add_bubble(np.zeros(2))
        pid = 0
        # 19 bubbles with 10 points, one with 300.
        for b in range(19):
            for _ in range(10):
                bubbles[b].absorb(pid, np.zeros(2))
                pid += 1
        for _ in range(300):
            bubbles[19].absorb(pid, np.zeros(2))
            pid += 1
        report = BetaQuality(0.9).classify(bubbles, database_size=pid)
        assert report.classes[19] is BubbleClass.OVER_FILLED
        assert all(
            report.classes[b] is BubbleClass.GOOD for b in range(19)
        )

    def test_probability_validated(self):
        with pytest.raises(InvalidConfigError):
            BetaQuality(1.5)

    def test_probability_accessor(self):
        assert BetaQuality(0.8).probability == 0.8
