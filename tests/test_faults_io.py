"""Faulty IO, retry backoff, and the WAL append rollback guarantee."""

from __future__ import annotations

import errno
import io

import numpy as np
import pytest

from repro import UpdateBatch
from repro.faults import (
    FAILPOINTS,
    FailpointRegistry,
    FaultyFile,
    RetryPolicy,
    fsync,
    is_transient,
    maybe_wrap,
)
from repro.persistence import WriteAheadLog
from repro.persistence.snapshot import read_snapshot, write_snapshot


def make_batch(rng, deletions=(), m=5, d=2):
    return UpdateBatch(
        deletions=tuple(deletions),
        insertions=rng.normal(size=(m, d)),
        insertion_labels=tuple([-1] * m),
    )


class TestFaultyFile:
    def test_error_fires_before_bytes_land(self):
        registry = FailpointRegistry()
        registry.arm("io.t.write", "error", errno=errno.ENOSPC)
        sink = io.BytesIO()
        proxy = FaultyFile(sink, "t", registry=registry)
        with pytest.raises(OSError) as excinfo:
            proxy.write(b"payload")
        assert excinfo.value.errno == errno.ENOSPC
        assert sink.getvalue() == b""

    def test_unarmed_operations_pass_through(self):
        registry = FailpointRegistry()
        sink = io.BytesIO()
        proxy = FaultyFile(sink, "t", registry=registry)
        assert proxy.write(b"abc") == 3
        proxy.flush()
        proxy.seek(0)
        assert proxy.read() == b"abc"

    def test_short_read_returns_prefix_and_rewinds_cursor(self):
        registry = FailpointRegistry()
        registry.arm("io.t.read", "short_read", fraction=0.5, times=1)
        source = io.BytesIO(b"abcdefgh")
        proxy = FaultyFile(source, "t", registry=registry)
        assert proxy.read(8) == b"abcd"
        # The cursor sits where the short read ended: the rest is still
        # readable, as after a real short read.
        assert proxy.read(8) == b"efgh"

    def test_torn_write_persists_prefix_then_errors(self, tmp_path):
        registry = FailpointRegistry()
        registry.arm(
            "io.t.write", "torn", fraction=0.5, then="error",
            errno=errno.EIO,
        )
        path = tmp_path / "torn.bin"
        with open(path, "wb") as raw:
            proxy = FaultyFile(raw, "t", registry=registry)
            with pytest.raises(OSError):
                proxy.write(b"abcdefgh")
        assert path.read_bytes() == b"abcd"

    def test_read_error_fault(self):
        registry = FailpointRegistry()
        registry.arm("io.t.read", "error")
        proxy = FaultyFile(io.BytesIO(b"abc"), "t", registry=registry)
        with pytest.raises(OSError):
            proxy.read()

    def test_flush_error_fault(self):
        registry = FailpointRegistry()
        registry.arm("io.t.flush", "error")
        proxy = FaultyFile(io.BytesIO(), "t", registry=registry)
        with pytest.raises(OSError):
            proxy.flush()

    def test_delay_fault_still_writes(self):
        registry = FailpointRegistry()
        registry.arm("io.t.write", "delay", delay=3.0)
        slept: list[float] = []
        sink = io.BytesIO()
        proxy = FaultyFile(sink, "t", registry=registry, sleep=slept.append)
        proxy.write(b"abc")
        assert slept == [3.0]
        assert sink.getvalue() == b"abc"


class TestMaybeWrap:
    def test_returns_raw_handle_when_nothing_armed(self):
        registry = FailpointRegistry()
        handle = io.BytesIO()
        assert maybe_wrap(handle, "wal", registry=registry) is handle

    def test_wraps_when_a_domain_fault_is_armed(self):
        registry = FailpointRegistry()
        registry.arm("io.wal.write", "error")
        handle = io.BytesIO()
        wrapped = maybe_wrap(handle, "wal", registry=registry)
        assert isinstance(wrapped, FaultyFile)
        # Other domains stay unwrapped.
        assert maybe_wrap(handle, "snapshot", registry=registry) is handle


class TestFaultyFsync:
    def test_armed_fsync_raises_instead_of_syncing(self, tmp_path):
        registry = FailpointRegistry()
        registry.arm("io.wal.fsync", "error", errno=errno.EIO)
        with open(tmp_path / "f", "wb") as handle:
            handle.write(b"x")
            with pytest.raises(OSError):
                fsync(handle.fileno(), "wal", registry=registry)
            # Disarmed, the same call syncs fine.
            registry.clear()
            fsync(handle.fileno(), "wal", registry=registry)


class TestIsTransient:
    @pytest.mark.parametrize(
        "code", [errno.EIO, errno.EAGAIN, errno.EINTR, errno.EBUSY]
    )
    def test_transient_errnos(self, code):
        assert is_transient(OSError(code, "x"))

    def test_enospc_is_not_transient(self):
        assert not is_transient(OSError(errno.ENOSPC, "x"))

    def test_non_oserror_is_not_transient(self):
        assert not is_transient(ValueError("x"))


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.01, multiplier=2.0, max_delay=0.03
        )
        assert policy.delay_for(0) == pytest.approx(0.01)
        assert policy.delay_for(1) == pytest.approx(0.02)
        assert policy.delay_for(2) == pytest.approx(0.03)  # capped
        assert policy.delay_for(3) == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_transient_failure_heals_within_attempts(self):
        slept: list[float] = []
        policy = RetryPolicy(attempts=3, sleep=slept.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(errno.EIO, "flaky")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2

    def test_non_transient_error_propagates_immediately(self):
        slept: list[float] = []
        policy = RetryPolicy(attempts=5, sleep=slept.append)
        calls = {"n": 0}

        def full_disk():
            calls["n"] += 1
            raise OSError(errno.ENOSPC, "disk full")

        with pytest.raises(OSError) as excinfo:
            policy.call(full_disk)
        assert excinfo.value.errno == errno.ENOSPC
        assert calls["n"] == 1
        assert slept == []

    def test_attempts_exhausted_reraises_last_error(self):
        policy = RetryPolicy(attempts=2, sleep=lambda _: None)
        calls = {"n": 0}

        def always_eio():
            calls["n"] += 1
            raise OSError(errno.EIO, "still broken")

        with pytest.raises(OSError):
            policy.call(always_eio)
        assert calls["n"] == 2

    def test_on_retry_hook_sees_each_failed_attempt(self):
        policy = RetryPolicy(attempts=3, sleep=lambda _: None)
        seen: list[tuple[int, int]] = []

        def failing():
            raise OSError(errno.EIO, "x")

        with pytest.raises(OSError):
            policy.call(
                failing,
                on_retry=lambda a, e: seen.append((a, e.errno)),
            )
        assert seen == [(1, errno.EIO), (2, errno.EIO)]


class TestWalAppendRollback:
    """A failed append must leave the log byte-identical (satellite #2)."""

    def test_write_error_rolls_the_file_back(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=False)
        wal.append(0, make_batch(rng))
        before = (tmp_path / "wal.log").read_bytes()

        # Persistent (non-transient) error on every write attempt.
        FAILPOINTS.arm("io.wal.write", "error", errno="ENOSPC")
        with pytest.raises(OSError):
            wal.append(1, make_batch(rng))
        FAILPOINTS.clear()

        assert (tmp_path / "wal.log").read_bytes() == before
        # The handle position was restored too: the next append lands
        # cleanly and replay sees exactly two intact records.
        wal.append(1, make_batch(rng))
        records = wal.replay()
        assert [r.seq for r in records] == [0, 1]
        wal.close()

    def test_torn_write_error_is_truncated_before_raising(
        self, tmp_path, rng
    ):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=False)
        wal.append(0, make_batch(rng))
        before = (tmp_path / "wal.log").read_bytes()

        FAILPOINTS.arm(
            "io.wal.write", "torn", fraction=0.5, then="error",
            errno="ENOSPC",
        )
        with pytest.raises(OSError):
            wal.append(1, make_batch(rng))
        FAILPOINTS.clear()

        # The torn prefix the fault fsync'd to disk was rolled back.
        assert (tmp_path / "wal.log").read_bytes() == before
        wal.append(1, make_batch(rng))
        assert [r.seq for r in wal.replay()] == [0, 1]
        wal.close()

    def test_fsync_failure_rolls_back_too(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=True)
        wal.append(0, make_batch(rng))
        before = (tmp_path / "wal.log").read_bytes()

        FAILPOINTS.arm("io.wal.fsync", "error", errno="ENOSPC")
        with pytest.raises(OSError):
            wal.append(1, make_batch(rng))
        FAILPOINTS.clear()

        assert (tmp_path / "wal.log").read_bytes() == before
        wal.append(1, make_batch(rng))
        assert [r.seq for r in wal.replay()] == [0, 1]
        wal.close()

    def test_transient_error_is_retried_to_success(self, tmp_path, rng):
        slept: list[float] = []
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            fsync=False,
            retry=RetryPolicy(attempts=3, sleep=slept.append),
        )
        # EIO twice, then heal: the append must succeed transparently.
        FAILPOINTS.arm("io.wal.write", "error", errno="EIO", times=2)
        wal.append(0, make_batch(rng))
        FAILPOINTS.clear()
        assert len(slept) == 2
        assert [r.seq for r in wal.replay()] == [0]
        wal.close()

    def test_retries_are_counted_and_traced(self, tmp_path, rng):
        from repro.observability import EventTracer, Observability

        obs = Observability(tracer=EventTracer())
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            fsync=False,
            retry=RetryPolicy(attempts=3, sleep=lambda _: None),
            obs=obs,
        )
        FAILPOINTS.arm("io.wal.write", "error", errno="EIO", times=1)
        wal.append(0, make_batch(rng))
        FAILPOINTS.clear()
        metric = obs.metrics.get(
            "repro_io_retries_total", labels={"operation": "wal_append"}
        )
        assert metric is not None and metric.value == 1
        events = obs.tracer.events("io_retry")
        assert len(events) == 1
        assert events[0].fields["operation"] == "wal_append"
        wal.close()


class TestSnapshotWriteFaults:
    def test_write_error_leaves_no_tmp_behind(self, tmp_path, rng):
        from repro import SlidingWindowSummarizer

        stream = SlidingWindowSummarizer(
            dim=2, window_size=200, points_per_bubble=20, seed=3
        )
        stream.append(rng.normal(size=(80, 2)))
        state = stream.capture_state(1)
        path = tmp_path / "snapshot-000000000001.npz"

        FAILPOINTS.arm("io.snapshot.write", "error", errno="ENOSPC")
        with pytest.raises(OSError):
            write_snapshot(path, state, fsync=False)
        FAILPOINTS.clear()

        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_transient_write_error_is_retried(self, tmp_path, rng):
        from repro import SlidingWindowSummarizer

        stream = SlidingWindowSummarizer(
            dim=2, window_size=200, points_per_bubble=20, seed=3
        )
        stream.append(rng.normal(size=(80, 2)))
        state = stream.capture_state(1)
        path = tmp_path / "snapshot-000000000001.npz"

        FAILPOINTS.arm("io.snapshot.write", "error", errno="EIO", times=1)
        write_snapshot(
            path,
            state,
            fsync=False,
            retry=RetryPolicy(attempts=3, sleep=lambda _: None),
        )
        FAILPOINTS.clear()

        restored = read_snapshot(path)
        assert restored.batches_applied == 1
        assert np.array_equal(restored.store_ids, state.store_ids)
