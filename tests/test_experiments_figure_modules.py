"""Unit tests for the figure 9/10/11 runner modules (structure level).

The shape claims are covered in ``test_experiments_figures.py``; these
tests pin the runners' mechanics: sweep-point structure, repetition
accounting, and the construction-pruning anchor.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    construction_pruning,
    run_figure9,
    run_figure10,
    run_figure11,
)

TINY = ExperimentConfig(
    scenario="complex",
    dim=2,
    initial_size=1_000,
    num_bubbles=20,
    update_fraction=0.1,
    num_batches=2,
    min_pts=15,
    seed=0,
)


class TestFigure9Runner:
    def test_points_follow_requested_fractions(self):
        points = run_figure9(
            TINY, update_fractions=(0.05, 0.1), repetitions=1
        )
        assert [p.update_fraction for p in points] == [0.05, 0.1]

    def test_summary_pools_batches_and_repetitions(self):
        points = run_figure9(TINY, update_fractions=(0.1,), repetitions=2)
        # 2 repetitions x 2 batches = 4 per-batch values pooled.
        assert points[0].rebuilt_fraction.count == 4

    def test_fractions_bounded(self):
        points = run_figure9(TINY, update_fractions=(0.1,), repetitions=1)
        summary = points[0].rebuilt_fraction
        assert 0.0 <= summary.mean <= 1.0


class TestFigure10Runner:
    def test_points_and_pooling(self):
        points = run_figure10(TINY, update_fractions=(0.1,), repetitions=2)
        assert points[0].pruned_fraction.count == 4
        assert 0.0 <= points[0].pruned_fraction.mean <= 1.0

    def test_construction_pruning_anchor(self):
        anchor = construction_pruning(TINY, repetitions=2)
        assert anchor.count == 2
        assert 0.0 < anchor.mean < 1.0


class TestFigure11Runner:
    def test_ratios_positive(self):
        points = run_figure11(TINY, update_fractions=(0.1,), repetitions=1)
        assert points[0].saving_factor.mean > 1.0

    def test_multiple_fractions_ordered_output(self):
        points = run_figure11(
            TINY, update_fractions=(0.05, 0.1), repetitions=1
        )
        assert [p.update_fraction for p in points] == [0.05, 0.1]


class TestConfigValidation:
    def test_experiment_config_is_frozen(self):
        with pytest.raises(AttributeError):
            TINY.dim = 3  # type: ignore[misc]

    def test_table1_row_counts(self):
        from repro.experiments import run_table1

        rows = run_table1(
            TINY,
            repetitions=1,
            datasets=(("A", "random", 2), ("B", "appear", 2)),
        )
        assert [r.dataset for r in rows] == ["A", "A", "B", "B"]
        assert [r.scheme for r in rows] == [
            "complete", "inc", "complete", "inc",
        ]
