"""Unit tests for the metrics registry and its exposition formats."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidConfigError
from repro.observability import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    escape_help,
    escape_label_value,
    get_registry,
    to_json,
    to_prometheus,
    write_metrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("events_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        a = registry.counter("events_total", labels={"kind": "split"})
        b = registry.counter("events_total", labels={"kind": "merge"})
        assert a is not b
        a.inc(3)
        assert b.value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(InvalidConfigError, match="already registered"):
            registry.gauge("x_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(InvalidConfigError, match="invalid metric name"):
            MetricsRegistry().counter("bad name")


class TestGauge:
    def test_set_and_shift(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            hist.observe(value)
        # Bounds are inclusive upper bounds; 100.0 goes to +Inf.
        assert hist.bucket_counts() == (2, 1, 1, 1)
        assert hist.count == 5
        assert hist.sum == pytest.approx(111.5)

    def test_bounds_must_increase(self):
        with pytest.raises(InvalidConfigError, match="strictly"):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_TIME_BUCKETS == tuple(sorted(DEFAULT_TIME_BUCKETS))
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 5.0


class TestTimer:
    def test_context_manager_records_one_observation(self):
        registry = MetricsRegistry()
        with registry.timer("work_seconds"):
            pass
        hist = registry.get("work_seconds")
        assert hist.count == 1
        assert hist.sum >= 0.0
        assert hist.unit == "seconds"

    def test_observe_records_external_duration(self):
        registry = MetricsRegistry()
        registry.timer("work_seconds").observe(0.25)
        assert registry.get("work_seconds").sum == pytest.approx(0.25)


class TestSnapshotDiff:
    def test_counter_diff_subtracts(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        counter.inc(10)
        before = registry.snapshot()
        counter.inc(7)
        delta = registry.snapshot() - before
        assert delta.value("n_total") == 7

    def test_gauge_diff_keeps_newer_level(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("level")
        gauge.set(100)
        before = registry.snapshot()
        gauge.set(42)
        delta = registry.snapshot() - before
        assert delta.value("level") == 42

    def test_histogram_diff_subtracts_buckets_sum_and_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=(1.0, 10.0))
        hist.observe(0.5)
        before = registry.snapshot()
        hist.observe(0.5)
        hist.observe(5.0)
        delta = registry.snapshot() - before
        sample = delta.get("sizes")
        assert sample.bucket_counts == (1, 1, 0)
        assert sample.count == 2
        assert sample.sum == pytest.approx(5.5)

    def test_metric_absent_from_before_passes_through(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.counter("late_total").inc(3)
        delta = registry.snapshot() - before
        assert delta.value("late_total") == 3

    def test_value_of_missing_metric_is_zero(self):
        assert MetricsRegistry().snapshot().value("nope") == 0


class TestPrometheusExposition:
    def test_escape_help(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_escape_label_value(self):
        assert escape_label_value('say "hi"\\\n') == 'say \\"hi\\"\\\\\\n'

    def test_counter_rendering_with_help_and_labels(self):
        registry = MetricsRegistry()
        registry.counter(
            "events_total", help="Events.", labels={"kind": "split"}
        ).inc(3)
        text = to_prometheus(registry.snapshot())
        assert "# HELP events_total Events." in text
        assert "# TYPE events_total counter" in text
        assert 'events_total{kind="split"} 3' in text

    def test_label_values_escaped_in_output(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"path": 'a"b\\c'}).inc()
        text = to_prometheus(registry.snapshot())
        assert 'path="a\\"b\\\\c"' in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 0.7, 1.5, 9.0):
            hist.observe(value)
        text = to_prometheus(registry.snapshot())
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="2.0"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text

    def test_type_header_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("e_total", labels={"kind": "a"}).inc()
        registry.counter("e_total", labels={"kind": "b"}).inc()
        text = to_prometheus(registry.snapshot())
        assert text.count("# TYPE e_total counter") == 1


class TestJsonExposition:
    def test_document_shape_and_extra_merge(self):
        registry = MetricsRegistry()
        registry.counter("n_total", unit="points").inc(2)
        document = to_json(registry.snapshot(), extra={"run": {"seed": 0}})
        assert document["metrics_format_version"] == 1
        assert document["run"] == {"seed": 0}
        (sample,) = document["metrics"]
        assert sample["name"] == "n_total"
        assert sample["value"] == 2
        assert sample["unit"] == "points"

    def test_write_metrics_produces_both_files(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n_total").inc()
        json_path, prom_path = write_metrics(
            tmp_path / "m.json", registry.snapshot()
        )
        assert json_path.name == "m.json"
        assert prom_path.name == "m.prom"
        document = json.loads(json_path.read_text())
        assert document["metrics"][0]["name"] == "n_total"
        assert "n_total 1" in prom_path.read_text()


class TestGlobalRegistry:
    def test_get_registry_is_stable(self):
        assert get_registry() is get_registry()


class TestRelabeled:
    def test_merges_sorts_and_overrides(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"kind": "x"}).inc(2)
        (sample,) = registry.snapshot()
        stamped = sample.relabeled(tenant="t0", kind="y")
        assert stamped.labels == (("kind", "y"), ("tenant", "t0"))
        assert stamped.value == sample.value
        assert sample.labels == (("kind", "x"),)  # original untouched

    def test_rejects_invalid_label_names(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        (sample,) = registry.snapshot()
        with pytest.raises(InvalidConfigError):
            sample.relabeled(**{"bad-name": "v"})


def parse_exposition(text: str) -> dict:
    """A minimal Prometheus text-format 0.0.4 parser.

    Independent of the renderer on purpose: it understands only the
    spec — ``# HELP``/``# TYPE`` comments, ``name{labels} value``
    samples, escaped label values (``\\\\``, ``\\"``, ``\\n``), and the
    ``NaN``/``+Inf``/``-Inf`` value spellings — so any renderer change
    that violates the grammar fails these property tests.
    """
    samples: dict[tuple, float] = {}
    types: dict[str, str] = {}
    # The text format delimits records with "\n" only; splitlines()
    # would also break on form feeds and other Unicode boundaries
    # that are legal inside label values.
    for line in text.split("\n"):
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            continue
        assert not line.startswith("#"), f"unknown comment {line!r}"
        body, _, value_text = line.rpartition(" ")
        if value_text == "NaN":
            value = math.nan
        elif value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        labels: list[tuple[str, str]] = []
        if "{" in body:
            name, _, label_text = body.partition("{")
            assert label_text.endswith("}"), line
            label_text = label_text[:-1]
            while label_text:
                key, _, rest = label_text.partition('="')
                chars: list[str] = []
                i = 0
                while True:
                    ch = rest[i]
                    if ch == "\\":
                        escaped = rest[i + 1]
                        assert escaped in ('"', "\\", "n"), line
                        chars.append("\n" if escaped == "n" else escaped)
                        i += 2
                    elif ch == '"':
                        i += 1
                        break
                    else:
                        assert ch != "\n"
                        chars.append(ch)
                        i += 1
                labels.append((key, "".join(chars)))
                label_text = rest[i:].lstrip(",")
        else:
            name = body
        key = (name, tuple(sorted(labels)))
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = value
    return {"samples": samples, "types": types}


label_values = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\r"
    ),
    max_size=40,
)
metric_values = st.one_of(
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
)


class TestExpositionProperties:
    @settings(deadline=None, max_examples=60)
    @given(value=label_values)
    def test_label_escaping_round_trips(self, value):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"path": value}).inc()
        parsed = parse_exposition(to_prometheus(registry.snapshot()))
        assert parsed["samples"][
            ("c_total", (("path", value),))
        ] == 1

    @settings(deadline=None, max_examples=60)
    @given(value=metric_values)
    def test_gauge_values_round_trip(self, value):
        registry = MetricsRegistry()
        registry.gauge("g").set(float(value))
        parsed = parse_exposition(to_prometheus(registry.snapshot()))
        rendered = parsed["samples"][("g", ())]
        if math.isnan(float(value)):
            assert math.isnan(rendered)
        else:
            assert rendered == float(value)

    @settings(deadline=None, max_examples=30)
    @given(
        values=st.lists(
            st.floats(
                min_value=0.0,
                max_value=100.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=20,
        ),
        tenants=st.lists(
            st.sampled_from(["a", "b", 'quo"te', "back\\slash"]),
            min_size=1,
            max_size=3,
            unique=True,
        ),
    )
    def test_multi_tenant_merge_parses_clean(self, values, tenants):
        """The plane's merged-scrape shape: same families relabeled per
        tenant, sorted, rendered — always spec-conformant."""
        from repro.observability import MetricsSnapshot

        merged = []
        for tenant in tenants:
            registry = MetricsRegistry()
            counter = registry.counter("c_total")
            histogram = registry.histogram("h", buckets=(1.0, 10.0))
            for v in values:
                counter.inc(1)
                histogram.observe(v)
            for sample in registry.snapshot():
                merged.append(sample.relabeled(tenant=tenant))
        merged.sort(key=lambda s: (s.name, s.labels))
        parsed = parse_exposition(
            to_prometheus(MetricsSnapshot(samples=tuple(merged)))
        )
        for tenant in tenants:
            assert parsed["samples"][
                ("c_total", (("tenant", tenant),))
            ] == len(values)
            assert parsed["samples"][
                ("h_bucket", (("le", "+Inf"), ("tenant", tenant)))
            ] == len(values)
        assert parsed["types"]["c_total"] == "counter"
        assert parsed["types"]["h"] == "histogram"
