"""Event tracer semantics and end-to-end instrumentation wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.geometry import DistanceCounter
from repro.observability import (
    EVENT_KINDS,
    EventTracer,
    Observability,
)
from repro.streaming import DurableSummarizer, SlidingWindowSummarizer


class TestEventTracer:
    def test_events_are_sequenced_and_counted(self):
        tracer = EventTracer()
        tracer.emit("bubble_split", over=3, donor=7)
        tracer.emit("bubble_split", over=1, donor=2)
        tracer.emit("wal_append", seq=0)
        assert [e.seq for e in tracer.events()] == [0, 1, 2]
        assert tracer.counts() == {"bubble_split": 2, "wal_append": 1}
        assert len(tracer.events("bubble_split")) == 2

    def test_timestamps_are_monotone(self):
        tracer = EventTracer()
        for _ in range(5):
            tracer.emit("insert_batch")
        stamps = [e.ts for e in tracer.events()]
        assert stamps == sorted(stamps)

    def test_ring_drops_oldest_but_counts_lifetime(self):
        tracer = EventTracer(capacity=3)
        for i in range(5):
            tracer.emit("fifo_eviction", index=i)
        kept = tracer.events()
        assert len(kept) == 3
        assert [e.fields["index"] for e in kept] == [2, 3, 4]
        assert tracer.total_emitted == 5
        assert tracer.counts()["fifo_eviction"] == 5

    def test_ring_wraparound_at_exact_capacity_boundary(self):
        # Filling the ring to exactly `capacity` must not drop anything;
        # one past it drops exactly the oldest (off-by-one guard).
        tracer = EventTracer(capacity=4)
        for i in range(4):
            tracer.emit("insert_batch", index=i)
        assert [e.fields["index"] for e in tracer.events()] == [0, 1, 2, 3]
        tracer.emit("insert_batch", index=4)
        assert [e.fields["index"] for e in tracer.events()] == [1, 2, 3, 4]
        tracer.emit("insert_batch", index=5)
        assert [e.fields["index"] for e in tracer.events()] == [2, 3, 4, 5]
        assert tracer.total_emitted == 6

    def test_capacity_one_ring_keeps_only_the_newest(self):
        tracer = EventTracer(capacity=1)
        for i in range(3):
            tracer.emit("insert_batch", index=i)
        (kept,) = tracer.events()
        assert kept.fields["index"] == 2
        assert kept.seq == 2

    def test_jsonl_sink_receives_every_line(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        with EventTracer(sink=sink) as tracer:
            tracer.emit("bubble_split", over=3)
            tracer.emit("wal_append", seq=0, bytes=100)
        lines = [
            json.loads(line)
            for line in sink.read_text().splitlines()
        ]
        assert [line["kind"] for line in lines] == [
            "bubble_split",
            "wal_append",
        ]
        assert lines[1]["bytes"] == 100

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            EventTracer(capacity=0)

    def test_known_kinds_catalogued(self):
        for kind in ("bubble_split", "donor_migration",
                     "seed_redistribution", "wal_append",
                     "snapshot_write", "recovery_replay"):
            assert kind in EVENT_KINDS


class TestObservabilityHandle:
    def test_emit_counts_events_even_without_tracer(self):
        obs = Observability()
        obs.emit("bubble_split", over=1)
        obs.emit("bubble_split", over=2)
        assert obs.event_count("bubble_split") == 2
        assert obs.tracer is None
        snapshot = obs.metrics.snapshot()
        assert snapshot.value(
            "repro_events_total", labels={"kind": "bubble_split"}
        ) == 2

    def test_emit_traces_when_tracer_attached(self):
        obs = Observability(tracer=EventTracer())
        obs.emit("wal_append", seq=3)
        (event,) = obs.tracer.events()
        assert event.kind == "wal_append"
        assert event.fields == {"seq": 3}


def make_world(rng, obs, num_points=600, num_bubbles=20):
    points = np.vstack(
        [
            rng.normal([0, 0], 0.5, size=(num_points // 2, 2)),
            rng.normal([20, 20], 0.5, size=(num_points // 2, 2)),
        ]
    )
    labels = np.array(
        [0] * (num_points // 2) + [1] * (num_points // 2), dtype=np.int64
    )
    store = PointStore(dim=2)
    store.insert(points, labels)
    counter = DistanceCounter()
    bubbles = BubbleBuilder(
        BubbleConfig(num_bubbles=num_bubbles, seed=0), counter
    ).build(store)
    maintainer = IncrementalMaintainer(
        bubbles, store, MaintenanceConfig(seed=0), counter=counter, obs=obs
    )
    return store, counter, maintainer


class TestMaintainerInstrumentation:
    def test_registry_mirrors_distance_counter(self, rng):
        obs = Observability()
        store, counter, maintainer = make_world(rng, obs)
        for _ in range(3):
            maintainer.apply_batch(
                UpdateBatch(
                    insertions=rng.normal([0, 0], 0.5, size=(40, 2)),
                    insertion_labels=tuple([0] * 40),
                )
            )
        snapshot = obs.metrics.snapshot()
        # The registry accounts only post-construction (maintenance)
        # activity; construction distances belong to the builder.
        assert (
            snapshot.value("repro_distance_computed_total")
            + snapshot.value("repro_distance_pruned_total")
        ) > 0
        assert snapshot.value("repro_maintenance_batches_total") == 3
        assert snapshot.value("repro_maintenance_insertions_total") == 120

    def test_rebuild_emits_split_and_migration_events(self, rng):
        obs = Observability(tracer=EventTracer())
        store, counter, maintainer = make_world(rng, obs)
        for _ in range(4):
            maintainer.apply_batch(
                UpdateBatch(
                    insertions=rng.normal([60, -40], 0.5, size=(120, 2)),
                    insertion_labels=tuple([2] * 120),
                )
            )
        counts = obs.tracer.counts()
        assert counts.get("bubble_split", 0) > 0
        assert counts.get("donor_migration", 0) > 0
        assert counts.get("seed_redistribution", 0) > 0
        snapshot = obs.metrics.snapshot()
        splits = snapshot.value("repro_maintenance_bubble_splits_total")
        assert splits == counts["bubble_split"]
        split_event = obs.tracer.events("bubble_split")[0]
        assert {"over", "donor", "donor_size", "over_size"} <= set(
            split_event.fields
        )

    def test_uninstrumented_maintainer_has_no_obs(self, rng):
        store, counter, maintainer = make_world(rng, obs=None)
        maintainer.apply_batch(UpdateBatch.empty(dim=2))
        assert maintainer.obs is None


class TestStreamingInstrumentation:
    def test_registry_tracks_stream_counter_exactly(self, rng):
        obs = Observability()
        stream = SlidingWindowSummarizer(
            dim=2, window_size=500, points_per_bubble=25, seed=0, obs=obs
        )
        for _ in range(6):
            stream.append(rng.normal(size=(100, 2)))
        snapshot = obs.metrics.snapshot()
        # One source of truth: registry totals equal the DistanceCounter,
        # bootstrap construction included.
        assert snapshot.value(
            "repro_distance_computed_total"
        ) == stream.counter.computed
        assert snapshot.value(
            "repro_distance_pruned_total"
        ) == stream.counter.pruned
        assert snapshot.value("repro_stream_points_total") == 600
        assert snapshot.value("repro_stream_window_points") == 500
        assert obs.event_count("fifo_eviction") > 0

    def test_restored_stream_resumes_registry_totals(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=400, points_per_bubble=25, seed=0
        )
        for _ in range(4):
            stream.append(rng.normal(size=(100, 2)))
        state = stream.capture_state(batches_applied=4)
        obs = Observability()
        restored = SlidingWindowSummarizer.from_state(state, obs=obs)
        snapshot = obs.metrics.snapshot()
        assert snapshot.value(
            "repro_distance_computed_total"
        ) == restored.counter.computed
        assert (
            snapshot.value("repro_stream_window_points")
            == restored.size
        )


class TestDurableInstrumentation:
    def test_wal_snapshot_and_recovery_events(self, tmp_path, rng):
        obs = Observability(tracer=EventTracer())
        stream = DurableSummarizer(
            tmp_path / "state",
            dim=2,
            window_size=400,
            points_per_bubble=25,
            seed=0,
            checkpoint_every=2,
            fsync=False,
            obs=obs,
        )
        for _ in range(5):
            stream.append(rng.normal(size=(100, 2)))
        stream.close(checkpoint=False)
        counts = obs.tracer.counts()
        assert counts["wal_append"] == 5
        assert counts["snapshot_write"] >= 1
        assert counts["wal_compaction"] == counts["snapshot_write"]
        snapshot = obs.metrics.snapshot()
        assert snapshot.value("repro_wal_appends_total") == 5
        assert snapshot.value("repro_wal_bytes_total") > 0

        obs2 = Observability(tracer=EventTracer())
        recovered = DurableSummarizer.recover(
            tmp_path / "state", fsync=False, obs=obs2
        )
        recovered.close()
        (event,) = obs2.tracer.events("recovery_replay")
        assert event.fields["replayed_batches"] >= 1
        snapshot2 = obs2.metrics.snapshot()
        assert snapshot2.value("repro_recovery_replays_total") == 1
        # Restored totals continue the crashed process's accounting.
        assert snapshot2.value(
            "repro_distance_computed_total"
        ) == recovered.counter.computed
