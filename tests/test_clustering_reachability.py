"""Unit tests for reachability plot structures and expansion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ReachabilityPlot

INF = np.inf


def make_plot() -> ReachabilityPlot:
    return ReachabilityPlot(
        ordering=np.array([2, 0, 1], dtype=np.int64),
        reachability=np.array([INF, 0.5, 0.7]),
        core_distances=np.array([0.4, 0.6, 0.3]),
    )


class TestReachabilityPlot:
    def test_length(self):
        assert len(make_plot()) == 3

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            ReachabilityPlot(
                ordering=np.array([0, 1]),
                reachability=np.array([INF]),
                core_distances=np.array([0.1, 0.1]),
            )

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            ReachabilityPlot(
                ordering=np.zeros((2, 2), dtype=np.int64),
                reachability=np.zeros((2, 2)),
                core_distances=np.zeros(4),
            )

    def test_finite_reachability_drops_inf(self):
        assert make_plot().finite_reachability().tolist() == [0.5, 0.7]

    def test_reachability_of(self):
        plot = make_plot()
        assert plot.reachability_of(2) == INF
        assert plot.reachability_of(0) == 0.5
        with pytest.raises(KeyError):
            plot.reachability_of(9)


class TestExpansion:
    def test_expansion_layout(self):
        plot = make_plot()
        counts = np.array([2, 3, 1])          # per object id
        virtual = np.array([0.11, 0.22, 0.33])
        expanded = plot.expand(counts, virtual)
        # Ordering is [2, 0, 1] -> blocks of sizes 1, 2, 3.
        assert len(expanded) == 6
        assert expanded.source.tolist() == [2, 0, 0, 1, 1, 1]
        assert expanded.reachability[0] == INF          # object 2's actual
        assert expanded.reachability[1] == 0.5          # object 0's actual
        assert expanded.reachability[2] == 0.11         # object 0's virtual
        assert expanded.reachability[3] == 0.7          # object 1's actual
        assert expanded.reachability[4:].tolist() == [0.22, 0.22]

    def test_zero_count_objects_still_present(self):
        plot = make_plot()
        counts = np.array([0, 1, 1])
        virtual = np.zeros(3)
        expanded = plot.expand(counts, virtual)
        assert len(expanded) == 3
        assert 0 in expanded.source.tolist()

    def test_coverage_validation(self):
        plot = make_plot()
        with pytest.raises(ValueError):
            plot.expand(np.array([1, 1]), np.array([0.1, 0.1]))
