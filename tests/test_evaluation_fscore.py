"""Unit tests for the clustering F-score (Larsen & Aone)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import best_match_fscore, fscore_from_labels


class TestBestMatchFscore:
    def test_perfect_match(self):
        truth = np.array([0, 0, 0, 1, 1, 1])
        candidates = [np.array([0, 1, 2]), np.array([3, 4, 5])]
        result = best_match_fscore(truth, candidates)
        assert result.overall == pytest.approx(1.0)
        for match in result.matches:
            assert match.precision == 1.0
            assert match.recall == 1.0

    def test_no_candidates(self):
        truth = np.array([0, 0, 1, 1])
        result = best_match_fscore(truth, [])
        assert result.overall == 0.0
        assert all(m.candidate == -1 for m in result.matches)

    def test_pure_noise_truth(self):
        truth = np.array([-1, -1, -1])
        result = best_match_fscore(truth, [np.array([0, 1, 2])])
        assert result.overall == 0.0
        assert result.matches == ()

    def test_half_split_cluster(self):
        truth = np.array([0, 0, 0, 0])
        candidates = [np.array([0, 1]), np.array([2, 3])]
        result = best_match_fscore(truth, candidates)
        # Best match: p=1, r=0.5 -> F = 2/3.
        assert result.overall == pytest.approx(2.0 / 3.0)

    def test_polluted_candidate(self):
        truth = np.array([0, 0, 0, -1, -1, -1])
        candidates = [np.arange(6)]
        result = best_match_fscore(truth, candidates)
        # p = 0.5 (noise pollutes), r = 1 -> F = 2/3.
        assert result.overall == pytest.approx(2.0 / 3.0)

    def test_weighted_average(self):
        truth = np.array([0] * 9 + [1])
        candidates = [np.arange(9)]  # perfect for class 0, nothing for 1
        result = best_match_fscore(truth, candidates)
        assert result.overall == pytest.approx(0.9)

    def test_each_class_picks_its_own_best(self):
        truth = np.array([0, 0, 1, 1])
        candidates = [
            np.array([0, 1]),
            np.array([2, 3]),
            np.array([0, 1, 2, 3]),
        ]
        result = best_match_fscore(truth, candidates)
        assert result.overall == pytest.approx(1.0)
        assert result.match_for(0).candidate == 0
        assert result.match_for(1).candidate == 1

    def test_match_for_unknown_class(self):
        result = best_match_fscore(np.array([0, 0]), [np.array([0, 1])])
        with pytest.raises(KeyError):
            result.match_for(42)

    def test_empty_candidate_ignored(self):
        truth = np.array([0, 0])
        result = best_match_fscore(
            truth, [np.empty(0, dtype=np.int64), np.array([0, 1])]
        )
        assert result.overall == pytest.approx(1.0)

    def test_fscore_formula(self):
        truth = np.array([0] * 10 + [-1] * 5)
        candidates = [np.arange(8)]  # covers 8 of 10 class points, no noise
        result = best_match_fscore(truth, candidates)
        p, r = 1.0, 0.8
        assert result.overall == pytest.approx(2 * p * r / (p + r))


class TestFscoreFromLabels:
    def test_identical_labelings(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert fscore_from_labels(labels, labels).overall == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        truth = np.array([0, 0, 1, 1])
        predicted = np.array([5, 5, 3, 3])
        assert fscore_from_labels(truth, predicted).overall == pytest.approx(
            1.0
        )

    def test_predicted_noise_not_a_candidate(self):
        truth = np.array([0, 0, 0])
        predicted = np.array([-1, -1, -1])
        assert fscore_from_labels(truth, predicted).overall == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fscore_from_labels(np.array([0, 1]), np.array([0]))

    def test_merged_clusters_penalized(self):
        truth = np.array([0] * 10 + [1] * 10)
        predicted = np.zeros(20, dtype=np.int64)
        result = fscore_from_labels(truth, predicted)
        # Each class: p = 0.5, r = 1 -> F = 2/3.
        assert result.overall == pytest.approx(2.0 / 3.0)
