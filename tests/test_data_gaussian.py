"""Unit tests for the Gaussian mixture generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ClusterSpec, MixtureModel, well_separated_mixture


class TestClusterSpec:
    def test_sampling_statistics(self, rng):
        spec = ClusterSpec(center=np.array([5.0, -3.0]), std=0.5, label=1)
        points = spec.sample(5000, rng)
        assert points.mean(axis=0) == pytest.approx([5.0, -3.0], abs=0.05)
        assert points.std(axis=0) == pytest.approx([0.5, 0.5], abs=0.05)

    def test_shifted(self):
        spec = ClusterSpec(center=np.array([1.0, 1.0]), std=1.0, label=0)
        moved = spec.shifted(np.array([2.0, -1.0]))
        assert moved.center == pytest.approx([3.0, 0.0])
        assert moved.label == 0
        assert spec.center == pytest.approx([1.0, 1.0])  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(center=np.zeros((2, 2)), std=1.0, label=0)
        with pytest.raises(ValueError):
            ClusterSpec(center=np.zeros(2), std=0.0, label=0)
        with pytest.raises(ValueError):
            ClusterSpec(center=np.zeros(2), std=1.0, label=-1)


class TestMixtureModel:
    def make_mixture(self, noise=0.2) -> MixtureModel:
        return MixtureModel(
            [
                ClusterSpec(center=np.array([0.0, 0.0]), std=0.5, label=0),
                ClusterSpec(center=np.array([20.0, 0.0]), std=0.5, label=1),
            ],
            noise_fraction=noise,
        )

    def test_sample_shapes(self, rng):
        mixture = self.make_mixture()
        points, labels = mixture.sample(500, rng)
        assert points.shape == (500, 2)
        assert labels.shape == (500,)

    def test_label_set(self, rng):
        mixture = self.make_mixture()
        _, labels = mixture.sample(2000, rng)
        assert set(labels.tolist()) == {-1, 0, 1}

    def test_noise_fraction_respected(self, rng):
        mixture = self.make_mixture(noise=0.3)
        _, labels = mixture.sample(20_000, rng)
        noise_rate = (labels == -1).mean()
        assert noise_rate == pytest.approx(0.3, abs=0.02)

    def test_labels_match_generating_cluster(self, rng):
        mixture = self.make_mixture(noise=0.0)
        points, labels = mixture.sample(1000, rng)
        # Cluster centres are 20 apart with std 0.5: nearest-centre
        # assignment must agree with the labels.
        nearest = (points[:, 0] > 10.0).astype(int)
        assert (nearest == labels).all()

    def test_zero_count(self, rng):
        points, labels = self.make_mixture().sample(0, rng)
        assert points.shape == (0, 2)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            self.make_mixture().sample(-1, rng)

    def test_without_removes_cluster(self, rng):
        reduced = self.make_mixture(noise=0.0).without(0)
        _, labels = reduced.sample(100, rng)
        assert set(labels.tolist()) == {1}

    def test_without_unknown_label(self):
        with pytest.raises(KeyError):
            self.make_mixture().without(99)

    def test_with_cluster_adds(self, rng):
        extended = self.make_mixture(noise=0.0).with_cluster(
            ClusterSpec(center=np.array([0.0, 50.0]), std=0.5, label=7)
        )
        _, labels = extended.sample(3000, rng)
        assert 7 in set(labels.tolist())

    def test_weights(self, rng):
        mixture = MixtureModel(
            [
                ClusterSpec(center=np.zeros(2), std=0.1, label=0),
                ClusterSpec(center=np.ones(2), std=0.1, label=1),
            ],
            noise_fraction=0.0,
            weights=np.array([3.0, 1.0]),
        )
        _, labels = mixture.sample(8000, rng)
        assert (labels == 0).mean() == pytest.approx(0.75, abs=0.03)

    def test_invalid_weights(self):
        clusters = [ClusterSpec(center=np.zeros(2), std=0.1, label=0)]
        with pytest.raises(ValueError):
            MixtureModel(clusters, weights=np.array([-1.0]))
        with pytest.raises(ValueError):
            MixtureModel(clusters, weights=np.array([0.0]))

    def test_noise_fraction_validated(self):
        clusters = [ClusterSpec(center=np.zeros(2), std=0.1, label=0)]
        with pytest.raises(ValueError):
            MixtureModel(clusters, noise_fraction=1.5)

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError):
            MixtureModel(
                [
                    ClusterSpec(center=np.zeros(2), std=0.1, label=0),
                    ClusterSpec(center=np.zeros(3), std=0.1, label=1),
                ]
            )

    def test_default_bounds_cover_clusters(self):
        mixture = self.make_mixture()
        low, high = mixture.bounds
        assert (low <= 0.0).all()
        assert high[0] >= 20.0


class TestWellSeparatedMixture:
    @pytest.mark.parametrize("dim", [2, 5, 10, 20])
    def test_separation_holds(self, dim, rng):
        mixture = well_separated_mixture(dim, 4, rng, std=1.0, separation=10.0)
        centers = [c.center for c in mixture.clusters]
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.linalg.norm(centers[i] - centers[j]) >= 10.0

    def test_labels_are_dense(self, rng):
        mixture = well_separated_mixture(3, 5, rng)
        assert sorted(mixture.labels()) == [0, 1, 2, 3, 4]

    def test_impossible_placement_raises(self, rng):
        with pytest.raises(RuntimeError):
            well_separated_mixture(
                2, 50, rng, std=1.0, separation=50.0, box=10.0, max_tries=100
            )

    def test_cluster_count_validated(self, rng):
        with pytest.raises(ValueError):
            well_separated_mixture(2, 0, rng)
