"""Unit tests for the write-ahead log: format, replay, corruption."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro import UpdateBatch, WalCorruptionError
from repro.persistence import WriteAheadLog, decode_batch, encode_batch


def make_batch(rng, deletions=(), m=5, d=2):
    return UpdateBatch(
        deletions=tuple(deletions),
        insertions=rng.normal(size=(m, d)),
        insertion_labels=tuple([-1] * m),
    )


class TestCodec:
    def test_batch_round_trip(self, rng):
        batch = make_batch(rng, deletions=(3, 9, 27), m=7, d=3)
        restored = decode_batch(encode_batch(batch))
        assert restored.deletions == batch.deletions
        assert np.array_equal(restored.insertions, batch.insertions)
        assert restored.insertion_labels == batch.insertion_labels

    def test_empty_batch_round_trip(self):
        batch = UpdateBatch.empty(dim=4)
        restored = decode_batch(encode_batch(batch))
        assert restored.is_empty()
        assert restored.insertions.shape == (0, 4)

    def test_garbage_payload_rejected(self):
        with pytest.raises(WalCorruptionError):
            decode_batch(b"not an npz archive at all")


class TestAppendReplay:
    def test_records_replay_in_order(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=False)
        batches = [make_batch(rng, m=i + 1) for i in range(5)]
        for seq, batch in enumerate(batches):
            wal.append(seq, batch)
        records = wal.replay()
        assert [r.seq for r in records] == [0, 1, 2, 3, 4]
        for record, batch in zip(records, batches):
            assert np.array_equal(record.batch.insertions, batch.insertions)
        wal.close()

    def test_replay_survives_reopen(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(0, make_batch(rng))
            wal.append(1, make_batch(rng))
        with WriteAheadLog(path, fsync=False) as wal:
            assert [r.seq for r in wal.replay()] == [0, 1]

    def test_append_after_replay_extends_log(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(0, make_batch(rng))
        with WriteAheadLog(path, fsync=False) as wal:
            assert len(wal.replay()) == 1
            wal.append(1, make_batch(rng))
            assert [r.seq for r in wal.replay()] == [0, 1]

    def test_reset_drops_all_records(self, tmp_path, rng):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            wal.append(0, make_batch(rng))
            wal.reset()
            assert wal.replay() == []
            wal.append(7, make_batch(rng))
            assert [r.seq for r in wal.replay()] == [7]

    def test_empty_log_replays_empty(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            assert wal.replay() == []

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 32)
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(path, fsync=False)


class TestCorruption:
    """The satellite trio: torn tail, mid-log corruption, empty dir."""

    def _write(self, path, rng, count=3):
        with WriteAheadLog(path, fsync=False) as wal:
            for seq in range(count):
                wal.append(seq, make_batch(rng, m=4))
        return path

    def test_torn_final_record_truncated_and_continues(self, tmp_path, rng):
        path = self._write(tmp_path / "wal.log", rng)
        original = path.read_bytes()
        # Tear the final record: drop its last 11 bytes mid-payload.
        path.write_bytes(original[:-11])
        with WriteAheadLog(path, fsync=False) as wal:
            records = wal.replay()
            assert [r.seq for r in records] == [0, 1]
            # The log was repaired in place: appends go right back to work
            # and a fresh replay sees a clean history.
            wal.append(2, make_batch(rng))
            assert [r.seq for r in wal.replay()] == [0, 1, 2]

    def test_torn_header_truncated(self, tmp_path, rng):
        path = self._write(tmp_path / "wal.log", rng, count=2)
        data = path.read_bytes()
        # Find where record 1 starts (8-byte magic + record 0: 16-byte
        # header, 32-byte chain digest, payload) and leave only 6 bytes
        # of its 16-byte header. Replay must keep record 0 and drop the
        # stub.
        offset = 8
        _, length, _ = struct.unpack("<QII", data[offset : offset + 16])
        offset += 16 + 32 + length
        path.write_bytes(data[: offset + 6])
        with WriteAheadLog(path, fsync=False) as wal:
            assert [r.seq for r in wal.replay()] == [0]

    def test_bad_checksum_mid_log_fails_loudly(self, tmp_path, rng):
        path = self._write(tmp_path / "wal.log", rng)
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the FIRST record (well before the
        # tail): magic 8 + header 16 + chain 32 puts the payload at 56.
        data[62] ^= 0xFF
        path.write_bytes(bytes(data))
        with WriteAheadLog(path, fsync=False) as wal:
            with pytest.raises(WalCorruptionError):
                wal.replay()

    def test_absurd_length_fails_loudly(self, tmp_path, rng):
        path = self._write(tmp_path / "wal.log", rng, count=1)
        data = bytearray(path.read_bytes())
        # Overwrite the length field (bytes 8..12 after seq) with 2^31.
        struct.pack_into("<I", data, 8 + 8, 1 << 31)
        path.write_bytes(bytes(data))
        with WriteAheadLog(path, fsync=False) as wal:
            with pytest.raises(WalCorruptionError):
                wal.replay()

    def test_corrupted_record_not_silently_skipped(self, tmp_path, rng):
        """A bad mid-log record must not yield a partial history."""
        path = self._write(tmp_path / "wal.log", rng)
        data = bytearray(path.read_bytes())
        data[62] ^= 0xFF
        path.write_bytes(bytes(data))
        with WriteAheadLog(path, fsync=False) as wal:
            try:
                records = wal.replay()
            except WalCorruptionError:
                records = None
        assert records is None
