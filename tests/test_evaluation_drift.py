"""Unit tests for structural change detection between clusterings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import detect_change


class TestDetectChange:
    def test_identical_clusterings_are_stable(self):
        labels = np.array([0] * 50 + [1] * 50)
        report = detect_change(labels, labels)
        assert report.change_score == pytest.approx(0.0)
        assert report.is_stable
        assert report.appeared == ()
        assert report.vanished == ()
        assert len(report.matches) == 2
        for match in report.matches:
            assert match.jaccard == pytest.approx(1.0)
            assert match.drift == pytest.approx(0.0)

    def test_relabeling_is_stable(self):
        old = np.array([0] * 50 + [1] * 50)
        new = np.array([7] * 50 + [3] * 50)
        report = detect_change(old, new)
        assert report.is_stable
        assert {(m.old_label, m.new_label) for m in report.matches} == {
            (0, 7),
            (1, 3),
        }

    def test_appeared_cluster(self):
        old = np.array([0] * 60 + [-1] * 40)
        new = np.array([0] * 60 + [5] * 40)  # noise crystallised into 5
        report = detect_change(old, new)
        assert report.appeared == (5,)
        assert report.vanished == ()
        assert not report.is_stable

    def test_vanished_cluster(self):
        old = np.array([0] * 60 + [1] * 40)
        new = np.array([0] * 60 + [-1] * 40)
        report = detect_change(old, new)
        assert report.vanished == (1,)
        assert report.appeared == ()

    def test_split_cluster_is_match_plus_appearance(self):
        old = np.array([0] * 100)
        new = np.array([0] * 70 + [1] * 30)
        report = detect_change(old, new)
        matched_new = {m.new_label for m in report.matches}
        assert matched_new == {0}  # the bigger half keeps the identity
        assert report.appeared == (1,)

    def test_drift_measured(self):
        old = np.array([0] * 100 + [1] * 100)
        new = old.copy()
        new[80:100] = 1  # 20 points migrate from cluster 0 to 1
        report = detect_change(old, new)
        drifted = report.drifted(tolerance=0.05)
        assert len(drifted) == 2
        drift_of_zero = next(
            m for m in report.matches if m.old_label == 0
        )
        # |∩| = 80, |∪| = 100 → jaccard 0.8 → drift 0.2.
        assert drift_of_zero.drift == pytest.approx(0.2)

    def test_min_overlap_splits_identity(self):
        old = np.array([0] * 100)
        new = np.array([1] * 45 + [2] * 55)
        strict = detect_change(old, new, min_overlap=0.7)
        assert strict.matches == ()
        assert set(strict.appeared) == {1, 2}
        assert strict.vanished == (0,)
        loose = detect_change(old, new, min_overlap=0.3)
        assert len(loose.matches) == 1
        assert loose.matches[0].new_label == 2

    def test_pure_noise_both_sides(self):
        noise = np.full(50, -1)
        report = detect_change(noise, noise)
        assert report.matches == ()
        assert report.appeared == ()
        assert report.vanished == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_change(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            detect_change(np.array([0]), np.array([0]), min_overlap=0.0)

    def test_end_to_end_with_snapshots(self, rng):
        """The intro use case: detect an appearing segment between two
        snapshots of an incrementally maintained summary."""
        from repro import (
            BubbleBuilder,
            BubbleConfig,
            IncrementalMaintainer,
            MaintenanceConfig,
            PointStore,
            UpdateBatch,
        )
        from repro.clustering import ClusteringSnapshot

        store = PointStore(dim=2)
        points = np.vstack(
            [
                rng.normal([0, 0], 0.4, size=(600, 2)),
                rng.normal([20, 0], 0.4, size=(600, 2)),
            ]
        )
        store.insert(points, np.repeat([0, 1], 600))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=24, seed=0)).build(
            store
        )
        maintainer = IncrementalMaintainer(
            bubbles, store, MaintenanceConfig(seed=0)
        )
        before = ClusteringSnapshot.build(bubbles, min_pts=30)
        ids_before = store.ids()
        labels_before = before.point_labels(store)

        # A new segment emerges over a few batches.
        for _ in range(3):
            maintainer.apply_batch(
                UpdateBatch(
                    insertions=rng.normal([10, 18], 0.4, size=(150, 2)),
                    insertion_labels=tuple([2] * 150),
                )
            )
        after = ClusteringSnapshot.build(maintainer.bubbles, min_pts=30)
        labels_after_all = after.point_labels(store)
        # Restrict to the surviving points (none were deleted here).
        position = {int(pid): i for i, pid in enumerate(store.ids())}
        surviving = np.asarray(
            [position[int(pid)] for pid in ids_before], dtype=np.int64
        )
        report = detect_change(labels_before, labels_after_all[surviving])
        # The two old segments persist; the new one only holds new points,
        # so over the surviving universe it shows as near-stable matches.
        assert len(report.matches) == 2
        # And the full current labelling has one more cluster than before.
        assert after.num_clusters == before.num_clusters + 1