"""Dead-letter queue: durable envelopes, torn tails, replay semantics."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import EventError, ServiceError
from repro.faults import FAILPOINTS, failpoint
from repro.service import PointEvent
from repro.service.deadletter import (
    DEADLETTER_FILENAME,
    DeadLetter,
    append_dead_letters,
    deadletter_path,
    read_dead_letters,
    replay_dead_letters,
)


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAILPOINTS.clear()
    yield
    FAILPOINTS.clear()


def make_letters(count=3, reason="append_failed"):
    return [
        DeadLetter(
            event=PointEvent(
                tenant="t-0", point=(float(i), -1.5), label=i
            ),
            reason=reason,
            error="ServiceError: boom" if reason == "append_failed" else None,
        )
        for i in range(count)
    ]


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        path = deadletter_path(tmp_path)
        assert path.name == DEADLETTER_FILENAME
        letters = make_letters(3)
        assert append_dead_letters(path, letters, fsync=False) == 3
        restored = read_dead_letters(path)
        assert restored == letters

    def test_appends_accumulate(self, tmp_path):
        path = deadletter_path(tmp_path)
        append_dead_letters(path, make_letters(2), fsync=False)
        append_dead_letters(
            path, make_letters(1, reason="breaker_open"), fsync=False
        )
        letters = read_dead_letters(path)
        assert len(letters) == 3
        assert letters[-1].reason == "breaker_open"

    def test_missing_file_is_empty_queue(self, tmp_path):
        assert read_dead_letters(tmp_path / "absent.ndjson") == []

    def test_empty_iterable_writes_nothing(self, tmp_path):
        path = deadletter_path(tmp_path)
        assert append_dead_letters(path, [], fsync=False) == 0
        assert not path.exists()

    def test_unknown_reason_rejected_at_construction(self):
        with pytest.raises(ServiceError, match="unknown dead-letter reason"):
            DeadLetter(
                event=PointEvent(tenant="t", point=(1.0,)), reason="oops"
            )


class TestCorruption:
    def test_torn_final_line_dropped(self, tmp_path):
        path = deadletter_path(tmp_path)
        append_dead_letters(path, make_letters(2), fsync=False)
        data = path.read_text()
        path.write_text(data[:-9])  # no trailing newline, unparseable
        assert len(read_dead_letters(path)) == 1

    def test_malformed_mid_file_raises_with_lineno(self, tmp_path):
        path = deadletter_path(tmp_path)
        append_dead_letters(path, make_letters(1), fsync=False)
        with open(path, "a") as handle:
            handle.write("{not json\n")
        append_dead_letters(path, make_letters(1), fsync=False)
        with pytest.raises(EventError, match="line 2"):
            read_dead_letters(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = deadletter_path(tmp_path)
        envelope = {
            "schema": 99,
            "reason": "append_failed",
            "event": {"schema": 1, "tenant": "t", "point": [1.0]},
        }
        path.write_text(json.dumps(envelope) + "\n")
        with pytest.raises(EventError, match="schema 99"):
            read_dead_letters(path)

    def test_nested_event_is_fully_validated(self, tmp_path):
        path = deadletter_path(tmp_path)
        envelope = {
            "schema": 1,
            "reason": "breaker_open",
            "event": {"schema": 1, "tenant": "t", "point": ["NaN-ish"]},
        }
        path.write_text(json.dumps(envelope) + "\n")
        with pytest.raises(EventError, match="not a number"):
            read_dead_letters(path)


class TestReplay:
    def test_full_replay_drains_to_empty_file(self, tmp_path):
        path = deadletter_path(tmp_path)
        append_dead_letters(path, make_letters(3), fsync=False)
        accepted: list[PointEvent] = []
        report = replay_dead_letters(
            path, lambda event: accepted.append(event) or True, fsync=False
        )
        assert report.replayed == 3
        assert report.requeued == 0
        assert report.drained
        assert len(accepted) == 3
        assert path.read_text() == ""
        assert read_dead_letters(path) == []

    def test_rejected_letters_are_kept(self, tmp_path):
        path = deadletter_path(tmp_path)
        append_dead_letters(path, make_letters(4), fsync=False)
        calls = iter([True, False, True, False])
        report = replay_dead_letters(
            path, lambda event: next(calls), fsync=False
        )
        assert report.replayed == 2
        assert report.requeued == 2
        assert not report.drained
        assert len(read_dead_letters(path)) == 2

    def test_service_error_keeps_letter_with_note(self, tmp_path):
        path = deadletter_path(tmp_path)
        append_dead_letters(path, make_letters(1), fsync=False)

        def explode(event):
            raise ServiceError("shard is failed")

        report = replay_dead_letters(path, explode, fsync=False)
        assert report.requeued == 1
        (letter,) = read_dead_letters(path)
        assert "replay failed" in (letter.error or "")

    def test_empty_queue_is_a_noop(self, tmp_path):
        report = replay_dead_letters(
            tmp_path / "absent.ndjson", lambda event: True
        )
        assert report.replayed == 0 and report.drained


class TestFailpoint:
    def test_flush_boundary_fires_after_durability(self, tmp_path):
        path = deadletter_path(tmp_path)
        with failpoint("dlq.append.flushed", "error"):
            with pytest.raises(OSError):
                append_dead_letters(path, make_letters(2), fsync=False)
        # The failpoint sits after the flush: both letters are on disk.
        assert len(read_dead_letters(path)) == 2
