"""SLO burn-rate engine: windows, alert lifecycle, fleet integration."""

from __future__ import annotations

import pytest

from repro.observability import (
    DEFAULT_OBJECTIVES,
    SLO_SCHEMA_VERSION,
    Observability,
    SLOEngine,
    SLObjective,
)
from repro.service import FleetConfig, FleetManager, PointEvent

SYNC = dict(
    window_size=400,
    points_per_bubble=20,
    checkpoint_every=8,
    fsync=False,
    workers=0,
    queue_points=64,
    batch_points=16,
)


def engine(**kwargs) -> SLOEngine:
    kwargs.setdefault("fast_window_seconds", 10.0)
    kwargs.setdefault("slow_window_seconds", 30.0)
    return SLOEngine(**kwargs)


def shed_sample(submitted: int, shed: int) -> dict:
    return {"submitted": submitted, "shed": shed}


class TestObjectiveValidation:
    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="target"):
            SLObjective("x", "d", target=1.0)
        with pytest.raises(ValueError, match="target"):
            SLObjective("x", "d", target=-0.1)

    def test_burn_thresholds_positive(self):
        with pytest.raises(ValueError, match="thresholds"):
            SLObjective("x", "d", target=0.9, fast_burn=0.0)

    def test_budget_is_complement(self):
        assert SLObjective("x", "d", target=0.99).budget == pytest.approx(
            0.01
        )

    def test_engine_rejects_bad_windows(self):
        with pytest.raises(ValueError, match="fast_window_seconds"):
            SLOEngine(fast_window_seconds=0.0)
        with pytest.raises(ValueError, match="slow_window_seconds"):
            SLOEngine(fast_window_seconds=60.0, slow_window_seconds=30.0)

    def test_engine_rejects_duplicate_names(self):
        objective = SLObjective("dup", "d", target=0.9)
        with pytest.raises(ValueError, match="unique"):
            SLOEngine(objectives=(objective, objective))


class TestAtRest:
    def test_summary_before_any_observation(self):
        summary = engine().summary()
        assert summary["schema"] == SLO_SCHEMA_VERSION
        assert summary["observations"] == 0
        assert summary["firing"] == 0
        names = [row["name"] for row in summary["objectives"]]
        assert names == [o.name for o in DEFAULT_OBJECTIVES]
        assert all(row["state"] == "ok" for row in summary["objectives"])

    def test_no_alerts_before_observation(self):
        assert engine().alerts() == []


class TestAlertLifecycle:
    def test_sustained_shedding_fires_then_resolves(self):
        eng = engine()
        # 50% shed against a 99.9% objective: burn rate 500, far over
        # both thresholds once both windows carry the bad rate.
        submitted = shed = 0
        now = 0.0
        for _ in range(35):
            now += 1.0
            submitted += 100
            shed += 50
            firing = eng.observe(shed_sample(submitted, shed), now=now)
        assert any(row["name"] == "shed_fraction" for row in firing)
        row = next(
            r
            for r in eng.summary()["objectives"]
            if r["name"] == "shed_fraction"
        )
        assert row["state"] == "firing"
        assert row["fast_burn_rate"] > row["fast_threshold"]
        assert row["since"] is not None
        # Recovery: clean traffic until both windows forget the incident.
        for _ in range(40):
            now += 1.0
            submitted += 100
            firing = eng.observe(shed_sample(submitted, shed), now=now)
        assert firing == []
        row = next(
            r
            for r in eng.summary()["objectives"]
            if r["name"] == "shed_fraction"
        )
        assert row["state"] == "resolved"
        assert eng.summary()["transitions"] == 2

    def test_short_blip_does_not_fire(self):
        # One bad second inside an otherwise clean half-minute: the
        # fast window breaches but the slow window absorbs it.
        eng = engine(fast_window_seconds=2.0, slow_window_seconds=30.0)
        submitted = shed = 0
        now = 0.0
        for i in range(30):
            now += 1.0
            submitted += 100
            if i == 25:
                # Breaches the fast window (10/200 vs the 0.1% budget)
                # but stays under the slow threshold over 30 s.
                shed += 10
            firing = eng.observe(shed_sample(submitted, shed), now=now)
            assert firing == [], f"fired at t={now}"
        assert eng.summary()["transitions"] == 0

    def test_transition_events_are_emitted(self):
        obs = Observability()
        eng = engine(obs=obs)
        submitted = shed = 0
        now = 0.0
        for _ in range(35):
            now += 1.0
            submitted += 100
            shed += 50
            eng.observe(shed_sample(submitted, shed), now=now)
        assert obs.event_count("slo_alert_firing") >= 1
        for _ in range(40):
            now += 1.0
            submitted += 100
            eng.observe(shed_sample(submitted, shed), now=now)
        assert obs.event_count("slo_alert_resolved") >= 1


class TestSampling:
    def test_counter_reset_clamps_to_zero(self):
        eng = engine()
        eng.observe(shed_sample(1000, 10), now=1.0)
        # A restarted counter goes backwards; the delta must clamp.
        eng.observe(shed_sample(100, 1), now=2.0)
        summary = eng.summary()
        assert summary["observations"] == 2
        assert all(
            row["fast_burn_rate"] >= 0.0 for row in summary["objectives"]
        )

    def test_torn_read_bad_capped_at_total(self):
        eng = engine()
        eng.observe(shed_sample(0, 0), now=1.0)
        # Torn read: shed moved before submitted was re-read.
        eng.observe(shed_sample(10, 50), now=2.0)
        row = next(
            r
            for r in eng.summary()["objectives"]
            if r["name"] == "shed_fraction"
        )
        # bad <= total, so the burn rate tops out at 1/budget.
        budget = 1.0 - 0.999
        assert row["fast_burn_rate"] <= 1.0 / budget + 1e-9

    def test_breaker_open_integrates_wall_clock(self):
        eng = engine()
        eng.observe({"breakers_open": 0}, now=0.0)
        eng.observe({"breakers_open": 1}, now=10.0)  # 10s open
        eng.observe({"breakers_open": 0}, now=11.0)  # 1s closed
        row = next(
            r
            for r in eng.summary()["objectives"]
            if r["name"] == "breaker_open"
        )
        # 10 of 11 integrated seconds were bad against a 1% budget.
        assert row["fast_burn_rate"] == pytest.approx(
            (10.0 / 11.0) / 0.01
        )

    def test_windows_bounded_by_capacity(self):
        eng = engine(capacity=8)
        for i in range(50):
            eng.observe(shed_sample(i, 0), now=float(i))
        assert eng.windows == 8


class TestFleetIntegration:
    def test_slo_tick_without_engine_is_noop(self, tmp_path):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            assert fleet.slo_tick() == []
            assert fleet.slo is None

    def test_rollup_carries_slo_summary(self, tmp_path):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            fleet.attach_slo(engine())
            for i in range(64):
                fleet.submit(
                    PointEvent(tenant="t", point=(float(i), 0.5), label=i)
                )
            fleet.slo_tick(now=1.0)
            rollup = fleet.rollup()
        slo = rollup["fleet"]["slo"]
        assert slo["schema"] == SLO_SCHEMA_VERSION
        assert slo["observations"] >= 1
        sample_row = next(
            r for r in slo["objectives"] if r["name"] == "ingest_p95"
        )
        assert sample_row["state"] in ("ok", "firing", "resolved")

    def test_fleet_sample_counts_ingest_latency_split(self, tmp_path):
        with FleetManager(tmp_path / "f", FleetConfig(**SYNC)) as fleet:
            fleet.attach_slo(engine())
            for i in range(64):
                fleet.submit(
                    PointEvent(tenant="t", point=(float(i), 0.5), label=i)
                )
            sample = fleet._slo_sample()
            assert sample["submitted"] == 64
            assert sample["ingest_count"] > 0
            assert 0 <= sample["ingest_slow"] <= sample["ingest_count"]
            assert sample["breakers_open"] == 0

    def test_drain_runs_final_evaluation(self, tmp_path):
        fleet = FleetManager(tmp_path / "f", FleetConfig(**SYNC))
        eng = engine()
        fleet.attach_slo(eng)
        for i in range(32):
            fleet.submit(
                PointEvent(tenant="t", point=(float(i), 0.5), label=i)
            )
        assert eng.observations == 0
        fleet.drain()
        assert eng.observations == 1
