"""Unit tests for the structured (non-Gaussian-mixture) generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import nested_density_mixture, ring, varying_density_mixture


class TestVaryingDensity:
    def test_counts_follow_ratio(self, rng):
        points, labels = varying_density_mixture(
            rng, total=900, density_ratio=8.0
        )
        dense = int((labels == 0).sum())
        sparse = int((labels == 1).sum())
        assert dense + sparse == 900
        assert dense / sparse == pytest.approx(8.0, rel=0.05)

    def test_equal_radii(self, rng):
        points, labels = varying_density_mixture(rng, total=4000)
        spread_dense = points[labels == 0].std(axis=0).mean()
        spread_sparse = points[labels == 1].std(axis=0).mean()
        assert spread_dense == pytest.approx(spread_sparse, rel=0.15)

    def test_separation(self, rng):
        points, labels = varying_density_mixture(rng, separation=30.0)
        center_gap = np.linalg.norm(
            points[labels == 0].mean(axis=0) - points[labels == 1].mean(axis=0)
        )
        assert center_gap == pytest.approx(30.0, abs=1.0)

    def test_ratio_validated(self, rng):
        with pytest.raises(ValueError):
            varying_density_mixture(rng, density_ratio=1.0)

    def test_seed_allocation_follows_density(self, rng):
        """The Section 4.1 point, made concrete: random seed sampling (the
        behaviour the β measure preserves) allocates bubbles proportionally
        to density — the dense region gets many more bubbles than the
        equal-volume sparse one, so its substructure stays resolvable."""
        from repro import BubbleBuilder, BubbleConfig, PointStore
        from repro.core import BetaQuality, BubbleClass

        points, labels = varying_density_mixture(
            rng, total=4_000, density_ratio=15.0
        )
        store = PointStore(dim=2)
        store.insert(points, labels)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=30, seed=0)).build(
            store
        )
        sparse_bubbles = [
            b.bubble_id
            for b in bubbles
            if b.n and (store.labels_of(b.member_ids()) == 1).mean() > 0.5
        ]
        dense_bubbles = [
            b.bubble_id
            for b in bubbles
            if b.n and (store.labels_of(b.member_ids()) == 0).mean() > 0.5
        ]
        assert len(dense_bubbles) >= 5 * max(len(sparse_bubbles), 1)
        # Per-bubble point loads stay comparable across regions (the β
        # distribution is what keeps them so).
        betas = bubbles.betas(store.size)
        report = BetaQuality(0.9).classify(bubbles, store.size)
        assert report.classes.count(BubbleClass.OVER_FILLED) <= 2
        assert betas.sum() == pytest.approx(1.0)


class TestNestedDensity:
    def test_counts_and_labels(self, rng):
        points, labels = nested_density_mixture(rng, parent=300, child=100)
        assert points.shape == (400, 2)
        assert int((labels == 1).sum()) == 100

    def test_child_is_denser(self, rng):
        points, labels = nested_density_mixture(rng)
        child_spread = points[labels == 1].std(axis=0).mean()
        parent_spread = points[labels == 0].std(axis=0).mean()
        assert child_spread < parent_spread / 5.0

    def test_child_inside_parent_region(self, rng):
        points, labels = nested_density_mixture(rng, parent_std=6.0)
        child_center = points[labels == 1].mean(axis=0)
        parent_center = points[labels == 0].mean(axis=0)
        assert np.linalg.norm(child_center - parent_center) < 2.5 * 6.0

    def test_optics_sees_nested_valley(self, rng):
        """The hierarchical claim: the dense child forms a deeper valley
        inside the parent's valley, recoverable at some dendrogram cut."""
        from repro.clustering import PointOptics, extract_candidates

        points, labels = nested_density_mixture(
            rng, parent=600, child=300, parent_std=6.0, child_std=0.3
        )
        plot = PointOptics(min_pts=10).fit(points)
        candidates = extract_candidates(plot.reachability, min_size=100)
        best_child_purity = 0.0
        for start, end in candidates:
            members = plot.ordering[start:end]
            best_child_purity = max(
                best_child_purity, float((labels[members] == 1).mean())
            )
        assert best_child_purity > 0.9


class TestRing:
    def test_radius_distribution(self, rng):
        points, labels = ring(rng, count=3000, radius=10.0, thickness=0.5)
        radii = np.linalg.norm(points, axis=1)
        assert radii.mean() == pytest.approx(10.0, abs=0.15)
        assert radii.std() == pytest.approx(0.5, abs=0.1)
        assert (labels == 0).all()

    def test_center_and_label(self, rng):
        points, labels = ring(
            rng, count=500, center=(5.0, -5.0), label=7
        )
        assert points.mean(axis=0) == pytest.approx([5.0, -5.0], abs=0.8)
        assert (labels == 7).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ring(rng, radius=0.0)
        with pytest.raises(ValueError):
            ring(rng, thickness=-1.0)

    def test_dbscan_keeps_ring_together(self, rng):
        """Non-convex shape: density-based methods keep the annulus whole
        (the k-means-vs-density motivation of Section 1)."""
        from repro.clustering import DBSCAN

        points, _ = ring(rng, count=1500, radius=10.0, thickness=0.3)
        labels = DBSCAN(eps=1.5, min_pts=5).fit(points)
        values, counts = np.unique(labels[labels >= 0], return_counts=True)
        assert counts.max() > 1400  # one dominant connected cluster
