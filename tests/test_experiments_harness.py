"""Unit tests for the experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BubbleBuilder, BubbleConfig, PointStore
from repro.clustering import BubbleOptics
from repro.experiments import (
    ExperimentConfig,
    candidate_point_sets,
    run_comparison,
    score_summary,
)


SMALL = ExperimentConfig(
    scenario="random",
    dim=2,
    initial_size=1200,
    num_bubbles=30,
    update_fraction=0.1,
    num_batches=2,
    min_pts=15,
    seed=0,
)


class TestScoreSummary:
    def test_clean_blobs_score_high(self, rng):
        store = PointStore(dim=2)
        points = np.vstack(
            [
                rng.normal([0, 0], 0.3, size=(500, 2)),
                rng.normal([30, 30], 0.3, size=(500, 2)),
            ]
        )
        labels = np.repeat([0, 1], 500)
        store.insert(points, labels)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=20, seed=0)).build(
            store
        )
        fscore, compact = score_summary(bubbles, store, SMALL)
        assert fscore > 0.95
        assert compact > 0.0

    def test_single_blob(self, rng):
        store = PointStore(dim=2)
        store.insert(
            rng.normal(size=(600, 2)) * 0.3, np.zeros(600, dtype=np.int64)
        )
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=15, seed=1)).build(
            store
        )
        fscore, _ = score_summary(bubbles, store, SMALL)
        assert fscore > 0.9


class TestCandidatePointSets:
    def test_majority_rule_and_translation(self, rng):
        store = PointStore(dim=2)
        points = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(200, 2)),
                rng.normal([20, 0], 0.2, size=(200, 2)),
            ]
        )
        store.insert(points, np.repeat([0, 1], 200))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=8, seed=2)).build(
            store
        )
        result = BubbleOptics(min_pts=20).fit(bubbles)
        expanded = result.expanded()
        alive_ids = store.ids()
        spans = [(0, len(expanded))]
        candidates = candidate_point_sets(expanded, spans, bubbles, alive_ids)
        # The all-spanning candidate contains every point exactly once.
        assert len(candidates) == 1
        assert sorted(candidates[0].tolist()) == list(range(store.size))

    def test_empty_span_gives_empty_candidate(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(100, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=4, seed=3)).build(
            store
        )
        result = BubbleOptics(min_pts=10).fit(bubbles)
        expanded = result.expanded()
        # A span of one entry cannot hold the majority of any multi-point
        # bubble (unless some bubble has a single point).
        spans = [(0, 1)]
        candidates = candidate_point_sets(
            expanded, spans, bubbles, store.ids()
        )
        first_bubble = int(expanded.source[0])
        if bubbles[first_bubble].n > 2:
            assert candidates[0].size == 0


class TestRunComparison:
    def test_traces_have_one_measurement_per_batch(self):
        result = run_comparison(SMALL)
        assert len(result.incremental.measurements) == 2
        assert len(result.complete.measurements) == 2
        assert result.config is SMALL

    def test_stores_stay_in_sync(self):
        # Indirect check: both arms' compactness and F-scores are finite
        # and the reports carry identical batch volumes.
        result = run_comparison(SMALL)
        for inc, cmp_ in zip(
            result.incremental.measurements, result.complete.measurements
        ):
            assert inc.report.num_deletions == cmp_.report.num_deletions
            assert inc.report.num_insertions == cmp_.report.num_insertions
            assert np.isfinite(inc.fscore) and np.isfinite(cmp_.fscore)

    def test_repetitions_differ(self):
        a = run_comparison(SMALL, repetition=0)
        b = run_comparison(SMALL, repetition=1)
        assert (
            a.incremental.fscores().tolist()
            != b.incremental.fscores().tolist()
            or a.incremental.compactnesses().tolist()
            != b.incremental.compactnesses().tolist()
        )

    def test_same_repetition_is_deterministic(self):
        a = run_comparison(SMALL, repetition=3)
        b = run_comparison(SMALL, repetition=3)
        assert a.incremental.fscores().tolist() == b.incremental.fscores().tolist()
        assert a.complete.compactnesses().tolist() == (
            b.complete.compactnesses().tolist()
        )

    def test_incremental_is_cheaper(self):
        result = run_comparison(SMALL)
        assert (
            result.incremental.total_computed()
            < result.complete.total_computed()
        )

    def test_arm_trace_helpers(self):
        result = run_comparison(SMALL)
        trace = result.incremental
        assert trace.mean_fscore() == pytest.approx(trace.fscores().mean())
        assert trace.rebuilt_fractions(SMALL.num_bubbles).shape == (2,)
        fractions = trace.insertion_pruned_fractions()
        assert ((fractions >= 0) & (fractions <= 1)).all()
