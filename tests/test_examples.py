"""Smoke test: every example script must run headlessly and exit 0.

Examples are living documentation; a refactor that breaks one breaks
the README's promises. Each script is executed as a real subprocess
(fresh interpreter, `PYTHONPATH=src`, no display, no arguments) so the
test sees exactly what a user sees.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "fleet_ingestion.py" in names
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAILPOINTS", None)  # examples must not inherit faults
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
