"""Unit tests for the shared OPTICS engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import run_optics


def line_distances(positions: np.ndarray):
    """1-d objects at the given coordinates."""

    def distances_from(obj: int) -> np.ndarray:
        return np.abs(positions - positions[obj])

    return distances_from


class TestEngine:
    def test_zero_objects_rejected(self):
        with pytest.raises(ValueError):
            run_optics(0, lambda i: np.empty(0), lambda i, d: 0.0)

    def test_single_object(self):
        plot = run_optics(
            1, lambda i: np.zeros(1), lambda i, d: 0.0
        )
        assert plot.ordering.tolist() == [0]
        assert np.isinf(plot.reachability[0])

    def test_walk_visits_nearest_first(self):
        positions = np.array([0.0, 1.0, 10.0, 11.0])
        plot = run_optics(
            4,
            line_distances(positions),
            lambda i, d: 0.0,  # every object is core with distance 0
        )
        # Starting at 0: nearest unprocessed chain is 1, then the far pair.
        assert plot.ordering.tolist() == [0, 1, 2, 3]
        assert plot.reachability.tolist() == pytest.approx(
            [np.inf, 1.0, 9.0, 1.0]
        )

    def test_core_distance_floors_reachability(self):
        positions = np.array([0.0, 1.0, 2.0])
        plot = run_optics(
            3,
            line_distances(positions),
            lambda i, d: 5.0,  # giant core distance everywhere
        )
        assert plot.reachability[1:].tolist() == pytest.approx([5.0, 5.0])

    def test_non_core_objects_do_not_expand(self):
        positions = np.array([0.0, 1.0, 2.0])

        def core(obj: int, dists: np.ndarray) -> float:
            return np.inf if obj == 1 else 0.0

        plot = run_optics(3, line_distances(positions), core)
        assert plot.ordering.tolist() == [0, 1, 2]
        # Object 1 was reached from 0, but could not propagate to 2 — the
        # reachability of 2 was set by 0 (distance 2), not by 1.
        assert plot.reachability[2] == pytest.approx(2.0)

    def test_disconnected_components_each_start_with_inf(self):
        positions = np.array([0.0, 1.0, 100.0, 101.0])
        plot = run_optics(
            4,
            line_distances(positions),
            lambda i, d: 0.0,
            eps=5.0,
        )
        assert np.isinf(plot.reachability).sum() == 2

    def test_reachability_values_are_max_of_core_and_distance(self):
        positions = np.array([0.0, 3.0])
        plot = run_optics(
            2, line_distances(positions), lambda i, d: 1.0
        )
        assert plot.reachability[1] == pytest.approx(3.0)

    def test_lazy_heap_updates_take_best(self):
        # A later-discovered shorter path must win: classic OPTICS update.
        positions = np.array([0.0, 10.0, 11.0, 20.0])
        plot = run_optics(
            4, line_distances(positions), lambda i, d: 0.0
        )
        order = plot.ordering.tolist()
        # 3 is reached via 2 (distance 9), not via 0 (distance 20).
        pos_of_3 = order.index(3)
        assert plot.reachability[pos_of_3] == pytest.approx(9.0)
