"""Unit tests for the experiment report rendering and row builders."""

from __future__ import annotations

import pytest

from repro.evaluation import summarize
from repro.experiments import (
    ExperimentConfig,
    render_figure9,
    render_figure10,
    render_figure11,
    render_series,
    render_table,
    render_table1,
    run_figure9,
    run_table1,
)
from repro.experiments.figure9 import Figure9Point
from repro.experiments.figure10 import Figure10Point
from repro.experiments.figure11 import Figure11Point
from repro.experiments.table1 import Table1Row


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            headers=["a", "long-header"],
            rows=[["x", 1], ["yyyy", 22]],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert set(lines[1]) == {"="}
        # All data lines have equal length (aligned columns).
        data = lines[2:]
        assert len({len(line.rstrip()) for line in data if "yyyy" in line}) == 1
        assert "long-header" in lines[2]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(headers=["a"], rows=[["x", "y"]])

    def test_render_series(self):
        text = render_series("x", "y", [(1, 2), (3, 4)])
        assert "x" in text and "y" in text
        assert "3" in text


class TestRenderers:
    def test_table1_renderer(self):
        row = Table1Row(
            dataset="Random2d",
            scheme="inc",
            fscore=summarize([0.9, 0.92]),
            compactness=summarize([100.0, 110.0]),
        )
        text = render_table1([row])
        assert "Random2d" in text
        assert "0.9100" in text

    def test_figure9_renderer(self):
        point = Figure9Point(
            update_fraction=0.02, rebuilt_fraction=summarize([0.01, 0.03])
        )
        text = render_figure9([point])
        assert "2%" in text
        assert "2.00%" in text

    def test_figure10_renderer_with_anchor(self):
        point = Figure10Point(
            update_fraction=0.1, pruned_fraction=summarize([0.7])
        )
        text = render_figure10([point], construction=summarize([0.8]))
        assert "static construction" in text
        assert "80.0%" in text
        assert "70.0%" in text

    def test_figure11_renderer(self):
        point = Figure11Point(
            update_fraction=0.04, saving_factor=summarize([120.0, 140.0])
        )
        text = render_figure11([point])
        assert "4%" in text
        assert "130.0" in text


class TestRunners:
    QUICK = ExperimentConfig(
        scenario="random",
        dim=2,
        initial_size=800,
        num_bubbles=20,
        update_fraction=0.1,
        num_batches=1,
        min_pts=10,
        seed=0,
    )

    def test_run_table1_row_structure(self):
        rows = run_table1(
            self.QUICK,
            repetitions=1,
            datasets=(("Random2d", "random", 2),),
        )
        assert len(rows) == 2
        assert rows[0].scheme == "complete"
        assert rows[1].scheme == "inc"
        assert rows[0].dataset == rows[1].dataset == "Random2d"
        assert 0.0 <= rows[1].fscore.mean <= 1.0

    def test_run_table1_validates_repetitions(self):
        with pytest.raises(ValueError):
            run_table1(self.QUICK, repetitions=0)

    def test_run_figure9_points(self):
        points = run_figure9(
            self.QUICK, update_fractions=(0.1,), repetitions=1
        )
        assert len(points) == 1
        assert points[0].update_fraction == 0.1
        assert 0.0 <= points[0].rebuilt_fraction.mean <= 1.0
