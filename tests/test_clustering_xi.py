"""Unit tests for the ξ-method cluster extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import PointOptics, extract_xi

INF = np.inf


class TestExtractXi:
    def test_two_deep_valleys(self):
        reach = np.concatenate(
            [[INF], np.full(19, 0.1), [5.0], np.full(19, 0.1)]
        )
        clusters = extract_xi(reach, xi=0.1, min_size=10)
        spans = [c.span() for c in clusters]
        # Both valleys must be recovered (possibly among larger candidates).
        assert any(s[0] <= 1 and 18 <= s[1] <= 21 for s in spans)
        assert any(19 <= s[0] <= 21 and s[1] >= 38 for s in spans)

    def test_flat_plot_has_no_clusters(self):
        reach = np.concatenate([[INF], np.full(30, 1.0)])
        assert extract_xi(reach, xi=0.05, min_size=5) == []

    def test_min_size_respected(self):
        reach = np.concatenate([[INF], np.full(3, 0.1), [5.0], np.full(3, 0.1)])
        clusters = extract_xi(reach, xi=0.1, min_size=10)
        assert all(c.size >= 10 for c in clusters)

    def test_empty_plot(self):
        assert extract_xi(np.empty(0)) == []

    def test_xi_validated(self):
        with pytest.raises(ValueError):
            extract_xi(np.array([INF, 1.0]), xi=0.0)
        with pytest.raises(ValueError):
            extract_xi(np.array([INF, 1.0]), xi=1.0)

    def test_cluster_size_property(self):
        clusters = extract_xi(
            np.concatenate([[INF], np.full(9, 0.1), [9.0], np.full(9, 0.1)]),
            xi=0.2,
            min_size=5,
        )
        for cluster in clusters:
            assert cluster.size == cluster.end - cluster.start

    def test_recovers_gaussian_blobs(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(80, 2)),
                rng.normal([10, 0], 0.2, size=(80, 2)),
                rng.normal([5, 9], 0.2, size=(80, 2)),
            ]
        )
        labels = np.repeat([0, 1, 2], 80)
        plot = PointOptics(min_pts=5).fit(points)
        clusters = extract_xi(plot.reachability, xi=0.05, min_size=40)
        # Every blob must appear as a (near-)pure cluster among the
        # extracted candidates.
        recovered = set()
        for cluster in clusters:
            members = plot.ordering[cluster.start : cluster.end]
            values, counts = np.unique(labels[members], return_counts=True)
            top = values[np.argmax(counts)]
            if counts.max() / counts.sum() > 0.95 and counts.max() >= 60:
                recovered.add(int(top))
        assert recovered == {0, 1, 2}

    def test_smaller_xi_finds_at_least_as_many(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.3, size=(60, 2)),
                rng.normal([8, 0], 0.3, size=(60, 2)),
            ]
        )
        plot = PointOptics(min_pts=5).fit(points)
        shallow = extract_xi(plot.reachability, xi=0.3, min_size=20)
        deep = extract_xi(plot.reachability, xi=0.02, min_size=20)
        assert len(deep) >= len(shallow)
