"""Unit tests for the scalability sweep experiment."""

from __future__ import annotations

from repro.experiments import (
    ExperimentConfig,
    render_dimension_sweep,
    render_size_sweep,
    run_dimension_sweep,
    run_size_sweep,
)

QUICK = ExperimentConfig(
    scenario="complex",
    dim=2,
    initial_size=1_000,
    num_bubbles=20,
    update_fraction=0.1,
    num_batches=2,
    min_pts=15,
    seed=0,
)


class TestSizeSweep:
    def test_structure(self):
        points = run_size_sweep(
            QUICK, sizes=(800, 1_600), points_per_bubble=80, repetitions=1
        )
        assert [p.size for p in points] == [800, 1_600]
        assert points[0].num_bubbles == 10
        assert points[1].num_bubbles == 20

    def test_rebuild_cost_scales_superlinearly(self):
        points = run_size_sweep(
            QUICK, sizes=(800, 3_200), points_per_bubble=80, repetitions=1
        )
        small, large = points
        # Complete rebuild pays N x B = N^2/ppb: 4x the size means 16x the
        # rebuild cost (allow generous slack for batch-volume noise).
        ratio = large.complete_cost.mean / small.complete_cost.mean
        assert ratio > 8.0

    def test_saving_factor_grows_with_size(self):
        points = run_size_sweep(
            QUICK, sizes=(800, 3_200), points_per_bubble=80, repetitions=1
        )
        assert points[1].saving_factor.mean > points[0].saving_factor.mean

    def test_render(self):
        points = run_size_sweep(
            QUICK, sizes=(800,), points_per_bubble=80, repetitions=1
        )
        text = render_size_sweep(points)
        assert "800" in text
        assert "saving factor" in text


class TestDimensionSweep:
    def test_structure_and_quality(self):
        points = run_dimension_sweep(QUICK, dims=(2, 5), repetitions=1)
        assert [p.dim for p in points] == [2, 5]
        for point in points:
            assert point.incremental_fscore.mean > 0.7
            assert point.complete_fscore.mean > 0.7
            assert 0.0 <= point.pruned_fraction.mean <= 1.0

    def test_render(self):
        points = run_dimension_sweep(QUICK, dims=(2,), repetitions=1)
        text = render_dimension_sweep(points)
        assert "2d" in text
        assert "incremental F" in text
