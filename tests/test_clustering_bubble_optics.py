"""Unit tests for OPTICS over data bubbles."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BubbleBuilder, BubbleConfig, PointStore
from repro.clustering import (
    BubbleOptics,
    bubble_distance_matrix,
    clusters_at_threshold,
)
from repro.sufficient import SufficientStatistics


@pytest.fixture
def summarized_blobs(rng):
    points = np.vstack(
        [
            rng.normal([0, 0], 0.3, size=(500, 2)),
            rng.normal([15, 0], 0.3, size=(500, 2)),
        ]
    )
    labels = np.repeat([0, 1], 500)
    store = PointStore(dim=2)
    store.insert(points, labels)
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=16, seed=0)).build(store)
    return store, bubbles, labels


class TestBubbleDistance:
    def test_separated_bubbles(self):
        a = SufficientStatistics.from_points(
            np.array([[0.0, 0.0], [1.0, 0.0]])
        )
        b = SufficientStatistics.from_points(
            np.array([[10.0, 0.0], [11.0, 0.0]])
        )
        # rep distance 10, extents 1 each, nnDist(1) = extent for n<=1?
        # n=2, k=1: (1/2)^(1/2) * 1
        dist = BubbleOptics.distance(a, b)
        nn = (0.5) ** 0.5
        assert dist == pytest.approx(10.0 - 2.0 + 2 * nn)

    def test_overlapping_bubbles(self):
        a = SufficientStatistics.from_points(
            np.array([[0.0, 0.0], [4.0, 0.0]])
        )
        b = SufficientStatistics.from_points(
            np.array([[1.0, 0.0], [5.0, 0.0]])
        )
        # rep distance 1 < extent sum 8 -> overlap branch.
        nn = (0.5) ** 0.5 * 4.0
        assert BubbleOptics.distance(a, b) == pytest.approx(nn)

    def test_symmetry(self, rng):
        a = SufficientStatistics.from_points(rng.normal(size=(20, 3)))
        b = SufficientStatistics.from_points(rng.normal(3.0, 1.0, size=(30, 3)))
        assert BubbleOptics.distance(a, b) == pytest.approx(
            BubbleOptics.distance(b, a)
        )

    def test_matrix_matches_pairwise_definition(self, summarized_blobs):
        _, bubbles, _ = summarized_blobs
        non_empty = bubbles.non_empty_ids()
        reps = np.stack([bubbles[i].rep for i in non_empty])
        extents = np.array([bubbles[i].extent for i in non_empty])
        nn1 = np.array([bubbles[i].nn_dist(1) for i in non_empty])
        matrix = bubble_distance_matrix(reps, extents, nn1)
        assert matrix == pytest.approx(matrix.T)
        assert (np.diag(matrix) == 0.0).all()
        for i, bi in enumerate(non_empty[:5]):
            for j, bj in enumerate(non_empty[:5]):
                if i == j:
                    continue
                expected = BubbleOptics.distance(
                    bubbles[bi].stats, bubbles[bj].stats
                )
                assert matrix[i, j] == pytest.approx(expected, rel=1e-9)


class TestBubbleOrdering:
    def test_blobs_separate_in_bubble_plot(self, summarized_blobs):
        store, bubbles, labels = summarized_blobs
        result = BubbleOptics(min_pts=30).fit(bubbles)
        # Cut the bubble-level plot: two clusters of bubbles.
        finite = result.plot.finite_reachability()
        threshold = (finite.min() + finite.max()) / 2.0
        spans = clusters_at_threshold(
            result.plot.reachability, threshold, min_size=2
        )
        assert len(spans) == 2

    def test_expansion_length_equals_database(self, summarized_blobs):
        store, bubbles, _ = summarized_blobs
        result = BubbleOptics(min_pts=30).fit(bubbles)
        expanded = result.expanded()
        assert len(expanded) == store.size

    def test_expanded_entries_attributed_to_real_bubbles(
        self, summarized_blobs
    ):
        store, bubbles, _ = summarized_blobs
        result = BubbleOptics(min_pts=30).fit(bubbles)
        expanded = result.expanded()
        for bubble_id, count in zip(
            *np.unique(expanded.source, return_counts=True)
        ):
            assert bubbles[int(bubble_id)].n == int(count)

    def test_empty_bubbles_excluded(self, rng):
        store = PointStore(dim=2)
        store.insert(rng.normal(size=(100, 2)))
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=5, seed=0)).build(
            store
        )
        # Manually drain one bubble.
        donor = bubbles.non_empty_ids()[0]
        from repro.core import merge_bubble
        from repro.geometry import DistanceCounter

        merge_bubble(bubbles, store, donor, DistanceCounter())
        result = BubbleOptics(min_pts=10).fit(bubbles)
        assert donor not in result.bubble_ids.tolist()

    def test_all_empty_raises(self):
        from repro.core import BubbleSet

        bubbles = BubbleSet(dim=2)
        bubbles.add_bubble(np.zeros(2))
        with pytest.raises(ValueError):
            BubbleOptics().fit(bubbles)

    def test_virtual_reachability_positive(self, summarized_blobs):
        _, bubbles, _ = summarized_blobs
        result = BubbleOptics(min_pts=30).fit(bubbles)
        assert (result.virtual_reachability > 0).all()
        assert np.isfinite(result.virtual_reachability).all()


class TestCoreDistanceSemantics:
    def test_large_bubble_uses_internal_estimate(self, summarized_blobs):
        _, bubbles, _ = summarized_blobs
        min_pts = 30
        result = BubbleOptics(min_pts=min_pts).fit(bubbles)
        for pos, compact in enumerate(result.bubble_ids):
            bubble = bubbles[int(compact)]
            if bubble.n >= min_pts:
                assert result.plot.core_distances[pos] == pytest.approx(
                    bubble.nn_dist(min_pts)
                )

    def test_min_pts_counts_points_not_bubbles(self, rng):
        # Bubbles of 5 points each; min_pts = 12 forces accumulation over
        # three bubbles.
        store = PointStore(dim=2)
        points = np.vstack(
            [rng.normal([i * 2.0, 0.0], 0.05, size=(5, 2)) for i in range(4)]
        )
        store.insert(points)
        bubbles = BubbleBuilder(BubbleConfig(num_bubbles=4, seed=2)).build(
            store
        )
        result = BubbleOptics(min_pts=12).fit(bubbles)
        assert np.isfinite(result.plot.core_distances).all()
        assert (result.plot.core_distances > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            BubbleOptics(min_pts=0)
        with pytest.raises(ValueError):
            BubbleOptics(eps=-1.0)
