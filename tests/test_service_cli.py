"""CLI coverage for serve, loadgen, --version, and exit codes."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import build_parser, main

QUICK_SERVE = [
    "--workers", "0",
    "--no-fsync",
    "--window", "400",
    "--points-per-bubble", "40",
    "--checkpoint-every", "4",
    "--queue-points", "64",
    "--batch-points", "16",
]


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip().split()[-1] == repro.__version__
        assert "repro-bubbles" in out

    def test_version_matches_package_metadata(self):
        from repro.cli import _package_version

        assert _package_version() == repro.__version__


class TestExitCodes:
    def test_unknown_subcommand_exits_2_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_no_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_serve_requires_fleet_dir(self):
        with pytest.raises(SystemExit):
            main(["serve"])


class TestParser:
    def test_service_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.input == "-"
        assert args.workers == 4
        assert args.queue_points == 1024
        assert args.batch_points == 64
        assert args.backpressure == "block"
        assert args.on_bad_event == "skip"
        assert args.dim == 2

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.out == "-"
        assert args.tenants == 8
        assert args.events == 5000
        assert args.zipf == pytest.approx(1.1)
        assert args.burst == pytest.approx(32.0)

    def test_bad_backpressure_choice_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--backpressure", "drop"])
        assert excinfo.value.code == 2


class TestLoadgen:
    def test_writes_deterministic_file(self, tmp_path, capsys):
        base = ["loadgen", "--events", "300", "--tenants", "4",
                "--seed", "9"]
        a, b = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
        assert main(base + ["--out", str(a)]) == 0
        assert "wrote 300 events" in capsys.readouterr().out
        assert main(base + ["--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        assert len(a.read_text().splitlines()) == 300

    def test_stdout_stream(self, capsys):
        assert main(["loadgen", "--out", "-", "--events", "40"]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert len(lines) == 40
        for line in lines:
            document = json.loads(line)
            assert document["schema"] == 1
            assert document["tenant"].startswith("tenant-")


class TestServe:
    def _events(self, tmp_path, events=600, tenants=8):
        path = tmp_path / "events.ndjson"
        assert main(
            [
                "loadgen",
                "--out", str(path),
                "--events", str(events),
                "--tenants", str(tenants),
                "--seed", "7",
            ]
        ) == 0
        return path

    def test_round_trip_with_artifacts(self, tmp_path, capsys):
        events = self._events(tmp_path)
        fleet_dir = tmp_path / "fleet"
        rollup_path = tmp_path / "rollup.json"
        health_path = tmp_path / "health.json"
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--fleet-dir", str(fleet_dir),
                "--input", str(events),
                "--rollup-out", str(rollup_path),
                "--fleet-health-out", str(health_path),
                *QUICK_SERVE,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "initialized fleet" in out
        assert "fleet rollup (schema 1)" in out
        assert "served 600 events: 600 accepted" in out
        assert (fleet_dir / "fleet.json").exists()
        tenant_dirs = sorted((fleet_dir / "tenants").iterdir())
        assert len(tenant_dirs) == 8
        rollup = json.loads(rollup_path.read_text())
        assert rollup["fleet"]["applied_points"] == 600
        assert rollup["fleet"]["states"] == {"stopped": 8}
        health = json.loads(health_path.read_text())
        assert len(health["shards"]) == 8

    def test_resume_recovers_fleet(self, tmp_path, capsys):
        events = self._events(tmp_path, events=400)
        fleet_dir = tmp_path / "fleet"
        base = [
            "serve", "--fleet-dir", str(fleet_dir),
            "--input", str(events), *QUICK_SERVE,
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "recovered fleet" in out
        assert "8 tenant shard(s) resumed" in out
        assert "served 400 events: 400 accepted" in out

    def test_fresh_serve_refuses_existing_fleet(self, tmp_path, capsys):
        events = self._events(tmp_path, events=100)
        fleet_dir = tmp_path / "fleet"
        base = [
            "serve", "--fleet-dir", str(fleet_dir),
            "--input", str(events), *QUICK_SERVE,
        ]
        assert main(base) == 0
        assert main(base) == 1
        assert "already holds a fleet" in capsys.readouterr().err

    def test_strict_policy_aborts_on_bad_line(self, tmp_path, capsys):
        events = tmp_path / "events.ndjson"
        events.write_text(
            '{"tenant": "a", "point": [1.0, 2.0]}\n'
            "garbage\n"
            '{"tenant": "b", "point": [3.0, 4.0]}\n'
        )
        code = main(
            [
                "serve",
                "--fleet-dir", str(tmp_path / "fleet"),
                "--input", str(events),
                "--on-bad-event", "strict",
                *QUICK_SERVE,
            ]
        )
        assert code == 1
        assert "line 2" in capsys.readouterr().err

    def test_skip_policy_counts_bad_lines(self, tmp_path, capsys):
        events = tmp_path / "events.ndjson"
        events.write_text(
            '{"tenant": "a", "point": [1.0, 2.0]}\n'
            "garbage\n"
            '{"tenant": "b", "point": [3.0, 4.0]}\n'
        )
        code = main(
            [
                "serve",
                "--fleet-dir", str(tmp_path / "fleet"),
                "--input", str(events),
                "--on-bad-event", "skip",
                *QUICK_SERVE,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 2 events: 2 accepted, 0 dropped, 1 invalid" in out


def _boom(self, points, labels=None):
    raise RuntimeError("poisoned batch")


class TestServeFailureExit:
    def _poisoned_serve(self, tmp_path, monkeypatch, extra=()):
        from repro.streaming import DurableSummarizer

        monkeypatch.setattr(DurableSummarizer, "append", _boom)
        events = tmp_path / "events.ndjson"
        assert main(
            [
                "loadgen", "--out", str(events),
                "--events", "120", "--tenants", "3", "--seed", "3",
            ]
        ) == 0
        return main(
            [
                "serve",
                "--fleet-dir", str(tmp_path / "fleet"),
                "--input", str(events),
                *QUICK_SERVE,
                *extra,
            ]
        )

    def test_failed_shards_without_supervisor_exit_3(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import EXIT_FAILED_SHARDS

        with pytest.raises(SystemExit) as excinfo:
            self._poisoned_serve(tmp_path, monkeypatch)
        assert excinfo.value.code == EXIT_FAILED_SHARDS
        err = capsys.readouterr().err
        assert "no supervisor attached" in err
        assert "repro-bubbles dlq" in err

    def test_supervised_serve_does_not_exit_3(
        self, tmp_path, monkeypatch, capsys
    ):
        code = self._poisoned_serve(
            tmp_path, monkeypatch, extra=["--supervise"]
        )
        assert code == 0
        assert "supervision on" in capsys.readouterr().out


class TestDlqCommand:
    def test_list_and_replay_round_trip(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.streaming import DurableSummarizer

        events = tmp_path / "events.ndjson"
        assert main(
            [
                "loadgen", "--out", str(events),
                "--events", "80", "--tenants", "2", "--seed", "5",
            ]
        ) == 0
        fleet_dir = tmp_path / "fleet"
        with monkeypatch.context() as patch:
            patch.setattr(DurableSummarizer, "append", _boom)
            with pytest.raises(SystemExit):  # failed shards, code 3
                main(
                    [
                        "serve", "--fleet-dir", str(fleet_dir),
                        "--input", str(events), *QUICK_SERVE,
                    ]
                )
        capsys.readouterr()
        assert main(["dlq", "--fleet-dir", str(fleet_dir)]) == 0
        out = capsys.readouterr().out
        assert "append_failed" in out
        assert "0 dead letter(s) total" not in out
        # The poison is gone: replay drains every queue to zero.
        assert main(
            [
                "dlq", "--replay", "--fleet-dir", str(fleet_dir),
                "--no-fsync",
            ]
        ) == 0
        assert "0 still parked" in capsys.readouterr().out
        assert main(["dlq", "--fleet-dir", str(fleet_dir)]) == 0
        assert "0 dead letter(s) total" in capsys.readouterr().out

    def test_requires_a_directory(self):
        with pytest.raises(SystemExit, match="fleet-dir or --wal-dir"):
            main(["dlq"])


class TestVerifyChainCommand:
    def test_clean_and_corrupt_wal(self, tmp_path, capsys):
        import numpy as np

        from repro import UpdateBatch
        from repro.persistence import WriteAheadLog

        state = tmp_path / "state"
        state.mkdir()
        wal = WriteAheadLog(state / "wal.log", fsync=False)
        rng = np.random.default_rng(0)
        for seq in range(3):
            wal.append(
                seq,
                UpdateBatch(
                    deletions=(),
                    insertions=rng.normal(size=(4, 2)),
                    insertion_labels=(-1,) * 4,
                ),
            )
        wal.close()
        assert main(["verify-chain", "--wal-dir", str(state)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "crc+chain" in out

        data = bytearray((state / "wal.log").read_bytes())
        data[len(data) // 2] ^= 0x01  # single bit flip mid-file
        (state / "wal.log").write_bytes(bytes(data))
        with pytest.raises(SystemExit) as excinfo:
            main(["verify-chain", "--wal-dir", str(state)])
        assert excinfo.value.code == 1
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.out
        assert "failed integrity verification" in captured.err

    def test_requires_a_directory(self):
        with pytest.raises(SystemExit, match="wal-dir or --fleet-dir"):
            main(["verify-chain"])

    def test_missing_fleet_is_an_error_not_a_silent_pass(
        self, tmp_path, capsys
    ):
        code = main(["verify-chain", "--fleet-dir", str(tmp_path / "no")])
        assert code == 1
        assert "holds no fleet" in capsys.readouterr().err


class TestTelemetryPlaneCLI:
    def _events(self, tmp_path, events=300, tenants=4):
        path = tmp_path / "events.ndjson"
        assert main(
            [
                "loadgen",
                "--out", str(path),
                "--events", str(events),
                "--tenants", str(tenants),
                "--seed", "7",
            ]
        ) == 0
        return path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.listen is None
        assert args.trace is False
        assert args.slo_fast_seconds == pytest.approx(60.0)
        assert args.slo_slow_seconds == pytest.approx(300.0)
        args = build_parser().parse_args(["trace", "--fleet-dir", "f"])
        assert args.top == 3

    def test_serve_with_listener_and_trace(self, tmp_path, capsys):
        events = self._events(tmp_path)
        fleet_dir = tmp_path / "fleet"
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--fleet-dir", str(fleet_dir),
                "--input", str(events),
                "--listen", "0",
                "--trace",
                "--slo-fast-seconds", "5",
                "--slo-slow-seconds", "15",
                *QUICK_SERVE,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry plane listening on http://127.0.0.1:" in out
        assert "slo windows 5s/15s" in out
        assert "trace recording on" in out
        # The rollup line carries the SLO objective states.
        assert "slo: 0 firing / 4 objectives" in out
        traces = sorted((fleet_dir / "tenants").glob("*/trace.jsonl"))
        assert len(traces) == 4
        assert all(p.stat().st_size > 0 for p in traces)

    def test_trace_command_reports_critical_paths(self, tmp_path, capsys):
        events = self._events(tmp_path)
        fleet_dir = tmp_path / "fleet"
        assert main(
            [
                "serve",
                "--fleet-dir", str(fleet_dir),
                "--input", str(events),
                "--trace",
                *QUICK_SERVE,
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            ["trace", "--fleet-dir", str(fleet_dir), "--top", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-op latency" in out
        assert "ingest_batch" in out
        assert "critical path, top 2" in out
        assert "exemplar trace ids:" in out

    def test_trace_requires_fleet_dir(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_trace_missing_fleet_exits_1(self, tmp_path, capsys):
        assert main(
            ["trace", "--fleet-dir", str(tmp_path / "nothing")]
        ) == 1
        assert "fleet.json is missing" in capsys.readouterr().err

    def test_trace_without_recordings_prints_hint(self, tmp_path, capsys):
        events = self._events(tmp_path, events=60)
        fleet_dir = tmp_path / "fleet"
        assert main(
            [
                "serve",
                "--fleet-dir", str(fleet_dir),
                "--input", str(events),
                *QUICK_SERVE,
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "--fleet-dir", str(fleet_dir)]) == 0
        assert "no spans found" in capsys.readouterr().out
