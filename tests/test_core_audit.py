"""Self-healing invariant audits: detect, repair, re-verify."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AuditReport,
    BubbleBuilder,
    BubbleConfig,
    InvariantAuditor,
    PointStore,
    SlidingWindowSummarizer,
)
from repro.core import verify_consistency
from repro.observability import EventTracer, Observability


@pytest.fixture
def world(rng):
    store = PointStore(dim=2)
    store.insert(rng.normal(size=(300, 2)), np.zeros(300, dtype=np.int64))
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=10, seed=0)).build(
        store
    )
    return store, bubbles


def point_of(store, pid):
    return store.points_of(np.asarray([pid], dtype=np.int64))[0]


class TestAuditReport:
    def test_healthy_when_clean(self):
        assert AuditReport(ok=True).healthy

    def test_healthy_when_repaired(self):
        assert AuditReport(ok=False, post_repair_ok=True).healthy

    def test_unhealthy_when_repair_failed_or_skipped(self):
        assert not AuditReport(ok=False, post_repair_ok=False).healthy
        assert not AuditReport(ok=False, violations=("x",)).healthy


class TestCleanAudit:
    def test_fresh_build_audits_clean(self, world):
        store, bubbles = world
        report = InvariantAuditor(bubbles, store).audit()
        assert report.ok
        assert report.healthy
        assert report.violations == ()
        assert report.repaired_bubbles == ()
        assert report.post_repair_ok is None

    def test_clean_audit_does_not_mutate(self, world):
        store, bubbles = world
        before = {
            b.bubble_id: (b.stats.n, b.members) for b in bubbles
        }
        InvariantAuditor(bubbles, store).audit()
        after = {b.bubble_id: (b.stats.n, b.members) for b in bubbles}
        assert before == after


class TestRepairs:
    def test_stats_drift_is_repaired(self, world):
        store, bubbles = world
        victim = bubbles.non_empty_ids()[0]
        # A phantom point in the statistics only: n/LS/SS drift away
        # from the membership.
        bubbles[victim].stats.insert(np.array([50.0, 50.0]))
        assert not verify_consistency(bubbles, store).ok

        report = InvariantAuditor(bubbles, store).audit()
        assert not report.ok
        assert report.post_repair_ok is True
        assert report.healthy
        assert victim in report.repaired_bubbles
        assert verify_consistency(bubbles, store).ok

    def test_orphaned_point_is_rehomed_to_nearest_bubble(self, world):
        store, bubbles = world
        victim = bubbles.non_empty_ids()[0]
        pid = int(min(bubbles[victim].members))
        bubbles[victim].release(pid, point_of(store, pid))
        assert not verify_consistency(bubbles, store).ok

        report = InvariantAuditor(bubbles, store).audit()
        assert report.healthy
        # The point is a member of exactly one bubble again, and the
        # ownership record matches.
        holders = [
            b.bubble_id for b in bubbles if pid in b.members
        ]
        assert len(holders) == 1
        assert store.owner(pid) == holders[0]
        assert verify_consistency(bubbles, store).ok

    def test_duplicate_membership_is_resolved(self, world):
        store, bubbles = world
        donor = bubbles.non_empty_ids()[0]
        other = bubbles.non_empty_ids()[1]
        pid = int(min(bubbles[donor].members))
        bubbles[other].absorb(pid, point_of(store, pid))
        assert not verify_consistency(bubbles, store).ok

        report = InvariantAuditor(bubbles, store).audit()
        assert report.healthy
        holders = [b.bubble_id for b in bubbles if pid in b.members]
        # The store's owner record broke the tie: the point stays where
        # it always was.
        assert holders == [donor]
        assert verify_consistency(bubbles, store).ok

    def test_ownership_mismatch_is_rewritten(self, world):
        store, bubbles = world
        donor = bubbles.non_empty_ids()[0]
        other = bubbles.non_empty_ids()[1]
        pid = int(min(bubbles[donor].members))
        store.set_owners(
            np.asarray([pid], dtype=np.int64),
            np.asarray([other], dtype=np.int64),
        )
        assert not verify_consistency(bubbles, store).ok

        report = InvariantAuditor(bubbles, store).audit()
        assert report.healthy
        assert report.reassigned_points >= 1
        assert store.owner(pid) == donor
        assert verify_consistency(bubbles, store).ok

    def test_healthy_bubbles_keep_their_float_history(self, world):
        store, bubbles = world
        victim = bubbles.non_empty_ids()[0]
        untouched = bubbles.non_empty_ids()[1]
        before_ls = np.asarray(bubbles[untouched].stats.linear_sum).copy()
        before_ss = bubbles[untouched].stats.square_sum
        bubbles[victim].stats.insert(np.array([50.0, 50.0]))

        report = InvariantAuditor(bubbles, store).audit()
        assert report.healthy
        # Only the drifted bubble was rebuilt; the healthy one keeps its
        # insertion-order floating-point history bit-for-bit.
        assert untouched not in report.repaired_bubbles
        assert np.array_equal(
            np.asarray(bubbles[untouched].stats.linear_sum), before_ls
        )
        assert bubbles[untouched].stats.square_sum == before_ss

    def test_repair_false_reports_without_mutating(self, world):
        store, bubbles = world
        victim = bubbles.non_empty_ids()[0]
        bubbles[victim].stats.insert(np.array([50.0, 50.0]))
        drifted_n = bubbles[victim].stats.n

        report = InvariantAuditor(bubbles, store).audit(repair=False)
        assert not report.ok
        assert not report.healthy
        assert report.violations
        assert report.post_repair_ok is None
        assert bubbles[victim].stats.n == drifted_n  # untouched
        assert not verify_consistency(bubbles, store).ok


class TestRetiredBubbles:
    @pytest.fixture
    def stream(self, rng):
        stream = SlidingWindowSummarizer(
            dim=2, window_size=400, points_per_bubble=20, seed=5
        )
        for _ in range(8):
            stream.append(rng.normal(size=(60, 2)))
        assert stream.is_ready()
        return stream

    def test_orphans_never_rehomed_into_retired_bubbles(self, stream):
        maintainer = stream.maintainer
        store, bubbles = maintainer.store, maintainer.bubbles
        # Manufacture a retired bubble: move its members elsewhere
        # through the proper primitives, then park it.
        retired_bid = bubbles.non_empty_ids()[0]
        target_bid = bubbles.non_empty_ids()[1]
        moved = bubbles[retired_bid].clear()
        ids = np.asarray(moved, dtype=np.int64)
        bubbles[target_bid].absorb_many(ids, store.points_of(ids))
        store.set_owners(
            ids, np.full(ids.size, target_bid, dtype=np.int64)
        )
        maintainer.restore_retired(
            set(maintainer.retired_ids) | {retired_bid}
        )
        assert verify_consistency(bubbles, store).ok

        # Now orphan a point sitting right on the retired bubble's seed
        # neighbourhood and audit: it must land in an *active* bubble.
        pid = int(min(bubbles[target_bid].members))
        bubbles[target_bid].release(pid, point_of(store, pid))
        report = InvariantAuditor.for_maintainer(maintainer).audit()
        assert report.healthy
        assert bubbles[retired_bid].is_empty()
        assert pid not in bubbles[retired_bid].members
        assert store.owner(pid) != retired_bid

    def test_point_claimed_only_by_retired_bubble_is_rescued(self, stream):
        maintainer = stream.maintainer
        store, bubbles = maintainer.store, maintainer.bubbles
        # Properly retire an emptied bubble first...
        retired_bid = bubbles.non_empty_ids()[0]
        target_bid = bubbles.non_empty_ids()[1]
        moved = bubbles[retired_bid].clear()
        ids = np.asarray(moved, dtype=np.int64)
        bubbles[target_bid].absorb_many(ids, store.points_of(ids))
        store.set_owners(
            ids, np.full(ids.size, target_bid, dtype=np.int64)
        )
        maintainer.restore_retired(
            set(maintainer.retired_ids) | {retired_bid}
        )
        # ...then corrupt: a point claimed *only* by the retired bubble.
        pid = int(min(bubbles[target_bid].members))
        point = point_of(store, pid)
        bubbles[target_bid].release(pid, point)
        bubbles[retired_bid].absorb(pid, point)

        report = InvariantAuditor.for_maintainer(maintainer).audit()
        assert report.healthy
        assert bubbles[retired_bid].is_empty()
        assert store.owner(pid) != retired_bid


class TestObservability:
    def test_audit_counters_and_events(self, world):
        store, bubbles = world
        obs = Observability(tracer=EventTracer())
        auditor = InvariantAuditor(bubbles, store, obs=obs)

        auditor.audit()  # clean
        victim = bubbles.non_empty_ids()[0]
        bubbles[victim].stats.insert(np.array([50.0, 50.0]))
        auditor.audit()  # drifted: repairs

        assert obs.metrics.get("repro_audit_runs_total").value == 2
        assert obs.metrics.get("repro_audit_violations_total").value >= 1
        assert obs.metrics.get("repro_audit_repairs_total").value >= 1
        assert obs.tracer.counts().get("audit") == 2
        repair_events = obs.tracer.events("audit_repair")
        assert len(repair_events) == 1
        assert repair_events[0].fields["post_repair_ok"] is True

    def test_for_maintainer_inherits_the_maintainer_obs(self, rng):
        obs = Observability(tracer=EventTracer())
        stream = SlidingWindowSummarizer(
            dim=2, window_size=400, points_per_bubble=20, seed=5, obs=obs
        )
        for _ in range(4):
            stream.append(rng.normal(size=(60, 2)))
        auditor = InvariantAuditor.for_maintainer(stream.maintainer)
        auditor.audit()
        assert obs.metrics.get("repro_audit_runs_total").value == 1
