"""Unit tests for the DBSCAN reference substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import DBSCAN, PointOptics, clusters_at_threshold


class TestDbscan:
    def test_two_blobs(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(50, 2)),
                rng.normal([10, 10], 0.2, size=(50, 2)),
            ]
        )
        labels = DBSCAN(eps=1.0, min_pts=5).fit(points)
        assert set(labels[:50].tolist()) == {labels[0]}
        assert set(labels[50:].tolist()) == {labels[50]}
        assert labels[0] != labels[50]
        assert (labels >= 0).all()

    def test_noise_detected(self, rng):
        points = np.vstack(
            [
                rng.normal([0, 0], 0.1, size=(50, 2)),
                np.array([[100.0, 100.0]]),
            ]
        )
        labels = DBSCAN(eps=1.0, min_pts=5).fit(points)
        assert labels[-1] == -1

    def test_all_noise_when_sparse(self, rng):
        points = rng.uniform(0, 1000, size=(20, 2))
        labels = DBSCAN(eps=0.001, min_pts=3).fit(points)
        assert (labels == -1).all()

    def test_single_cluster_when_eps_huge(self, rng):
        points = rng.normal(size=(30, 2))
        labels = DBSCAN(eps=1000.0, min_pts=3).fit(points)
        assert (labels == 0).all()

    def test_empty_input(self):
        assert DBSCAN(eps=1.0).fit(np.empty((0, 2))).shape == (0,)

    def test_chain_connectivity(self):
        # Points in a chain, each within eps of the next: single cluster.
        points = np.array([[float(i) * 0.9, 0.0] for i in range(20)])
        labels = DBSCAN(eps=1.0, min_pts=2).fit(points)
        assert (labels == 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0)
        with pytest.raises(ValueError):
            DBSCAN(eps=1.0, min_pts=0)
        with pytest.raises(ValueError):
            DBSCAN(eps=1.0).fit(np.zeros(3))


class TestOpticsConsistency:
    def test_optics_cut_matches_dbscan_components(self, rng):
        """A horizontal cut of the OPTICS plot at eps recovers DBSCAN's
        clusters (up to border points, absent in well-separated blobs)."""
        points = np.vstack(
            [
                rng.normal([0, 0], 0.15, size=(60, 2)),
                rng.normal([8, 0], 0.15, size=(60, 2)),
                rng.normal([4, 7], 0.15, size=(60, 2)),
            ]
        )
        eps, min_pts = 1.0, 5
        db_labels = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
        plot = PointOptics(min_pts=min_pts).fit(points)
        spans = clusters_at_threshold(plot.reachability, eps, min_size=min_pts)
        assert len(spans) == len(set(db_labels[db_labels >= 0].tolist()))
        for start, end in spans:
            members = plot.ordering[start:end]
            assert len(set(db_labels[members].tolist())) == 1
