"""Health reports: section contents, text rendering, file output."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.observability import (
    HEALTH_SCHEMA_VERSION,
    EventTracer,
    Observability,
    SpanTracer,
    TimeseriesRecorder,
    collect_health,
    render_health,
    write_health,
)
from repro.streaming import SlidingWindowSummarizer


def _instrumented_run():
    obs = Observability(
        tracer=EventTracer(),
        spans=SpanTracer(),
        timeseries=TimeseriesRecorder(interval=2),
    )
    stream = SlidingWindowSummarizer(
        dim=2,
        window_size=500,
        points_per_bubble=25,
        seed=0,
        obs=obs,
    )
    rng = np.random.default_rng(5)
    for i in range(6):
        stream.append(rng.normal(size=(125, 2)) + 0.3 * i)
    return obs, stream


class TestCollect:
    def test_live_run_fills_every_section(self):
        obs, stream = _instrumented_run()
        report = collect_health(obs, summarizer=stream)
        assert report["schema"] == HEALTH_SCHEMA_VERSION
        assert report["source"] == "live"

        assert report["stream"]["window_points"] == stream.size
        assert (
            report["stream"]["active_bubbles"]
            == stream.maintainer.active_count
        )
        assert report["stream"]["points_ingested"] == 750

        quality = report["quality"]
        classes = quality["classes"]
        assert set(classes) == {"good", "under-filled", "over-filled"}
        assert sum(classes.values()) == quality["bubbles"]
        assert quality["beta"]["min"] <= quality["beta"]["median"]
        assert quality["beta"]["median"] <= quality["beta"]["max"]
        assert quality["boundaries"]["lower"] < quality["boundaries"]["upper"]

        pruning = report["pruning"]
        totals = stream.counter.snapshot()
        assert pruning["distances_computed"] == totals.computed
        assert pruning["distances_pruned"] == totals.pruned
        assert 0.0 < pruning["savings_ratio"] < 1.0

        ops = {row["op"] for row in report["spans"]}
        assert {"stream_append", "apply_batch", "bootstrap"} <= ops
        for row in report["spans"]:
            assert row["mean_seconds"] * row["count"] == pytest.approx(
                row["total_seconds"]
            )

        assert report["events"].get("insert_batch", 0) > 0
        assert report["timeseries"]["interval"] == 2
        assert report["timeseries"]["windows"] > 0

    def test_without_summarizer_quality_is_null(self):
        obs = Observability()
        report = collect_health(obs, source="state/")
        assert report["quality"] is None
        assert report["source"] == "state/"
        assert report["spans"] == []

    def test_span_rows_sorted_by_total_time(self):
        obs, stream = _instrumented_run()
        rows = collect_health(obs, summarizer=stream)["spans"]
        totals = [row["total_seconds"] for row in rows]
        assert totals == sorted(totals, reverse=True)


class TestRender:
    def test_text_report_names_every_section(self):
        obs, stream = _instrumented_run()
        text = render_health(collect_health(obs, summarizer=stream))
        for heading in (
            "stream",
            "quality (Definitions 2-3)",
            "pruning (Figures 10-11)",
            "span latency (by total time)",
            "events",
            "robustness",
            "timeseries",
        ):
            assert heading in text

    def test_quality_placeholder_without_summarizer(self):
        text = render_health(collect_health(Observability()))
        assert "quality unavailable" in text
        assert "no spans recorded" in text


class TestWrite:
    def test_write_health_round_trips(self, tmp_path):
        obs, stream = _instrumented_run()
        report = collect_health(obs, summarizer=stream)
        path = tmp_path / "health.json"
        write_health(report, path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == json.loads(json.dumps(report))
        assert loaded["schema"] == HEALTH_SCHEMA_VERSION
