"""Unit tests for the derived bubble quantities (rep, extent, nnDist)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyBubbleError
from repro.sufficient import (
    SufficientStatistics,
    extent,
    nn_dist,
    radius_std,
    representative,
)


def brute_force_extent(points: np.ndarray) -> float:
    """Average pairwise distance, squared-mean convention of Definition 1."""
    n = len(points)
    total = 0.0
    for i in range(n):
        for j in range(n):
            if i != j:
                total += float(np.sum((points[i] - points[j]) ** 2))
    return float(np.sqrt(total / (n * (n - 1))))


class TestRepresentative:
    def test_is_mean(self):
        points = np.array([[1.0, 0.0], [3.0, 2.0], [5.0, 4.0]])
        stats = SufficientStatistics.from_points(points)
        assert representative(stats) == pytest.approx(points.mean(axis=0))

    def test_empty_raises(self):
        with pytest.raises(EmptyBubbleError):
            representative(SufficientStatistics(dim=2))


class TestExtent:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(40, 3))
        stats = SufficientStatistics.from_points(points)
        assert extent(stats) == pytest.approx(
            brute_force_extent(points), rel=1e-9
        )

    def test_singleton_extent_is_zero(self):
        stats = SufficientStatistics.from_points(np.array([[5.0, 5.0]]))
        assert extent(stats) == 0.0

    def test_identical_points_extent_is_zero(self):
        stats = SufficientStatistics.from_points(np.full((10, 2), 3.0))
        assert extent(stats) == pytest.approx(0.0, abs=1e-6)

    def test_two_points(self):
        stats = SufficientStatistics.from_points(
            np.array([[0.0, 0.0], [3.0, 4.0]])
        )
        # Average pairwise distance over the single pair is just 5.
        assert extent(stats) == pytest.approx(5.0)

    def test_empty_raises(self):
        with pytest.raises(EmptyBubbleError):
            extent(SufficientStatistics(dim=2))

    def test_scale_equivariance(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(20, 2))
        small = SufficientStatistics.from_points(points)
        large = SufficientStatistics.from_points(points * 10.0)
        assert extent(large) == pytest.approx(10.0 * extent(small))

    def test_translation_invariance(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(20, 2))
        base = SufficientStatistics.from_points(points)
        shifted = SufficientStatistics.from_points(points + 1_000.0)
        assert extent(shifted) == pytest.approx(extent(base), rel=1e-6)


class TestRadiusStd:
    def test_matches_deviation_from_mean(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(50, 4))
        stats = SufficientStatistics.from_points(points)
        mean = points.mean(axis=0)
        expected = np.sqrt(((points - mean) ** 2).sum(axis=1).mean())
        assert radius_std(stats) == pytest.approx(expected, rel=1e-9)

    def test_empty_raises(self):
        with pytest.raises(EmptyBubbleError):
            radius_std(SufficientStatistics(dim=2))


class TestNnDist:
    def test_k1_formula(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(100, 2))
        stats = SufficientStatistics.from_points(points)
        expected = (1 / 100) ** (1 / 2) * extent(stats)
        assert nn_dist(stats, 1) == pytest.approx(expected)

    def test_monotone_in_k(self):
        rng = np.random.default_rng(5)
        stats = SufficientStatistics.from_points(rng.normal(size=(50, 3)))
        values = [nn_dist(stats, k) for k in range(1, 50)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_saturates_at_extent(self):
        rng = np.random.default_rng(6)
        stats = SufficientStatistics.from_points(rng.normal(size=(10, 2)))
        assert nn_dist(stats, 10) == pytest.approx(extent(stats))
        assert nn_dist(stats, 100) == pytest.approx(extent(stats))

    def test_dimension_dependence(self):
        # The (k/n)^(1/d) factor grows with d for k < n.
        rng = np.random.default_rng(7)
        points2 = rng.normal(size=(100, 2))
        points10 = rng.normal(size=(100, 10))
        stats2 = SufficientStatistics.from_points(points2)
        stats10 = SufficientStatistics.from_points(points10)
        ratio2 = nn_dist(stats2, 1) / extent(stats2)
        ratio10 = nn_dist(stats10, 1) / extent(stats10)
        assert ratio10 > ratio2

    def test_invalid_k(self):
        stats = SufficientStatistics.from_points(np.ones((5, 2)))
        with pytest.raises(ValueError):
            nn_dist(stats, 0)

    def test_empty_raises(self):
        with pytest.raises(EmptyBubbleError):
            nn_dist(SufficientStatistics(dim=2), 1)
