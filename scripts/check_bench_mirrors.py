#!/usr/bin/env python3
"""Fail when a repo-root BENCH_*.json drifts from its results/ twin.

Benchmark gates write their JSON documents to the canonical location
``benchmarks/results/BENCH_<name>.json`` and mirror each one to the
repository root (see ``benchmarks/_results.py``). A hand-edited or
stale copy on either side silently misreports the perf trajectory, so
the lint job runs this script: every root ``BENCH_*.json`` must have a
byte-identical twin under ``benchmarks/results/`` and vice versa.

Stdlib-only; exits 1 with a per-file report on any drift.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def check() -> list[str]:
    problems: list[str] = []
    root_names = {p.name for p in REPO_ROOT.glob("BENCH_*.json")}
    result_names = (
        {p.name for p in RESULTS_DIR.glob("BENCH_*.json")}
        if RESULTS_DIR.is_dir()
        else set()
    )
    for name in sorted(root_names - result_names):
        problems.append(
            f"{name}: present at repo root but missing from "
            f"benchmarks/results/"
        )
    for name in sorted(result_names - root_names):
        problems.append(
            f"{name}: present in benchmarks/results/ but not mirrored "
            f"at repo root"
        )
    for name in sorted(root_names & result_names):
        root_bytes = (REPO_ROOT / name).read_bytes()
        result_bytes = (RESULTS_DIR / name).read_bytes()
        if root_bytes != result_bytes:
            problems.append(
                f"{name}: repo-root mirror differs from "
                f"benchmarks/results/ copy (re-run the benchmark or "
                f"copy the canonical results/ file over the mirror)"
            )
    return problems


def main() -> int:
    problems = check()
    if problems:
        print("benchmark mirror check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    count = len(list(REPO_ROOT.glob("BENCH_*.json")))
    print(f"benchmark mirror check OK ({count} BENCH_*.json pairs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
