"""Thin setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in environments without the `wheel` package
(where `pip install -e .` cannot build an editable wheel) via
`python setup.py develop`.
"""

from setuptools import setup

setup()
