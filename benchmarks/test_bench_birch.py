"""Benchmark: data bubbles vs BIRCH clustering features.

The paper's premise (Section 1): bubbles were chosen over clustering
features because "data bubbles outperform clustering features
significantly" for hierarchical clustering (Breunig et al. 2001). This
benchmark reruns that comparison inside this repository with three arms at
equal summary size:

* **data bubbles** — the full pipeline of this library;
* **corrected CFs** — CF-tree leaf entries given the bubble distance
  corrections (rep/extent/nnDist are derivable from any ``(n, LS, SS)``,
  as the paper notes). Expected to be competitive: Breunig et al.'s point
  was precisely that the *corrections*, not the partitioning, carry the
  quality;
* **naive CF centroids** — what "apply OPTICS to clustering features"
  meant before data bubbles: leaf centroids treated as plain points, no
  distance correction, no count expansion. Expected to lose: cluster
  sizes in the plot no longer reflect point counts and close summaries
  collapse.

CF leaf entries do not track members (BIRCH never needs them), so the
point-level evaluation assigns each database point to its nearest leaf
centroid — BIRCH's own phase-4 labelling rule.
"""

from __future__ import annotations

import numpy as np

from repro import BubbleBuilder, BubbleConfig, PointStore
from repro.birch import CFTree, cluster_cf_tree
from repro.clustering import BubbleOptics, extract_candidates
from repro.evaluation import best_match_fscore, summarize
from repro.experiments import ExperimentConfig, render_table
from repro.experiments.harness import candidate_point_sets
from repro.data import make_scenario

CONFIG = ExperimentConfig(
    initial_size=6_000,
    num_bubbles=80,
    min_pts=30,
    min_cluster_size=0.02,
)


def bubble_fscore(points: np.ndarray, truth: np.ndarray, seed: int) -> float:
    store = PointStore(dim=points.shape[1])
    store.insert(points, truth)
    bubbles = BubbleBuilder(
        BubbleConfig(num_bubbles=CONFIG.num_bubbles, seed=seed)
    ).build(store)
    result = BubbleOptics(min_pts=CONFIG.min_pts).fit(bubbles)
    expanded = result.expanded()
    min_size = max(2, int(CONFIG.min_cluster_size * len(points)))
    spans = extract_candidates(expanded.reachability, min_size=min_size)
    candidates = candidate_point_sets(expanded, spans, bubbles, store.ids())
    return best_match_fscore(truth, candidates).overall


def cf_fscore(points: np.ndarray, truth: np.ndarray) -> float:
    tree = CFTree.fit_threshold(
        points, max_leaf_entries=CONFIG.num_bubbles
    )
    result = cluster_cf_tree(tree, min_pts=CONFIG.min_pts)
    expanded = result.expanded()
    min_size = max(2, int(CONFIG.min_cluster_size * len(points)))
    spans = extract_candidates(expanded.reachability, min_size=min_size)

    # Points -> nearest leaf centroid (BIRCH phase-4 labelling).
    entries = tree.leaf_entries()
    centroids = np.stack([cf.centroid() for cf in entries])
    sq = (
        np.einsum("ij,ij->i", points, points)[:, None]
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
        - 2.0 * (points @ centroids.T)
    )
    nearest_entry = np.argmin(sq, axis=1)

    # Spans -> entry sets (majority of expanded entries) -> point sets.
    source = expanded.source
    totals = {
        int(e): int(c) for e, c in zip(*np.unique(source, return_counts=True))
    }
    candidates = []
    for start, end in spans:
        inside, counts = np.unique(source[start:end], return_counts=True)
        chosen = {
            int(e) for e, c in zip(inside, counts) if 2 * int(c) >= totals[int(e)]
        }
        candidates.append(
            np.flatnonzero(np.isin(nearest_entry, list(chosen)))
        )
    return best_match_fscore(truth, candidates).overall


def naive_cf_fscore(points: np.ndarray, truth: np.ndarray) -> float:
    """Leaf centroids as plain points: the pre-bubbles baseline."""
    from repro.clustering import PointOptics

    tree = CFTree.fit_threshold(
        points, max_leaf_entries=CONFIG.num_bubbles
    )
    entries = tree.leaf_entries()
    centroids = np.stack([cf.centroid() for cf in entries])
    # OPTICS over centroids, MinPts scaled to the summary (not the
    # database): the naive usage has no notion of per-summary weight.
    min_pts = max(2, int(round(CONFIG.min_pts * len(entries) / len(points))))
    plot = PointOptics(min_pts=min_pts).fit(centroids)
    # No expansion: spans are in *entries*; min size scaled accordingly.
    min_entries = max(2, int(CONFIG.min_cluster_size * len(entries)))
    spans = extract_candidates(plot.reachability, min_size=min_entries)

    sq = (
        np.einsum("ij,ij->i", points, points)[:, None]
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
        - 2.0 * (points @ centroids.T)
    )
    nearest_entry = np.argmin(sq, axis=1)
    candidates = []
    for start, end in spans:
        chosen = plot.ordering[start:end]
        candidates.append(
            np.flatnonzero(np.isin(nearest_entry, chosen))
        )
    return best_match_fscore(truth, candidates).overall


def make_database(seed: int) -> tuple[np.ndarray, np.ndarray]:
    scenario = make_scenario(
        "random", dim=2, initial_size=CONFIG.initial_size, seed=seed
    )
    return scenario.initial()


def test_bubbles_vs_clustering_features(benchmark, emit):
    def run():
        bubble_scores, cf_scores, naive_scores = [], [], []
        for seed in range(3):
            points, truth = make_database(seed)
            bubble_scores.append(bubble_fscore(points, truth, seed))
            cf_scores.append(cf_fscore(points, truth))
            naive_scores.append(naive_cf_fscore(points, truth))
        return (
            summarize(bubble_scores),
            summarize(cf_scores),
            summarize(naive_scores),
        )

    bubbles_summary, cf_summary, naive_summary = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "bubbles_vs_cf",
        render_table(
            headers=["summarization", "F-score mean", "F-score std"],
            rows=[
                [
                    "data bubbles",
                    f"{bubbles_summary.mean:.4f}",
                    f"{bubbles_summary.std:.4f}",
                ],
                [
                    "clustering features + bubble corrections",
                    f"{cf_summary.mean:.4f}",
                    f"{cf_summary.std:.4f}",
                ],
                [
                    "naive CF centroids (pre-bubbles usage)",
                    f"{naive_summary.mean:.4f}",
                    f"{naive_summary.std:.4f}",
                ],
            ],
            title="Bubbles vs clustering features: hierarchical clustering "
            "quality at equal summary size (random scenario, 2d).",
        ),
    )
    # The Breunig et al. 2001 premise: the bubble machinery beats the
    # naive CF usage; corrected CFs are competitive because the
    # corrections (not the partitioning) carry the quality.
    assert bubbles_summary.mean > naive_summary.mean
    assert bubbles_summary.mean >= cf_summary.mean - 0.03