"""Benchmark: regenerate Figure 9 (rebuilt-bubble fraction vs update %).

Paper claim: only a small fraction of the bubbles needs rebuilding per
batch — the majority adapt in place.
"""

from __future__ import annotations

from repro.experiments import render_figure9, run_figure9
from repro.experiments.figure9 import DEFAULT_UPDATE_FRACTIONS

from _config import BENCH_CONFIG, BENCH_REPS


def test_figure9(benchmark, emit):
    points = benchmark.pedantic(
        lambda: run_figure9(
            BENCH_CONFIG,
            update_fractions=DEFAULT_UPDATE_FRACTIONS,
            repetitions=BENCH_REPS,
        ),
        rounds=1,
        iterations=1,
    )
    emit("figure9", render_figure9(points))

    for point in points:
        assert point.rebuilt_fraction.mean < 0.25, (
            f"{point.update_fraction:.0%} updates rebuilt too many bubbles"
        )
