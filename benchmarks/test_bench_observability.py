"""Instrumentation overhead: the observability layer must be ~free.

Two measurements of the same deterministic streaming workload — once with
``obs=None`` (instrumentation compiled out by the ``None`` checks) and
once with a live :class:`~repro.observability.Observability` handle — give
the overhead fraction the CI gate tracks. The result is written to
``benchmarks/results/BENCH_observability.json`` so the perf trajectory of
the instrumentation itself is visible across PRs.

Methodology: best-of-N wall-clock over identical runs (min, not mean —
the minimum is the least noisy estimator of the achievable time on a
shared CI runner).
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.observability import Observability
from repro.streaming import SlidingWindowSummarizer

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

ROUNDS = 7
CHUNKS = 10
CHUNK_SIZE = 400


def _chunks() -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    return [
        rng.normal(size=(CHUNK_SIZE, 2)) + [0.1 * i, -0.05 * i]
        for i in range(CHUNKS)
    ]


def _run_stream(chunks: list[np.ndarray], obs: Observability | None) -> None:
    stream = SlidingWindowSummarizer(
        dim=2,
        window_size=1_600,
        points_per_bubble=40,
        seed=0,
        obs=obs,
    )
    for chunk in chunks:
        stream.append(chunk)


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_instrumentation_overhead_within_budget(benchmark):
    """obs=Observability() costs <= 5% over obs=None on the same stream."""
    chunks = _chunks()
    # One throwaway run to warm caches before either arm is timed.
    _run_stream(chunks, None)

    baseline = _best_of(lambda: _run_stream(chunks, None))
    instrumented = _best_of(
        lambda: _run_stream(chunks, Observability())
    )
    overhead = instrumented / baseline - 1.0

    # Registered as a pedantic benchmark so the run also lands in the
    # pytest-benchmark JSON artifact next to the assignment numbers.
    benchmark.pedantic(
        lambda: _run_stream(chunks, Observability()),
        rounds=1,
        iterations=1,
    )

    obs = Observability()
    _run_stream(chunks, obs)
    snapshot = obs.metrics.snapshot()
    computed = snapshot.value("repro_distance_computed_total")
    pruned = snapshot.value("repro_distance_pruned_total")

    document = {
        "workload": {
            "chunks": CHUNKS,
            "chunk_size": CHUNK_SIZE,
            "window_size": 1_600,
            "points_per_bubble": 40,
            "rounds": ROUNDS,
        },
        "baseline_seconds": baseline,
        "instrumented_seconds": instrumented,
        "overhead_fraction": overhead,
        "overhead_budget": 0.05,
        "registry": {
            "distance_computed_total": computed,
            "distance_pruned_total": pruned,
            "pruned_fraction": pruned / (computed + pruned),
            "metrics_registered": len(snapshot),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_observability.json"
    out.write_text(json.dumps(document, indent=2) + "\n")

    assert overhead <= 0.05, (
        f"instrumentation overhead {overhead:.1%} exceeds the 5% budget "
        f"(baseline {baseline:.4f}s, instrumented {instrumented:.4f}s)"
    )
