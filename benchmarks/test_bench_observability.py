"""Instrumentation overhead: the observability layer must be ~free.

Three measurements of the same deterministic streaming workload give the
overhead fractions the CI gate tracks:

* ``obs=None`` — instrumentation compiled out by the ``None`` checks
  (the baseline);
* a metrics-only :class:`~repro.observability.Observability` handle —
  the original counters/gauges/histograms arm;
* the full flight recorder — event tracer + span tracer + windowed
  time-series recorder, the heaviest configuration ``summarize`` can
  enable.

Both instrumented arms must stay within the same 5% budget over the
baseline. The result is written to
``benchmarks/results/BENCH_observability.json`` (mirrored at the repo
root) so the perf trajectory of the instrumentation itself is visible
across PRs.

Methodology: the arms are interleaved within each round (order rotated
per round, GC controlled per run) and the gate statistic is the lower
quartile of per-round overhead ratios — see :func:`_measure_rounds` and
:func:`_lower_quartile` for why that stays honest on a noisy shared
runner.
"""

from __future__ import annotations

import gc
import time

import numpy as np
from _results import write_bench_result

from repro.observability import (
    EventTracer,
    Observability,
    SpanTracer,
    TimeseriesRecorder,
)
from repro.streaming import SlidingWindowSummarizer

ROUNDS = 10
CHUNKS = 30
CHUNK_SIZE = 400
OVERHEAD_BUDGET = 0.05
#: Ceiling for the opt-in --trace serve arm; span JSONL writes are an
#: accepted diagnostic cost, tracked so regressions stay visible.
TRACE_OVERHEAD_BUDGET = 0.25


def _chunks() -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    return [
        rng.normal(size=(CHUNK_SIZE, 2)) + [0.1 * i, -0.05 * i]
        for i in range(CHUNKS)
    ]


def _flight_recorder() -> Observability:
    return Observability(
        tracer=EventTracer(),
        spans=SpanTracer(),
        timeseries=TimeseriesRecorder(interval=1),
    )


def _run_stream(chunks: list[np.ndarray], obs: Observability | None) -> None:
    stream = SlidingWindowSummarizer(
        dim=2,
        window_size=1_600,
        points_per_bubble=40,
        seed=0,
        obs=obs,
    )
    for chunk in chunks:
        stream.append(chunk)


def _measure_rounds(fns, rounds: int = ROUNDS) -> list[list[float]]:
    """Per-round wall-clock for every arm, arms interleaved within a round.

    Interleaving keeps each round's arms adjacent in time, so a slow
    epoch on a shared runner (thermal throttling, a noisy neighbour)
    inflates one *round* uniformly instead of one *arm*; overhead is then
    computed per round and the cleanest round wins, which stays honest
    even when the machine's speed drifts over the run. The arm order
    rotates each round so a periodic disturbance cannot align with the
    same arm every time, and GC is collected before / disabled during
    each timed run so collection pauses (which would otherwise land in
    the allocation-heavier instrumented arms) stay out of the
    measurement.
    """
    times = [[0.0] * len(fns) for _ in range(rounds)]
    for round_index in range(rounds):
        order = [
            (round_index + offset) % len(fns)
            for offset in range(len(fns))
        ]
        for index in order:
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                fns[index]()
                times[round_index][index] = (
                    time.perf_counter() - started
                )
            finally:
                gc.enable()
    return times


def _lower_quartile(values) -> float:
    """The 25th-percentile value.

    Timing noise on a shared runner only ever *adds* to a round, so a
    low quantile estimates the intrinsic cost; the quartile (unlike the
    minimum) still requires a quarter of the rounds to agree, which
    keeps one freak-fast round from deciding the gate.
    """
    ordered = sorted(values)
    return ordered[len(ordered) // 4]


def test_instrumentation_overhead_within_budget(benchmark):
    """Metrics and the full flight recorder cost <= 5% over obs=None."""
    chunks = _chunks()
    # One throwaway run to warm caches before any arm is timed.
    _run_stream(chunks, None)

    rounds = _measure_rounds(
        [
            lambda: _run_stream(chunks, None),
            lambda: _run_stream(chunks, Observability()),
            lambda: _run_stream(chunks, _flight_recorder()),
        ]
    )
    # Lower quartile of per-round ratios: each round's arms are adjacent
    # in time, so the ratio cancels epoch-wide slowdowns (which a ratio
    # of cross-round minima would not), and the low quantile discards
    # the rounds a burst did manage to split.
    overhead = _lower_quartile(r[1] / r[0] - 1.0 for r in rounds)
    flight_overhead = _lower_quartile(r[2] / r[0] - 1.0 for r in rounds)
    baseline = min(r[0] for r in rounds)
    instrumented = min(r[1] for r in rounds)
    flight = min(r[2] for r in rounds)

    # Registered as a pedantic benchmark so the run also lands in the
    # pytest-benchmark JSON artifact next to the assignment numbers.
    benchmark.pedantic(
        lambda: _run_stream(chunks, _flight_recorder()),
        rounds=1,
        iterations=1,
    )

    obs = _flight_recorder()
    _run_stream(chunks, obs)
    snapshot = obs.metrics.snapshot()
    computed = snapshot.value("repro_distance_computed_total")
    pruned = snapshot.value("repro_distance_pruned_total")

    document = {
        "workload": {
            "chunks": CHUNKS,
            "chunk_size": CHUNK_SIZE,
            "window_size": 1_600,
            "points_per_bubble": 40,
            "rounds": ROUNDS,
        },
        "baseline_seconds": baseline,
        "instrumented_seconds": instrumented,
        "overhead_fraction": overhead,
        "flight_recorder_seconds": flight,
        "flight_recorder_overhead_fraction": flight_overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "registry": {
            "distance_computed_total": computed,
            "distance_pruned_total": pruned,
            "pruned_fraction": pruned / (computed + pruned),
            "metrics_registered": len(snapshot),
            "spans_opened": obs.spans.total_opened,
            "timeseries_windows": len(obs.timeseries),
        },
    }
    write_bench_result("observability", document)

    assert overhead <= OVERHEAD_BUDGET, (
        f"instrumentation overhead {overhead:.1%} exceeds the 5% budget "
        f"(baseline {baseline:.4f}s, instrumented {instrumented:.4f}s)"
    )
    assert flight_overhead <= OVERHEAD_BUDGET, (
        f"flight-recorder overhead {flight_overhead:.1%} exceeds the 5% "
        f"budget (baseline {baseline:.4f}s, flight {flight:.4f}s)"
    )


def test_serve_plane_overhead_within_budget(tmp_path, benchmark):
    """``serve`` with the live telemetry plane (scrape listener + SLO
    ticker) costs <= 5% over a bare serve.

    Same interleaved-rounds methodology as the instrumentation gate;
    each arm serves the identical event stream through a fresh fleet
    (workers=0 so the dispatcher cost itself is measured, fsync off so
    the gate tracks CPU overhead rather than disk variance). The plane
    arm runs the listener's ticker at 10 Hz — an order of magnitude
    hotter than the 1 Hz production default — so the gate bounds an
    intentionally pessimistic configuration.

    A third arm adds ``--trace`` span recording. Trace JSONL is an
    opt-in diagnostic with an inherent per-batch write cost, so it is
    *reported* (for trajectory tracking across PRs) but gated only at a
    looser 25% ceiling rather than the plane's 5%.
    """
    import json

    from _results import RESULTS_DIR
    from repro.observability import SLOEngine, TelemetryListener
    from repro.service import (
        FleetConfig,
        FleetManager,
        PointEvent,
        serve_events,
    )

    events = [
        PointEvent(
            tenant=f"tenant-{i % 4}",
            point=(float(i % 11) * 0.3, float(i % 7) * 0.2),
            label=i,
        )
        for i in range(6_000)
    ]
    config = dict(
        window_size=400,
        points_per_bubble=20,
        checkpoint_every=8,
        fsync=False,
        workers=0,
        queue_points=256,
        batch_points=32,
    )
    fleets = iter(range(10_000))

    def bare():
        fleet = FleetManager(
            tmp_path / f"bare-{next(fleets)}", FleetConfig(**config)
        )
        serve_events(fleet, events)

    def with_plane():
        fleet = FleetManager(
            tmp_path / f"plane-{next(fleets)}", FleetConfig(**config)
        )
        fleet.attach_slo(SLOEngine())
        listener = TelemetryListener(fleet, tick_seconds=0.1)
        serve_events(fleet, events, listener=listener)

    def with_plane_and_trace():
        fleet = FleetManager(
            tmp_path / f"traced-{next(fleets)}",
            FleetConfig(**dict(config, trace=True)),
        )
        fleet.attach_slo(SLOEngine())
        listener = TelemetryListener(fleet, tick_seconds=0.1)
        serve_events(fleet, events, listener=listener)

    with_plane()  # warm-up: binds a socket, imports http.server pieces
    rounds = _measure_rounds(
        [bare, with_plane, with_plane_and_trace], rounds=ROUNDS
    )
    overhead = _lower_quartile(r[1] / r[0] - 1.0 for r in rounds)
    traced_overhead = _lower_quartile(r[2] / r[0] - 1.0 for r in rounds)
    baseline = min(r[0] for r in rounds)
    plane = min(r[1] for r in rounds)
    traced = min(r[2] for r in rounds)

    benchmark.pedantic(with_plane, rounds=1, iterations=1)

    # Merge into the canonical observability document (the
    # instrumentation gate above owns the rest of the file).
    canonical = RESULTS_DIR / "BENCH_observability.json"
    document = (
        json.loads(canonical.read_text()) if canonical.exists() else {}
    )
    document["serve_plane"] = {
        "workload": {
            "events": len(events),
            "tenants": 4,
            "batch_points": 32,
            "rounds": ROUNDS,
            "tick_seconds": 0.1,
        },
        "bare_serve_seconds": baseline,
        "plane_serve_seconds": plane,
        "overhead_fraction": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "traced_serve_seconds": traced,
        "traced_overhead_fraction": traced_overhead,
        "traced_overhead_budget": TRACE_OVERHEAD_BUDGET,
    }
    write_bench_result("observability", document)

    assert overhead <= OVERHEAD_BUDGET, (
        f"telemetry-plane serve overhead {overhead:.1%} exceeds the 5% "
        f"budget (bare {baseline:.4f}s, plane {plane:.4f}s)"
    )
    assert traced_overhead <= TRACE_OVERHEAD_BUDGET, (
        f"traced serve overhead {traced_overhead:.1%} exceeds the "
        f"{TRACE_OVERHEAD_BUDGET:.0%} ceiling "
        f"(bare {baseline:.4f}s, traced {traced:.4f}s)"
    )
