"""Benchmark: the staleness trade-off (the paper's motivation, quantified).

Either you pay a full rebuild every batch, or you serve a stale summary —
the incremental scheme escapes the dilemma. Regenerates the per-batch
trace and asserts the two halves of the claim: the incremental arm's
quality at least matches the periodic arm's while its distance cost is a
small fraction of the amortized rebuild cost.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import render_staleness, run_staleness

from _config import BENCH_CONFIG


def test_staleness(benchmark, emit):
    config = replace(BENCH_CONFIG, num_batches=10, update_fraction=0.08)
    result = benchmark.pedantic(
        lambda: run_staleness(config, rebuild_every=5),
        rounds=1,
        iterations=1,
    )
    emit("staleness", render_staleness(result))

    assert result.incremental_mean >= result.periodic_mean - 0.02
    assert (
        result.incremental_cost.mean < 0.5 * result.periodic_cost.mean
    ), "incremental must be much cheaper than amortized rebuilds"
    # The decay signature: quality right before a rebuild is lower than
    # right after it.
    before = result.periodic_fscores[3]  # batch 4: stalest point
    after = result.periodic_fscores[4]   # batch 5: fresh rebuild
    assert after >= before - 0.02