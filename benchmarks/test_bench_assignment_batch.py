"""Batch assignment engine: speedup gate and equivalence proof.

The vectorized :meth:`TriangleInequalityAssigner.assign_many` must beat a
scalar ``assign()`` loop by at least 10x on the reference workload
(10k points x 100 seeds) while returning bit-identical assignments and
identical computed/pruned totals under identically seeded RNGs — both
facts are asserted here and recorded in
``benchmarks/results/BENCH_assignment_batch.json`` so the engine's perf
trajectory and its equivalence guarantee stay visible across PRs.

Methodology: best-of-N wall-clock (min, the least noisy estimator on a
shared CI runner); the scalar arm runs fewer rounds because it is the
slow side by construction.
"""

from __future__ import annotations

import time

import numpy as np
from _results import write_bench_result

from repro.core import TriangleInequalityAssigner
from repro.geometry import DistanceCounter

NUM_POINTS = 10_000
NUM_SEEDS = 100
BATCH_ROUNDS = 5
SCALAR_ROUNDS = 2
SPEEDUP_GATE = 10.0


def make_workload(num_points, num_seeds, dim=2, seed=0):
    """The paper-style clustered workload (same shape as the ablation
    benchmark's): 8 Gaussian blobs, seeds sampled from the points."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(8, dim))
    points = np.vstack(
        [
            rng.normal(centers[i % 8], 1.0, size=(num_points // 8, dim))
            for i in range(8)
        ]
    )
    seeds = points[rng.choice(len(points), size=num_seeds, replace=False)]
    return points, seeds


def _make_assigner(seeds: np.ndarray) -> TriangleInequalityAssigner:
    # Identically seeded RNGs per arm: the probing permutations — and so
    # the assignments and the accounting — are reproduced exactly.
    return TriangleInequalityAssigner(
        seeds,
        DistanceCounter(),
        rng=np.random.default_rng(42),
        count_setup=False,
    )


def _scalar_arm(seeds, points):
    assigner = _make_assigner(seeds)
    started = time.perf_counter()
    result = np.array([assigner.assign(p) for p in points], dtype=np.int64)
    return time.perf_counter() - started, result, assigner


def _batch_arm(seeds, points):
    assigner = _make_assigner(seeds)
    started = time.perf_counter()
    result = assigner.assign_many(points)
    return time.perf_counter() - started, result, assigner


def test_batch_engine_speedup_gate(benchmark):
    """assign_many >= 10x faster than the scalar loop, bit-identically."""
    points, seeds = make_workload(
        num_points=NUM_POINTS, num_seeds=NUM_SEEDS, dim=2, seed=0
    )

    # Warm-up (allocators, numpy dispatch) before either arm is timed.
    _batch_arm(seeds, points[:256])

    scalar_time = float("inf")
    for _ in range(SCALAR_ROUNDS):
        elapsed, scalar_result, scalar_assigner = _scalar_arm(seeds, points)
        scalar_time = min(scalar_time, elapsed)

    batch_time = float("inf")
    for _ in range(BATCH_ROUNDS):
        elapsed, batch_result, batch_assigner = _batch_arm(seeds, points)
        batch_time = min(batch_time, elapsed)

    # Equivalence first: a fast kernel that drifts is worthless.
    assert batch_result.tolist() == scalar_result.tolist()
    assert batch_assigner.assign_computed == scalar_assigner.assign_computed
    assert batch_assigner.assign_pruned == scalar_assigner.assign_pruned

    speedup = scalar_time / batch_time

    # Register with pytest-benchmark so the run lands in the CI JSON
    # artifact next to the other assignment numbers.
    benchmark.pedantic(
        lambda: _batch_arm(seeds, points), rounds=1, iterations=1
    )

    document = {
        "workload": {
            "num_points": NUM_POINTS,
            "num_seeds": NUM_SEEDS,
            "dim": 2,
            "scalar_rounds": SCALAR_ROUNDS,
            "batch_rounds": BATCH_ROUNDS,
        },
        "scalar_seconds": scalar_time,
        "batch_seconds": batch_time,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "equivalence": {
            "indices_identical": True,
            "computed_distances": batch_assigner.assign_computed,
            "pruned_distances": batch_assigner.assign_pruned,
            "pruned_fraction": batch_assigner.pruned_fraction,
        },
    }
    write_bench_result("assignment_batch", document)

    assert speedup >= SPEEDUP_GATE, (
        f"batch engine speedup {speedup:.1f}x below the "
        f"{SPEEDUP_GATE:.0f}x gate (scalar {scalar_time:.3f}s, "
        f"batch {batch_time:.3f}s)"
    )
