"""Benchmark: regenerate Figure 10 (triangle-inequality pruning vs update %).

Paper claim: 60–80% of distance computations are pruned, decreasing slowly
with larger update batches (new regions lack nearby representatives to
prune against).
"""

from __future__ import annotations

from repro.experiments import (
    construction_pruning,
    render_figure10,
    run_figure10,
)
from repro.experiments.figure9 import DEFAULT_UPDATE_FRACTIONS

from _config import BENCH_CONFIG, BENCH_REPS


def test_figure10(benchmark, emit):
    def run():
        points = run_figure10(
            BENCH_CONFIG,
            update_fractions=DEFAULT_UPDATE_FRACTIONS,
            repetitions=BENCH_REPS,
        )
        anchor = construction_pruning(BENCH_CONFIG, repetitions=BENCH_REPS)
        return points, anchor

    points, anchor = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("figure10", render_figure10(points, construction=anchor))

    # The paper's band, with margin for the scaled-down setting.
    assert 0.6 < anchor.mean < 0.95
    for point in points:
        assert 0.5 < point.pruned_fraction.mean < 0.95
