"""Ablation benchmark: triangle-inequality assignment vs naive scan.

Section 3's contribution in isolation — wall-clock microbenchmarks of the
two assigners plus the counted pruning rate on the paper-style workload
(clustered data, many seeds). The counted metric is what the paper
reports; the wall-clock columns show the pruning also pays off in real
time in this implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaiveAssigner, TriangleInequalityAssigner
from repro.experiments import render_table


def make_workload(num_points=2_000, num_seeds=100, dim=2, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(8, dim))
    points = np.vstack(
        [
            rng.normal(centers[i % 8], 1.0, size=(num_points // 8, dim))
            for i in range(8)
        ]
    )
    seeds = points[rng.choice(len(points), size=num_seeds, replace=False)]
    return points, seeds


@pytest.mark.parametrize("dim", [2, 10])
def test_naive_assignment(benchmark, dim):
    points, seeds = make_workload(dim=dim)
    assigner = NaiveAssigner(seeds)

    def run():
        # Per-point loop (the honest comparison; the vectorised bulk path
        # is a different algorithmic regime).
        for point in points[:200]:
            assigner.assign(point)

    benchmark(run)


@pytest.mark.parametrize("dim", [2, 10])
def test_triangle_inequality_assignment(benchmark, dim):
    points, seeds = make_workload(dim=dim)
    assigner = TriangleInequalityAssigner(
        seeds, rng=np.random.default_rng(0)
    )

    def run():
        for point in points[:200]:
            assigner.assign(point)

    benchmark(run)


def test_pruning_rate_report(benchmark, emit):
    """Counted pruning rates across dimensionalities (the paper's metric)."""

    def run():
        rows = []
        for dim in (2, 5, 10, 20):
            points, seeds = make_workload(dim=dim, seed=dim)
            assigner = TriangleInequalityAssigner(
                seeds, rng=np.random.default_rng(0), count_setup=False
            )
            assigner.assign_many(points)
            rows.append([f"{dim}d", f"{assigner.pruned_fraction:.1%}"])
            assert assigner.pruned_fraction > 0.4
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "assignment_pruning",
        render_table(
            headers=["dimension", "pruned distance computations"],
            rows=rows,
            title="Ablation: Lemma 1 pruning rate during assignment "
            "(static construction workload).",
        ),
    )
