"""Benchmark: regenerate Figure 11 (distance saving factor vs update %).

Paper claim: the incremental scheme (with pruning) saves a factor of
roughly 200 at 2% updates, falling to roughly 40 at 10% — decreasing in
the update size because the complete rebuild pays a fixed N·B per batch
while the incremental cost scales with the insertions. Absolute factors
scale with N/B (see DESIGN.md); the decreasing tens-to-hundreds shape is
the contract.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import render_figure11, run_figure11
from repro.experiments.figure9 import DEFAULT_UPDATE_FRACTIONS

from _config import BENCH_CONFIG, BENCH_REPS


def test_figure11(benchmark, emit):
    points = benchmark.pedantic(
        lambda: run_figure11(
            BENCH_CONFIG,
            update_fractions=DEFAULT_UPDATE_FRACTIONS,
            repetitions=BENCH_REPS,
        ),
        rounds=1,
        iterations=1,
    )
    emit("figure11", render_figure11(points))

    factors = np.array([p.saving_factor.mean for p in points])
    # Large throughout, and decreasing from 2% to 10% updates.
    assert (factors > 5.0).all()
    assert factors[0] > factors[-1]
