"""Self-healing recovery gate: kill a fleet, recover it, verify chains.

Drives a pinned 4-tenant workload into a fleet, kills it crash-style
(no drain, no final checkpoint — queued points are dropped from memory
exactly as ``kill -9`` would), and gates two numbers:

* **supervised recovery time** — wall-clock for
  :meth:`FleetManager.recover` to crash-recover every tenant (WAL
  replay past the last checkpoint), attach a :class:`ShardSupervisor`,
  ingest a post-recovery tail of events, and drain cleanly; and
* **verify-chain cost** — the read-only hash-chain integrity scan over
  all four tenant WALs must cost at most 2% of that recovery
  wall-clock, so operators can afford to run it on *every* restart
  before trusting the log.

Methodology: best-of-N wall-clock (min — the least noisy estimator on
a shared CI runner); the recovery budget is deliberately conservative
(order-of-magnitude headroom over dev-container numbers) so the gate
catches real regressions, not scheduler jitter. The result is written
to ``benchmarks/results/BENCH_chaos.json`` and mirrored at the
repository root.
"""

from __future__ import annotations

import pathlib
import tempfile
import time

from _results import write_bench_result

from repro.persistence import verify_chain
from repro.service import (
    FleetConfig,
    FleetManager,
    LoadSpec,
    ShardSupervisor,
    generate_events,
)

ROUNDS = 3
VERIFY_ROUNDS = 5
RECOVERY_BUDGET_SECONDS = 30.0
VERIFY_FRACTION_BUDGET = 0.02

SPEC = LoadSpec(tenants=4, events=3_000, seed=23)
TAIL_SPEC = LoadSpec(tenants=4, events=200, seed=24)

CONFIG = FleetConfig(
    window_size=2_000,
    points_per_bubble=40,
    # A sparse checkpoint cadence leaves a long WAL suffix to replay, so
    # the recovery measurement does real work rather than loading one
    # fresh snapshot.
    checkpoint_every=64,
    seed=23,
    fsync=False,
    workers=0,
    queue_points=512,
    batch_points=32,
)


def _build_killed_fleet(root: pathlib.Path) -> None:
    """Ingest the pinned workload, then die without drain/checkpoint."""
    fleet = FleetManager(root, CONFIG)
    for event in generate_events(SPEC):
        fleet.submit(event)
    fleet.close()  # crash-like: no flush, no final checkpoint


def _recover_supervised(root: pathlib.Path) -> dict:
    """One timed unit: recover + supervise + tail ingest + drain."""
    fleet = FleetManager.recover(root, config=CONFIG)
    fleet.attach_supervisor(ShardSupervisor(max_restarts=4))
    for event in generate_events(TAIL_SPEC):
        fleet.submit(event)
    fleet.drain()
    return fleet.rollup()["fleet"]


def _tenant_wals(root: pathlib.Path) -> list[pathlib.Path]:
    return sorted((root / "tenants").glob("*/wal.log"))


def test_supervised_recovery_and_chain_scan_within_budget(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        # Both measurements cover the same on-disk state: the WALs of a
        # freshly killed fleet, long uncompacted suffix included. Each
        # recovery round gets its own kill — a recovered-and-drained
        # fleet has checkpointed, leaving nothing to replay.
        scan_root = pathlib.Path(tmp) / "fleet-scan"
        _build_killed_fleet(scan_root)
        wals = _tenant_wals(scan_root)
        assert len(wals) == SPEC.tenants

        verify_seconds = float("inf")
        records = 0
        for _ in range(VERIFY_ROUNDS):
            started = time.perf_counter()
            records = 0
            for wal in wals:
                report = verify_chain(wal)
                assert report.ok, (wal, report)
                records += report.records
            verify_seconds = min(
                verify_seconds, time.perf_counter() - started
            )
        assert records > 0

        recovery_seconds = float("inf")
        totals = None
        for round_index in range(ROUNDS):
            root = pathlib.Path(tmp) / f"fleet-{round_index}"
            _build_killed_fleet(root)
            started = time.perf_counter()
            totals = _recover_supervised(root)
            elapsed = time.perf_counter() - started
            recovery_seconds = min(recovery_seconds, elapsed)
        assert totals is not None
        assert totals["states"] == {"stopped": SPEC.tenants}
        assert totals["applied_points"] >= TAIL_SPEC.events
        verify_fraction = verify_seconds / recovery_seconds

        # Registered as a pedantic benchmark so the run also lands in
        # the pytest-benchmark JSON artifact next to the other numbers.
        benchmark.pedantic(
            lambda: [verify_chain(wal) for wal in wals],
            rounds=1,
            iterations=1,
        )

        document = {
            "workload": {
                "tenants": SPEC.tenants,
                "events": SPEC.events,
                "tail_events": TAIL_SPEC.events,
                "window_size": CONFIG.window_size,
                "points_per_bubble": CONFIG.points_per_bubble,
                "checkpoint_every": CONFIG.checkpoint_every,
                "batch_points": CONFIG.batch_points,
                "rounds": ROUNDS,
                "verify_rounds": VERIFY_ROUNDS,
            },
            "recovery_seconds": recovery_seconds,
            "recovery_budget_seconds": RECOVERY_BUDGET_SECONDS,
            "verify_chain_seconds": verify_seconds,
            "verify_chain_records": records,
            "verify_fraction": verify_fraction,
            "verify_fraction_budget": VERIFY_FRACTION_BUDGET,
        }
        write_bench_result("chaos", document)

        assert recovery_seconds <= RECOVERY_BUDGET_SECONDS, (
            f"supervised fleet recovery took {recovery_seconds:.2f}s, "
            f"over the {RECOVERY_BUDGET_SECONDS:.0f}s budget"
        )
        assert verify_fraction <= VERIFY_FRACTION_BUDGET, (
            f"verify-chain scan cost {verify_fraction:.1%} of recovery "
            f"wall-clock ({verify_seconds:.4f}s vs "
            f"{recovery_seconds:.4f}s), over the "
            f"{VERIFY_FRACTION_BUDGET:.0%} budget"
        )
