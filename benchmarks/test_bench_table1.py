"""Benchmark: regenerate Table 1 (F-score + compactness, both schemes).

Paper rows: Random2d, Appear2d, Disappear2d, Extappear2d, Gradmove2d,
Random10d, Extappear10d, Complex2d/5d/10d/20d — mean and std over
repetitions, for the complete-rebuild and incremental schemes.

Expected shape: incremental F within a few points of (sometimes above)
complete; compactness comparable.
"""

from __future__ import annotations

from repro.experiments import render_table1, run_table1
from repro.experiments.table1 import TABLE1_DATASETS

from _config import BENCH_CONFIG, BENCH_REPS


def test_table1_full(benchmark, emit):
    """All eleven Table 1 dataset rows at benchmark scale."""

    def run():
        return run_table1(
            BENCH_CONFIG, repetitions=BENCH_REPS, datasets=TABLE1_DATASETS
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("table1", render_table1(rows))

    # Shape assertions (the reproduction contract).
    by_dataset: dict[str, dict[str, object]] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, {})[row.scheme] = row
    for name, schemes in by_dataset.items():
        inc, cmp_ = schemes["inc"], schemes["complete"]
        assert inc.fscore.mean > 0.6, f"{name}: incremental F collapsed"
        assert inc.fscore.mean > cmp_.fscore.mean - 0.12, (
            f"{name}: incremental F fell too far below complete rebuild"
        )
