"""Ingestion-service capacity gate: sustained points/s and p95 latency.

Drives the full service stack — seeded Zipf/bursty load generator →
dispatcher → sharded bounded queues → pool-worker micro-batched appends
into per-tenant durable summarizers — at a **pinned tenant mix** (8
Zipf-skewed tenants, fixed seed), and gates two capacity numbers:

* sustained ingest throughput (accepted points per wall-clock second,
  graceful drain included), and
* fleet-wide p95 arrival→durably-applied latency (bucket-granular upper
  bound merged across the per-shard histograms).

Methodology: best-of-N over identical runs (min time / min p95 — the
least noisy estimator on a shared CI runner). Gates are deliberately
conservative (~4x headroom below the measured dev-container numbers) so
the gate catches order-of-magnitude regressions, not scheduler jitter.
The result is written to ``benchmarks/results/BENCH_service.json`` and
mirrored at the repository root.
"""

from __future__ import annotations

import pathlib
import tempfile

from _results import write_bench_result

from repro.service import (
    FleetConfig,
    FleetManager,
    LoadSpec,
    generate_events,
    serve_events,
)

ROUNDS = 3
MIN_POINTS_PER_SECOND = 1_500.0
MAX_P95_INGEST_SECONDS = 1.0

SPEC = LoadSpec(
    tenants=8, events=6_000, dim=2, seed=1234, zipf_s=1.1,
    burst_mean=32.0,
)
CONFIG = FleetConfig(
    dim=2,
    window_size=2_000,
    points_per_bubble=40,
    checkpoint_every=8,
    seed=1234,
    fsync=False,  # capacity of the engine, not the CI runner's disk
    queue_points=256,
    batch_points=32,
    backpressure="block",
    workers=2,
)


def _one_round(events) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        fleet = FleetManager(pathlib.Path(tmp) / "fleet", CONFIG)
        stats = serve_events(fleet, iter(events))
    assert stats.accepted == SPEC.events, (
        f"capacity run lost events: {stats.accepted}/{SPEC.events} "
        f"accepted, {stats.dropped} dropped"
    )
    rollup = stats.rollup
    assert rollup["fleet"]["applied_points"] == SPEC.events
    assert rollup["fleet"]["states"] == {"stopped": SPEC.tenants}
    return {
        "points_per_second": stats.points_per_second,
        "elapsed_seconds": stats.elapsed_seconds,
        "p95_ingest_seconds": rollup["fleet"]["ingest_p95_seconds"],
        "blocked_submissions": rollup["fleet"]["blocked_submissions"],
        "applied_batches": rollup["fleet"]["applied_batches"],
    }


def test_service_capacity_gate(benchmark):
    """The fleet sustains the pinned mix within throughput/latency gates."""
    events = list(generate_events(SPEC))  # generation off the clock
    _one_round(events)  # warm-up: imports, allocator, thread spawn

    rounds = [_one_round(events) for _ in range(ROUNDS)]
    best = max(rounds, key=lambda r: r["points_per_second"])
    p95s = [
        r["p95_ingest_seconds"]
        for r in rounds
        if r["p95_ingest_seconds"] is not None
    ]
    best_p95 = min(p95s) if p95s else None

    # Also registered with pytest-benchmark so the run lands in the
    # shared JSON artifact next to the other gates.
    benchmark.pedantic(
        lambda: _one_round(events), rounds=1, iterations=1
    )

    document = {
        "workload": {
            "tenants": SPEC.tenants,
            "events": SPEC.events,
            "dim": SPEC.dim,
            "seed": SPEC.seed,
            "zipf_s": SPEC.zipf_s,
            "burst_mean": SPEC.burst_mean,
            "window_size": CONFIG.window_size,
            "points_per_bubble": CONFIG.points_per_bubble,
            "checkpoint_every": CONFIG.checkpoint_every,
            "queue_points": CONFIG.queue_points,
            "batch_points": CONFIG.batch_points,
            "backpressure": CONFIG.backpressure,
            "workers": CONFIG.workers,
            "fsync": CONFIG.fsync,
            "rounds": ROUNDS,
        },
        "rounds": rounds,
        "best_points_per_second": best["points_per_second"],
        "best_p95_ingest_seconds": best_p95,
        "min_points_per_second": MIN_POINTS_PER_SECOND,
        "max_p95_ingest_seconds": MAX_P95_INGEST_SECONDS,
    }
    write_bench_result("service", document)

    assert best["points_per_second"] >= MIN_POINTS_PER_SECOND, (
        f"service capacity {best['points_per_second']:.0f} points/s is "
        f"below the {MIN_POINTS_PER_SECOND:.0f} points/s gate"
    )
    assert best_p95 is not None and best_p95 <= MAX_P95_INGEST_SECONDS, (
        f"fleet p95 ingest latency bound {best_p95} exceeds the "
        f"{MAX_P95_INGEST_SECONDS}s gate"
    )
