"""Spatial-index assignment at scale: parity proof and speedup gate.

The seed-index path (:class:`SeedIndex` candidate pruning inside
``assign_many``) must be *provably free*: bit-identical assignment
indices, an identical RNG end-state, and never more exact distance
computations than the plain batch kernel. On top of that, the parallel
path (``workers=4``) must beat the serial batch kernel by at least 2x at
the scale tier — that gate is only enforced on multi-core runners (the
CI scale-smoke leg has 4 vCPUs; a 1-core sandbox records the numbers
without failing).

Two tiers, selected by ``REPRO_BENCH_SCALE`` (see ``_config``):

- ``smoke`` (default): 100k points x 300 seeds — the per-push CI leg.
- ``full``: 1M points x 1000 seeds — the nightly scale workflow.

Methodology: best-of-N wall-clock (min) as in the batch bench; the full
tier runs single rounds because each arm is minutes long. A fixed-size
dimensionality sweep records how the candidate-pruning ratio degrades as
d grows (the KD-tree's k nearest seeds cover less of the probe order in
high dimension) — the numbers that back docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _config import spatial_tier
from _results import write_bench_result

from repro.core import TriangleInequalityAssigner
from repro.geometry import DistanceCounter

from test_bench_assignment_batch import make_workload

DIM = 4
SPEEDUP_GATE = 2.0
GATE_WORKERS = 4
SWEEP_POINTS = 20_000
SWEEP_SEEDS = 300
SWEEP_DIMS = (2, 8, 32, 128)


def _arm(seeds, points, **kwargs):
    """One timed assign_many run under an identically seeded RNG."""
    rng = np.random.default_rng(42)
    assigner = TriangleInequalityAssigner(
        seeds,
        DistanceCounter(),
        rng=rng,
        count_setup=False,
        **kwargs,
    )
    started = time.perf_counter()
    result = assigner.assign_many(points)
    return time.perf_counter() - started, result, assigner, rng


def _best_of(rounds, seeds, points, **kwargs):
    best = float("inf")
    for _ in range(rounds):
        elapsed, result, assigner, rng = _arm(seeds, points, **kwargs)
        best = min(best, elapsed)
    return best, result, assigner, rng


def _degradation_sweep():
    """computed-distance ratio (spatial / batch) as dimension grows."""
    rows = []
    for dim in SWEEP_DIMS:
        points, seeds = make_workload(
            num_points=SWEEP_POINTS, num_seeds=SWEEP_SEEDS, dim=dim, seed=1
        )
        _, base_idx, base, _ = _arm(seeds, points)
        _, spat_idx, spat, _ = _arm(seeds, points, use_seed_index=True)
        assert np.array_equal(base_idx, spat_idx)
        assert spat.assign_computed <= base.assign_computed
        index = spat.seed_index
        rows.append(
            {
                "dim": dim,
                "backend": index.backend,
                "candidates_k": index.k,
                "batch_computed": base.assign_computed,
                "spatial_computed": spat.assign_computed,
                "computed_ratio": (
                    spat.assign_computed / base.assign_computed
                ),
            }
        )
    return rows


def test_spatial_engine_scale_gate(benchmark, emit):
    """Seed-index parity at scale; workers=4 >= 2x on multi-core."""
    tier, num_points, num_seeds = spatial_tier()
    rounds = 2 if tier == "smoke" else 1
    points, seeds = make_workload(
        num_points=num_points, num_seeds=num_seeds, dim=DIM, seed=0
    )

    # Warm-up (allocators, numpy dispatch, index build) before timing.
    _arm(seeds, points[:256], use_seed_index=True)

    batch_time, batch_idx, batch, batch_rng = _best_of(
        rounds, seeds, points
    )
    spatial_time, spatial_idx, spatial, spatial_rng = _best_of(
        rounds, seeds, points, use_seed_index=True
    )
    par_time, par_idx, par, _ = _best_of(
        rounds, seeds, points, use_seed_index=True, workers=GATE_WORKERS
    )

    # --- Parity proof first: a fast kernel that drifts is worthless. ---
    # Serial spatial is bit-identical to the batch kernel: same indices,
    # same RNG end-state, never more exact distances, and exact
    # conservation (every point x seed pair is probed or pruned).
    assert np.array_equal(batch_idx, spatial_idx)
    assert (
        batch_rng.bit_generator.state == spatial_rng.bit_generator.state
    )
    assert spatial.assign_computed <= batch.assign_computed
    total = num_points * num_seeds
    assert batch.assign_computed + batch.assign_pruned == total
    assert spatial.assign_computed + spatial.assign_pruned == total

    # Parallel mode draws per-block substreams, so indices may resolve
    # ties differently — but the assigned seed is still a true nearest
    # seed, so the assigned distances match the serial run exactly, and
    # the worker count never changes the answer (w1 == w4 bit-identical;
    # checked at the smoke tier to keep the nightly run bounded).
    def assigned_dists(idx):
        return np.linalg.norm(points - seeds[idx], axis=1)

    assert np.array_equal(assigned_dists(batch_idx), assigned_dists(par_idx))
    if tier == "smoke":
        _, w1_idx, _, _ = _arm(
            seeds, points, use_seed_index=True, workers=1
        )
        assert np.array_equal(w1_idx, par_idx)

    serial_speedup = batch_time / spatial_time
    parallel_speedup = batch_time / par_time
    cpu_count = os.cpu_count() or 1
    gate_enforced = cpu_count >= 2

    # Register with pytest-benchmark so the run lands in the CI JSON
    # artifact next to the other assignment numbers.
    benchmark.pedantic(
        lambda: _arm(seeds, points, use_seed_index=True),
        rounds=1,
        iterations=1,
    )

    sweep = _degradation_sweep()

    document = {
        "workload": {
            "tier": tier,
            "num_points": num_points,
            "num_seeds": num_seeds,
            "dim": DIM,
            "rounds": rounds,
            "gate_workers": GATE_WORKERS,
            "cpu_count": cpu_count,
        },
        "batch_seconds": batch_time,
        "spatial_seconds": spatial_time,
        "parallel_seconds": par_time,
        "serial_speedup": serial_speedup,
        "speedup": parallel_speedup,
        "speedup_gate": SPEEDUP_GATE,
        "gate_enforced": gate_enforced,
        "index": {
            "backend": spatial.seed_index.backend,
            "candidates_k": spatial.seed_index.k,
        },
        "parity": {
            "indices_identical": True,
            "rng_state_identical": True,
            "batch_computed": batch.assign_computed,
            "spatial_computed": spatial.assign_computed,
            "spatial_index_pruned": spatial.assign_index_pruned,
            "computed_ratio": (
                spatial.assign_computed / batch.assign_computed
            ),
        },
        "dim_degradation": sweep,
    }
    write_bench_result("assignment_spatial", document)

    lines = [
        f"Spatial assignment bench — tier={tier} "
        f"({num_points} points x {num_seeds} seeds, d={DIM})",
        f"  batch serial    {batch_time:8.3f}s  "
        f"computed={batch.assign_computed}",
        f"  spatial serial  {spatial_time:8.3f}s  "
        f"computed={spatial.assign_computed}  "
        f"index_pruned={spatial.assign_index_pruned}  "
        f"({serial_speedup:.2f}x)",
        f"  spatial w={GATE_WORKERS}     {par_time:8.3f}s  "
        f"({parallel_speedup:.2f}x, gate {SPEEDUP_GATE:.0f}x "
        f"{'enforced' if gate_enforced else 'recorded only'} "
        f"on {cpu_count} cpus)",
        "  dim degradation (computed ratio spatial/batch):",
    ]
    for row in sweep:
        lines.append(
            f"    d={row['dim']:<4d} ratio={row['computed_ratio']:.3f} "
            f"k={row['candidates_k']} backend={row['backend']}"
        )
    emit("assignment_spatial", "\n".join(lines))

    if gate_enforced:
        assert parallel_speedup >= SPEEDUP_GATE, (
            f"spatial workers={GATE_WORKERS} speedup "
            f"{parallel_speedup:.2f}x below the {SPEEDUP_GATE:.0f}x gate "
            f"(batch {batch_time:.3f}s, parallel {par_time:.3f}s)"
        )
