"""Benchmark: scalability sweeps (database size and dimensionality).

Backs the paper's claim that the scheme "is scalable and well suited for
high dimensional data": the saving factor stays an order of magnitude or
more across database sizes at a fixed compression rate, and quality plus
pruning hold up through 20 dimensions.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import (
    ExperimentConfig,
    render_dimension_sweep,
    render_size_sweep,
    run_dimension_sweep,
    run_size_sweep,
)

SWEEP_CONFIG = ExperimentConfig(
    scenario="complex",
    dim=2,
    update_fraction=0.05,
    num_batches=3,
    min_pts=25,
    seed=0,
)


def test_size_sweep(benchmark, emit):
    points = benchmark.pedantic(
        lambda: run_size_sweep(
            SWEEP_CONFIG,
            sizes=(2_500, 5_000, 10_000),
            points_per_bubble=60,
            repetitions=2,
        ),
        rounds=1,
        iterations=1,
    )
    emit("scalability_size", render_size_sweep(points))
    # At a fixed compression *rate* both the rebuild cost (N·B) and the
    # incremental seed-matrix overhead (B²/2) grow quadratically, so the
    # saving factor stays large but does not grow without bound — the
    # assertion is a floor, not monotonicity.
    for point in points:
        assert point.saving_factor.mean > 10.0


def test_dimension_sweep(benchmark, emit):
    points = benchmark.pedantic(
        lambda: run_dimension_sweep(
            replace(SWEEP_CONFIG, initial_size=4_000, num_bubbles=60),
            dims=(2, 5, 10, 20),
            repetitions=2,
        ),
        rounds=1,
        iterations=1,
    )
    emit("scalability_dim", render_dimension_sweep(points))
    for point in points:
        assert point.incremental_fscore.mean > 0.8
        assert point.pruned_fraction.mean > 0.4