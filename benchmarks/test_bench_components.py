"""Component throughput microbenchmarks.

Wall-clock cost of the individual pipeline stages at a fixed scale:
static construction, one incremental batch, bubble OPTICS + expansion,
cluster extraction, and the point-level OPTICS reference. These are the
numbers a downstream user sizes deployments with.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.clustering import BubbleOptics, PointOptics, extract_candidates
from repro.data import make_scenario


def make_world():
    """A fresh complex-scenario database with a 100-bubble summary.

    Builders and maintainers rewrite the store's ownership records, so
    every benchmark that mutates state gets its own world — a shared
    fixture would let one benchmark corrupt another's bubble memberships.
    """
    scenario = make_scenario("complex", dim=2, initial_size=8_000, seed=0)
    store = PointStore(dim=2)
    scenario.populate(store)
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=100, seed=0)).build(
        store
    )
    return scenario, store, bubbles


@pytest.fixture(scope="module")
def readonly_world():
    """Shared world for benchmarks that only read the summary."""
    return make_world()


def test_static_construction(benchmark):
    _, store, _ = make_world()
    builder = BubbleBuilder(BubbleConfig(num_bubbles=100, seed=1))
    benchmark(builder.build, store)


def test_incremental_batch(benchmark):
    scenario, store, bubbles = make_world()
    maintainer = IncrementalMaintainer(
        bubbles, store, MaintenanceConfig(seed=0)
    )

    def one_batch():
        batch = scenario.make_batch(store, 0.05)
        maintainer.apply_batch(batch)

    benchmark.pedantic(one_batch, rounds=5, iterations=1)


def test_bubble_optics(benchmark, readonly_world):
    _, _, bubbles = readonly_world
    optics = BubbleOptics(min_pts=40)
    benchmark(optics.fit, bubbles)


def test_expansion_and_extraction(benchmark, readonly_world):
    _, store, bubbles = readonly_world
    result = BubbleOptics(min_pts=40).fit(bubbles)

    def run():
        expanded = result.expanded()
        return extract_candidates(expanded.reachability, min_size=80)

    benchmark(run)


def test_point_optics_reference(benchmark):
    rng = np.random.default_rng(0)
    points = rng.normal(size=(1_000, 2))
    optics = PointOptics(min_pts=10)
    benchmark(optics.fit, points)


def test_deletion_throughput(benchmark):
    """Deletions are O(1) statistic updates — no distance computations."""
    rng = np.random.default_rng(1)
    store = PointStore(dim=2)
    store.insert(rng.normal(size=(20_000, 2)))
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=100, seed=0)).build(
        store
    )
    maintainer = IncrementalMaintainer(
        bubbles, store, MaintenanceConfig(seed=0, rebuild_rounds=1)
    )
    alive = iter(store.ids().tolist())

    def delete_hundred():
        victims = tuple(next(alive) for _ in range(100))
        maintainer.apply_batch(
            UpdateBatch(deletions=victims, insertions=np.empty((0, 2)))
        )

    benchmark.pedantic(delete_hundred, rounds=10, iterations=1)
