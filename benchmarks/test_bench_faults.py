"""Fault-injection overhead: disarmed failpoints must be ~free.

The failpoint registry and the ``maybe_wrap`` IO shims are compiled into
the production persistence paths permanently. This benchmark measures the
same durable streaming workload twice — once with the registry completely
empty (the production default) and once with an unrelated failpoint armed
(the worst realistic disarmed case: every ``fire``/``trigger`` call now
takes the dict-lookup path instead of the empty fast path) — and gates
the delta at 2%. The result is written to
``benchmarks/results/BENCH_faults.json``.

Methodology: best-of-N wall-clock over identical runs (min, not mean —
the minimum is the least noisy estimator of the achievable time on a
shared CI runner).
"""

from __future__ import annotations

import pathlib
import tempfile
import time

import numpy as np
from _results import write_bench_result

from repro.faults import FAILPOINTS
from repro.streaming import DurableSummarizer

ROUNDS = 7
CHUNKS = 12
CHUNK_SIZE = 300
OVERHEAD_BUDGET = 0.02


def _chunks() -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    return [
        rng.normal(size=(CHUNK_SIZE, 2)) + [0.1 * i, -0.05 * i]
        for i in range(CHUNKS)
    ]


def _run_stream(chunks: list[np.ndarray]) -> None:
    with tempfile.TemporaryDirectory() as wal_dir:
        stream = DurableSummarizer(
            pathlib.Path(wal_dir) / "state",
            dim=2,
            window_size=1_600,
            points_per_bubble=40,
            seed=0,
            checkpoint_every=4,
            fsync=False,
        )
        for chunk in chunks:
            stream.append(chunk)
        stream.close()


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_disarmed_failpoints_within_budget(benchmark):
    """An armed-but-unmatched registry costs <= 2% over an empty one."""
    chunks = _chunks()
    FAILPOINTS.clear()
    _run_stream(chunks)  # warm caches before either arm is timed

    empty_registry = _best_of(lambda: _run_stream(chunks))

    # The worst disarmed case: something is armed, so every fire() and
    # has_prefix() consults the dict — but nothing ever matches.
    FAILPOINTS.arm("bench.unrelated.never", "error")
    try:
        armed_unmatched = _best_of(lambda: _run_stream(chunks))
    finally:
        FAILPOINTS.clear()
    overhead = armed_unmatched / empty_registry - 1.0

    # Registered as a pedantic benchmark so the run also lands in the
    # pytest-benchmark JSON artifact next to the other numbers.
    benchmark.pedantic(
        lambda: _run_stream(chunks), rounds=1, iterations=1
    )

    document = {
        "workload": {
            "chunks": CHUNKS,
            "chunk_size": CHUNK_SIZE,
            "window_size": 1_600,
            "points_per_bubble": 40,
            "checkpoint_every": 4,
            "rounds": ROUNDS,
        },
        "empty_registry_seconds": empty_registry,
        "armed_unmatched_seconds": armed_unmatched,
        "overhead_fraction": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
    }
    write_bench_result("faults", document)

    assert overhead <= OVERHEAD_BUDGET, (
        f"disarmed fault-injection overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget (empty {empty_registry:.4f}s, "
        f"armed-unmatched {armed_unmatched:.4f}s)"
    )
