"""Ablation benchmark: compression rate (number of bubbles).

The paper's only remark on the knob is that "larger databases would yield
similar results using proportionally more data bubbles for achieving the
summarization" (Section 5). This sweep makes the trade-off explicit at a
fixed database size: more bubbles buy clustering quality and per-bubble
resolution at the price of a larger seed matrix (the incremental scheme's
fixed per-batch cost) and a slower summary-level OPTICS.
"""

from __future__ import annotations

from dataclasses import replace

from repro.evaluation import summarize
from repro.experiments import ExperimentConfig, render_table, run_comparison

BASE = ExperimentConfig(
    scenario="complex",
    dim=2,
    initial_size=6_000,
    update_fraction=0.05,
    num_batches=4,
    min_pts=25,
    seed=0,
)

BUBBLE_COUNTS = (30, 60, 120, 240)


def test_compression_rate_sweep(benchmark, emit):
    def run():
        rows = []
        for num_bubbles in BUBBLE_COUNTS:
            config = replace(BASE, num_bubbles=num_bubbles)
            fscores, costs = [], []
            for rep in range(2):
                result = run_comparison(config, repetition=rep)
                fscores.append(result.incremental.mean_fscore())
                costs.append(
                    result.incremental.total_computed()
                    / config.num_batches
                )
            rows.append(
                (num_bubbles, summarize(fscores), summarize(costs))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "compression_rate",
        render_table(
            headers=[
                "bubbles",
                "points/bubble",
                "incremental F",
                "incremental dists/batch",
            ],
            rows=[
                [
                    num,
                    BASE.initial_size // num,
                    f"{fscore.mean:.4f}",
                    f"{cost.mean:,.0f}",
                ]
                for num, fscore, cost in rows
            ],
            title="Ablation: compression rate (complex scenario, 6000 "
            "points).",
        ),
    )
    # Quality must not collapse at the coarsest compression, and the
    # per-batch cost must grow with the bubble count (seed matrix).
    assert rows[0][1].mean > 0.75
    assert rows[-1][2].mean > rows[0][2].mean