"""Ablation benchmarks for the design choices DESIGN.md calls out.

* donor policy: under-filled-first (the paper) vs globally lowest β;
* split-seed strategy: farthest (default; see the SplitStrategy docs) vs
  random (the minimal reading of Figure 6);
* rebuild rounds: single pass vs iterate-to-convergence.

Each ablation runs the extreme-appear scenario — the stress case where the
merge/split machinery does real work — and reports final F-score and
compactness per variant.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import DonorPolicy, MaintenanceConfig, SplitStrategy
from repro.evaluation import summarize
from repro.experiments import ExperimentConfig, render_table, run_comparison

ABLATION_CONFIG = ExperimentConfig(
    scenario="extappear",
    dim=2,
    initial_size=4_000,
    num_bubbles=60,
    update_fraction=0.05,
    num_batches=8,
    min_pts=25,
    seed=0,
)

VARIANTS: dict[str, MaintenanceConfig] = {
    "paper defaults (farthest, underfilled-first, 2 rounds)": MaintenanceConfig(),
    "random split seeds": MaintenanceConfig(
        split_strategy=SplitStrategy.RANDOM
    ),
    "lowest-beta donors": MaintenanceConfig(
        donor_policy=DonorPolicy.LOWEST_BETA
    ),
    "single rebuild pass": MaintenanceConfig(rebuild_rounds=1),
    "five rebuild passes": MaintenanceConfig(rebuild_rounds=5),
    "no triangle inequality": MaintenanceConfig(
        use_triangle_inequality=False
    ),
}


def run_variant(maintenance: MaintenanceConfig, reps: int = 2):
    fscores, compacts, computed = [], [], []
    for rep in range(reps):
        result = run_comparison(
            ABLATION_CONFIG,
            repetition=rep,
            maintenance=replace(maintenance, seed=rep),
        )
        fscores.append(result.incremental.mean_fscore())
        compacts.append(result.incremental.mean_compactness())
        computed.append(result.incremental.total_computed())
    return summarize(fscores), summarize(compacts), summarize(computed)


def test_maintenance_ablations(benchmark, emit):
    def run():
        return {
            name: run_variant(config) for name, config in VARIANTS.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{fscore.mean:.4f}",
            f"{compact.mean:.0f}",
            f"{computed.mean:,.0f}",
        ]
        for name, (fscore, compact, computed) in results.items()
    ]
    emit(
        "ablations",
        render_table(
            headers=[
                "variant",
                "F-score",
                "compactness",
                "distance computations",
            ],
            rows=rows,
            title="Ablation: maintenance design choices "
            "(extreme-appear scenario).",
        ),
    )

    defaults = results[
        "paper defaults (farthest, underfilled-first, 2 rounds)"
    ]
    random_split = results["random split seeds"]
    # The farthest split strategy is what keeps compactness near the
    # complete-rebuild level (see SplitStrategy docs).
    assert defaults[1].mean < random_split[1].mean
    # Disabling pruning must not change the result, only the cost.
    no_ti = results["no triangle inequality"]
    assert no_ti[2].mean > defaults[2].mean
