"""Benchmark: regenerate Figure 7 (β vs extent quality measure).

Paper claim: when the middle cluster disappears and two new clusters
appear far right, the extent measure fails to attract bubbles to the new
clusters (one pre-existing bubble absorbs both) while the β measure
repositions bubbles onto them. This is also the headline quality-measure
ablation of the design.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import (
    ExperimentConfig,
    render_figure7,
    run_figure7,
)


FIG7_CONFIG = ExperimentConfig(
    scenario="figure7",
    dim=2,
    initial_size=4_000,
    num_bubbles=50,
    update_fraction=0.1,
    num_batches=12,
    min_pts=25,
    seed=0,
)


def test_figure7(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_figure7(FIG7_CONFIG), rounds=1, iterations=1
    )
    emit("figure7", render_figure7(result))

    # Shape assertions: β attracts more bubbles to the appeared clusters
    # and recovers the new structure at least as well as the baseline.
    assert result.beta_bubbles_on_new > result.extent_bubbles_on_new
    assert (
        result.beta_new_cluster_fscore
        >= result.extent_new_cluster_fscore - 0.02
    )


def test_figure7_higher_resolution(benchmark, emit):
    """Same experiment with more bubbles: the gap persists (it is not an
    artifact of summary starvation)."""
    config = replace(FIG7_CONFIG, num_bubbles=80, seed=1)
    result = benchmark.pedantic(
        lambda: run_figure7(config), rounds=1, iterations=1
    )
    emit("figure7_80bubbles", render_figure7(result))
    assert result.beta_bubbles_on_new >= result.extent_bubbles_on_new
