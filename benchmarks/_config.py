"""Shared scale constants for the benchmark suite.

Kept out of ``conftest.py`` so benchmark modules can import them plainly
(pytest imports conftest files under mangled module names).
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig

#: Shared benchmark-scale configuration (smaller than the CLI defaults;
#: see DESIGN.md on size-stable ratios).
BENCH_CONFIG = ExperimentConfig(
    scenario="complex",
    dim=2,
    initial_size=5_000,
    num_bubbles=80,
    update_fraction=0.05,
    num_batches=5,
    min_pts=25,
    seed=0,
)

#: Repetitions per sweep point at benchmark scale.
BENCH_REPS = 2
