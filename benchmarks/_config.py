"""Shared scale constants for the benchmark suite.

Kept out of ``conftest.py`` so benchmark modules can import them plainly
(pytest imports conftest files under mangled module names).
"""

from __future__ import annotations

import os

from repro.experiments import ExperimentConfig

#: Scale tiers for the spatial-assignment benchmark: the CI scale-smoke
#: leg runs ``smoke`` per push; the nightly scale workflow runs ``full``
#: (the ROADMAP's 1M x 1000 target). Select with ``REPRO_BENCH_SCALE``.
SPATIAL_TIERS: dict[str, tuple[int, int]] = {
    "smoke": (100_000, 300),
    "full": (1_000_000, 1_000),
}


def spatial_tier() -> tuple[str, int, int]:
    """The selected ``(tier, points, seeds)`` for the spatial bench."""
    tier = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if tier not in SPATIAL_TIERS:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(SPATIAL_TIERS)}, "
            f"got {tier!r}"
        )
    points, seeds = SPATIAL_TIERS[tier]
    return tier, points, seeds

#: Shared benchmark-scale configuration (smaller than the CLI defaults;
#: see DESIGN.md on size-stable ratios).
BENCH_CONFIG = ExperimentConfig(
    scenario="complex",
    dim=2,
    initial_size=5_000,
    num_bubbles=80,
    update_fraction=0.05,
    num_batches=5,
    min_pts=25,
    seed=0,
)

#: Repetitions per sweep point at benchmark scale.
BENCH_REPS = 2
