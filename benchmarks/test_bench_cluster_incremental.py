"""Incremental clustering gate: repair beats cold re-walking, 5x.

The tentpole claim of the incremental clustering layer is that a
"cluster me now" request against a *warm* version-keyed cache — after a
small maintenance batch touched ~1% of the bubbles — costs a small
fraction of a from-scratch OPTICS walk, while producing **bitwise
identical** state (equivalence is asserted inline here and exhaustively
in ``tests/test_clustering_incremental.py``). This benchmark measures
both arms on the paper-scale summary (K=500 bubbles, d=8) and gates the
speedup at 5x.

The second gate covers the anytime contract: under a deadline, the
first staged tree (the coarse but valid answer the caller is promised)
must be delivered within 100 ms.

Methodology: best-of-N wall-clock (min, not mean — the minimum is the
least noisy estimator on a shared CI runner). The result document is
written to ``benchmarks/results/BENCH_cluster_incremental.json`` and
mirrored at the repo root.
"""

from __future__ import annotations

import time

import numpy as np
from _results import write_bench_result

from repro.clustering.incremental import ClusterCache, IncrementalClusterer
from repro.core.builder import BubbleBuilder, BubbleConfig
from repro.database.store import PointStore

NUM_BUBBLES = 500
DIM = 8
MIN_PTS = 25
POINTS = 25_000
TOUCH_PER_BATCH = 5  # 1% of the bubbles
COLD_ROUNDS = 5
WARM_ROUNDS = 10
SPEEDUP_FLOOR = 5.0
FIRST_TREE_BUDGET_SECONDS = 0.100


def _build_bubbles():
    rng = np.random.default_rng(7)
    third = POINTS // 3
    pts = np.concatenate(
        [
            rng.normal(np.zeros(DIM), 1.0, size=(third, DIM)),
            rng.normal(np.full(DIM, 7.0), 0.9, size=(third, DIM)),
            rng.normal(
                np.concatenate(([-6.0], np.zeros(DIM - 1))),
                1.1,
                size=(POINTS - 2 * third, DIM),
            ),
        ]
    )
    store = PointStore(dim=DIM)
    store.insert(pts, labels=[0] * len(pts))
    bubbles = BubbleBuilder(
        BubbleConfig(num_bubbles=NUM_BUBBLES, seed=3)
    ).build(store)
    return bubbles, rng


def test_warm_repair_beats_cold_walk(benchmark):
    """After a 1%-touched batch, a warm fit is >= 5x a cold fit."""
    bubbles, rng = _build_bubbles()

    # Cold arm: a fresh cache pays the full matrix + full walk.
    def cold_fit():
        cache = ClusterCache(min_pts=MIN_PTS)
        cache.refresh(bubbles)

    cold_fit()  # warm numpy caches before timing either arm
    cold_best = float("inf")
    for _ in range(COLD_ROUNDS):
        started = time.perf_counter()
        cold_fit()
        cold_best = min(cold_best, time.perf_counter() - started)

    # Warm arm: one maintained cache absorbs a small batch per round
    # and repairs. Every repair is checked bitwise against a cold walk
    # (outside the timed region) so the gate can never pass on a wrong
    # answer.
    cache = ClusterCache(min_pts=MIN_PTS)
    cache.refresh(bubbles)
    next_pid = 10_000_000
    warm_best = float("inf")
    warm_times = []
    for _ in range(WARM_ROUNDS):
        ids = rng.choice(NUM_BUBBLES, size=TOUCH_PER_BATCH, replace=False)
        for bid in ids:
            bubble = bubbles[int(bid)]
            bubble.absorb(
                next_pid, bubble.rep + rng.normal(0, 0.3, size=DIM)
            )
            next_pid += 1
        started = time.perf_counter()
        state, source = cache.refresh(bubbles)
        elapsed = time.perf_counter() - started
        assert source == "repair"
        warm_times.append(elapsed)
        warm_best = min(warm_best, elapsed)
        fresh, _ = ClusterCache(min_pts=MIN_PTS).refresh(bubbles)
        assert np.array_equal(state.plot.ordering, fresh.plot.ordering)
        assert np.array_equal(
            state.plot.reachability, fresh.plot.reachability
        )

    speedup = cold_best / warm_best
    benchmark.pedantic(cold_fit, rounds=1, iterations=1)

    document = {
        "workload": {
            "num_bubbles": NUM_BUBBLES,
            "dim": DIM,
            "points": POINTS,
            "min_pts": MIN_PTS,
            "touched_per_batch": TOUCH_PER_BATCH,
            "cold_rounds": COLD_ROUNDS,
            "warm_rounds": WARM_ROUNDS,
        },
        "cold_best_seconds": cold_best,
        "warm_best_seconds": warm_best,
        "warm_median_seconds": float(np.median(warm_times)),
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "first_tree_budget_seconds": FIRST_TREE_BUDGET_SECONDS,
    }
    write_bench_result("cluster_incremental", document)

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm repair speedup {speedup:.1f}x is below the "
        f"{SPEEDUP_FLOOR:.0f}x floor (cold {cold_best * 1e3:.1f} ms, "
        f"warm {warm_best * 1e3:.1f} ms)"
    )


def test_anytime_first_tree_within_budget():
    """A cold deadline-bounded fit stages a valid tree within 100 ms."""
    bubbles, _ = _build_bubbles()
    best = float("inf")
    for _ in range(3):
        clusterer = IncrementalClusterer(min_pts=MIN_PTS)
        fit = clusterer.fit(bubbles, deadline_seconds=0.050)
        assert fit.stages, "a deadline-bounded cold fit must stage"
        first = fit.stages[0]
        assert first.size == IncrementalClusterer.FIRST_STAGE_BUBBLES
        assert fit.num_bubbles >= first.size
        assert len(fit.tree.leaves()) >= 1
        best = min(best, first.elapsed_seconds)
    assert best <= FIRST_TREE_BUDGET_SECONDS, (
        f"first anytime tree took {best * 1e3:.1f} ms, budget is "
        f"{FIRST_TREE_BUDGET_SECONDS * 1e3:.0f} ms"
    )
