"""Benchmark gate results: canonical location + repo-root mirror.

Each perf gate serializes one JSON document describing its workload,
measurements, and the threshold it enforces. The canonical copy lives in
``benchmarks/results/BENCH_<name>.json``; a mirror is written to the
repository root as ``BENCH_<name>.json`` so the current numbers are
discoverable without digging into the tree (and show up directly in the
repository listing alongside README.md).

Kept out of ``conftest.py`` so benchmark modules can import it plainly
(pytest imports conftest files under mangled module names).
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

__all__ = ["RESULTS_DIR", "REPO_ROOT", "write_bench_result"]


def write_bench_result(name: str, document: dict) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` to results/ and mirror it at repo root.

    Returns the canonical (results/) path.
    """
    payload = json.dumps(document, indent=2) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    canonical = RESULTS_DIR / f"BENCH_{name}.json"
    canonical.write_text(payload)
    (REPO_ROOT / f"BENCH_{name}.json").write_text(payload)
    return canonical
