"""Benchmark: crash recovery vs. re-summarizing the stream from scratch.

The persistence subsystem's reason to exist: resuming from a snapshot
plus a short WAL tail must be much cheaper than replaying the entire
stream through the summarizer again. This is the paper's
incremental-vs-rebuild argument (Figure 7) applied to process lifetimes —
the snapshot plays the role of the maintained summary, the full re-run
the role of the from-scratch rebuild.

Workload: 50k points streamed in 100 chunks through a durable summarizer
that crashes right after the final append (so the WAL tail holds the
batches since the last checkpoint).
"""

from __future__ import annotations

import time

import numpy as np

from repro.streaming import DurableSummarizer, SlidingWindowSummarizer

DIM = 2
NUM_CHUNKS = 100
CHUNK_SIZE = 500  # 50_000 points total
WINDOW = 4_000
PPB = 60
SEED = 5
CHECKPOINT_EVERY = 16


def _chunks():
    generator = np.random.default_rng(42)
    return [
        generator.normal(
            loc=[0.02 * i, -0.01 * i], size=(CHUNK_SIZE, DIM)
        )
        for i in range(NUM_CHUNKS)
    ]


def test_recovery_beats_resummarization(tmp_path, benchmark, emit):
    chunks = _chunks()
    state_dir = tmp_path / "state"
    stream = DurableSummarizer(
        state_dir,
        dim=DIM,
        window_size=WINDOW,
        points_per_bubble=PPB,
        seed=SEED,
        checkpoint_every=CHECKPOINT_EVERY,
        fsync=False,
    )
    for chunk in chunks:
        stream.append(chunk)
    # Simulated crash: no goodbye checkpoint, WAL tail left behind.
    stream.checkpoints.close()
    reference = stream.size
    del stream

    def recover():
        recovered = DurableSummarizer.recover(state_dir, fsync=False)
        recovered.close(checkpoint=False)
        return recovered

    recovered = benchmark.pedantic(recover, rounds=3, iterations=1)
    recovery_s = benchmark.stats.stats.mean

    started = time.perf_counter()
    rerun = SlidingWindowSummarizer(
        dim=DIM, window_size=WINDOW, points_per_bubble=PPB, seed=SEED
    )
    for chunk in chunks:
        rerun.append(chunk)
    rerun_s = time.perf_counter() - started

    assert recovered.size == reference == rerun.size
    assert recovered.batches_applied == NUM_CHUNKS

    speedup = rerun_s / recovery_s
    emit(
        "recovery",
        "\n".join(
            [
                "Crash recovery vs. full re-summarization "
                f"({NUM_CHUNKS * CHUNK_SIZE:,} points, "
                f"checkpoint every {CHECKPOINT_EVERY} batches)",
                f"  recover (snapshot + WAL tail) : {recovery_s * 1e3:9.1f} ms",
                f"  re-summarize from raw points  : {rerun_s * 1e3:9.1f} ms",
                f"  speedup                       : {speedup:9.1f}x",
            ]
        ),
    )
    assert speedup > 1.0, (
        f"recovery ({recovery_s:.3f}s) should beat re-summarization "
        f"({rerun_s:.3f}s)"
    )
