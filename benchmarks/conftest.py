"""Shared fixtures for the benchmark suite.

Every ``test_bench_*`` module regenerates one of the paper's evaluation
artifacts (Table 1, Figures 7/9/10/11) or an ablation. The regenerated
tables are printed to stdout *and* written to ``benchmarks/results/`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the artifacts behind.
Scale constants live in :mod:`_config`.

BLAS/OpenMP thread pools are pinned to one thread *before numpy loads*
(conftest imports run ahead of the benchmark modules): the bench gates
compare single-stream kernels and, with ``assign_workers > 0``, fork
worker processes — an unpinned BLAS would oversubscribe the cores and
the gates would measure scheduler noise instead of the kernels. The CI
bench legs set the same variables at the job level as a belt-and-braces
for any earlier numpy import.
"""

from __future__ import annotations

import os
import pathlib

for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print an artifact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
