"""Shared fixtures for the benchmark suite.

Every ``test_bench_*`` module regenerates one of the paper's evaluation
artifacts (Table 1, Figures 7/9/10/11) or an ablation. The regenerated
tables are printed to stdout *and* written to ``benchmarks/results/`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the artifacts behind.
Scale constants live in :mod:`_config`.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print an artifact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
